#!/usr/bin/env python3
"""The instance store: a transactional database governed by a CAR schema.

The paper's Section 2.3 names type checking and type inference among the
applications of schema reasoning.  This example runs a small registrar
database against the university schema: transactions that would violate an
isa, typing, or cardinality constraint roll back; and the reasoner answers
"what must this object also be?" and "what could it still become?".

Run:  python examples/instance_store.py
"""

from repro import Database, IntegrityError, parse_schema

SCHEMA = """
class Person endclass

class Student isa Person and not Professor
    participates in Enrollment[enrolls] : (0, 2)
endclass

class Professor isa Person endclass

class Course
    isa not Person
    attributes taught_by : (1, 1) Professor
    participates in Enrollment[enrolled_in] : (1, 3)
endclass

relation Enrollment(enrolled_in, enrolls)
    constraints (enrolled_in : Course); (enrolls : Student)
endrelation
"""


def main() -> None:
    db = Database(parse_schema(SCHEMA))

    print("=== A valid registrar transaction ===")
    with db.transaction():
        db.insert("prof_knuth", "Person", "Professor")
        db.insert("algorithms", "Course")
        db.set_attribute("taught_by", "algorithms", "prof_knuth")
        db.insert("ada", "Person", "Student")
        db.add_tuple("Enrollment", enrolled_in="algorithms", enrolls="ada")
    print(f"committed: {db!r}")

    print("\n=== A transaction the schema rejects ===")
    try:
        with db.transaction():
            # Courses need exactly one professor; this one would have none.
            db.insert("databases", "Course")
            db.add_tuple("Enrollment", enrolled_in="databases", enrolls="ada")
    except IntegrityError as error:
        print("rolled back:")
        print(f"  {error}")
    print(f"state after rollback: {db!r}")

    print("\n=== Over-enrolment is caught too ===")
    try:
        with db.transaction():
            db.insert("compilers", "Course")
            db.set_attribute("taught_by", "compilers", "prof_knuth")
            db.insert("os", "Course")
            db.set_attribute("taught_by", "os", "prof_knuth")
            # ada is already in algorithms; two more exceeds (0, 2).
            db.add_tuple("Enrollment", enrolled_in="compilers", enrolls="ada")
            db.add_tuple("Enrollment", enrolled_in="os", enrolls="ada")
    except IntegrityError as error:
        print("rolled back:")
        print(f"  {error}")

    print("\n=== Type inference on live objects ===")
    print(f"ada's classes: {sorted(db.classes_of('ada'))}")
    print(f"ada must also be: {sorted(db.implied_classes('ada')) or '(nothing new)'}")
    print(f"ada could still become: {sorted(db.admissible_classes('ada')) or '(nothing)'}")
    with db.transaction():
        db.insert("grace")
        db.add_to_class("grace", "Person")
    print(f"grace could become: {sorted(db.admissible_classes('grace'))}")


if __name__ == "__main__":
    main()
