#!/usr/bin/env python3
"""Schema evolution: catching semantic regressions before they ship.

A schema edit that looks local can change what the schema *entails* far
away.  This example evolves a subscription-service schema through three
revisions and lets the library judge each step: which classes became
impossible, which derived guarantees (subsumptions, disjointness, implied
bounds) appeared or disappeared, and whether the step is backward
compatible for clients that relied on the derived facts.

Run:  python examples/schema_evolution.py
"""

from repro import parse_schema
from repro.reasoner import compare_schemas, explain_unsatisfiability
from repro.reasoner.satisfiability import Reasoner

V1 = """
class Account endclass
class Free_Account isa Account and not Paid_Account endclass
class Paid_Account isa Account
    attributes invoice : (1, 12) Invoice
endclass
class Team_Account isa Paid_Account endclass
class Invoice endclass
"""

# Revision 2: a reasonable extension — trials are free accounts.
V2 = V1 + """
class Trial_Account isa Free_Account endclass
"""

# Revision 3: someone "simplifies" Team_Account into a free tier while it
# still inherits the mandatory invoicing of Paid_Account — a conflict that
# only shows up through inheritance.
V3 = V2.replace(
    "class Team_Account isa Paid_Account endclass",
    """class Team_Account isa Paid_Account and Free_Account endclass""",
)


def step(label: str, old_source: str, new_source: str) -> None:
    print(f"=== {label} ===")
    old = parse_schema(old_source)
    new = parse_schema(new_source)
    report = compare_schemas(old, new)
    print(report)
    if report.newly_unsatisfiable:
        reasoner = Reasoner(new)
        for name in report.newly_unsatisfiable:
            print()
            print(explain_unsatisfiability(reasoner, name))
    print()


def main() -> None:
    step("v1 -> v2: add a trial tier", V1, V2)
    step("v2 -> v3: 'simplify' team accounts", V2, V3)
    print("The v3 report shows the edit is not backward compatible: "
          "Team_Account\ncan no longer have any instance, because it now "
          "inherits both the\nmandatory invoicing of Paid_Account and the "
          "disjointness of Free_Account.")


if __name__ == "__main__":
    main()
