#!/usr/bin/env python3
"""Population analysis: what the schema forces about relative table sizes.

Cardinality constraints pin down *global* facts about every possible
database state, not just per-object ones.  The linear phase of the
reasoner can answer them exactly: what is the range of |C1| / |C2| over
all legal states?  Capacity planners read these as "for every professor,
budget at least one course"; schema designers read fixed ratios as a smell
(the schema over-determines the data).

Run:  python examples/population_analysis.py
"""

from repro import Reasoner, parse_schema
from repro.workloads import figure2_schema

SHIFT_SCHEMA = """
-- A delivery operation: every van is staffed by exactly two drivers per
-- day and every driver staffs exactly one van.
class Van
    isa not Driver and not Parcel
    attributes staffed_by : (2, 2) Driver
endclass

class Driver
    isa not Parcel
    attributes (inv staffed_by) : (1, 1) Van
endclass

-- Loaded vans carry 10..80 parcels; every parcel sits in exactly one van.
class Van_Carrying
    isa Van
    attributes carries : (10, 80) Parcel
endclass

class Parcel
    attributes (inv carries) : (1, 1) Van_Carrying
endclass
"""


def show(reasoner: Reasoner, numerator: str, denominator: str) -> None:
    bounds = reasoner.population_ratio(numerator, denominator)
    fixed = bounds.fixed()
    suffix = "  (forced exactly!)" if fixed is not None else ""
    print(f"  {bounds}{suffix}")


def main() -> None:
    print("=== Delivery operation ===")
    reasoner = Reasoner(parse_schema(SHIFT_SCHEMA))
    print(reasoner.check_coherence())
    show(reasoner, "Driver", "Van")
    show(reasoner, "Parcel", "Van_Carrying")
    show(reasoner, "Parcel", "Driver")

    print("\n=== The paper's university (Figure 2) ===")
    reasoner = Reasoner(figure2_schema())
    show(reasoner, "Course", "Professor")
    show(reasoner, "Student", "Course")
    show(reasoner, "Adv_Course", "Course")


if __name__ == "__main__":
    main()
