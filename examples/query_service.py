#!/usr/bin/env python3
"""Query service tour: warm sessions, then the same engine over HTTP.

Two ways to serve many queries against a fleet of schemas:

1. in-process — a ``SchemaSession`` as a context manager keeps reasoner
   pipelines warm across queries and closes its executor on exit,
2. over the wire — ``ReproService`` (the engine behind ``repro serve``)
   exposes the same verdicts as JSON endpoints with admission control,
   a fingerprint-keyed result cache, and per-request budgets.

Run:  python examples/query_service.py
"""

import json
import urllib.error
import urllib.request

from repro.engine import SchemaSession
from repro.service import ReproService, ServiceConfig

SCHEMA = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""


def call(base: str, path: str, body=None, headers=None):
    """One JSON round-trip against the service (stdlib only)."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data,
                                     headers=headers or {},
                                     method="POST" if body else "GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    print("=== In-process: a SchemaSession as a context manager ===")
    with SchemaSession() as session:
        for name in ("Person", "Student", "Professor"):
            print(f"  {name} satisfiable: "
                  f"{session.satisfiable(SCHEMA, name)}")
        info = session.cache_info()
        print(f"  pipeline cache: {info.hits} hits, {info.misses} miss "
              f"(one build served every query)")
    # leaving the with-block closed the session's batch executor

    print("\n=== Over HTTP: the service behind `repro serve` ===")
    with ReproService(ServiceConfig(port=0)) as service:
        base = f"http://{service.host}:{service.port}"
        print(f"  listening on {base}")

        status, payload = call(base, "/v1/version")
        print(f"  GET /v1/version       -> {status}, "
              f"api_version={payload['data']['api_version']}")

        # Every response is the same v1 envelope: {"api_version": 1,
        # "request_id": ..., "ok": true, "data": {...}} on success,
        # {"ok": false, "error": {"code", "sysexit", "message"}} on error.
        status, payload = call(base, "/v1/satisfiable",
                               {"schema": SCHEMA, "class": "Student"})
        data = payload["data"]
        print(f"  POST /v1/satisfiable -> {status}, "
              f"verdict={data['verdict']}, cache={data['cache']}")
        status, payload = call(base, "/v1/satisfiable",
                               {"schema": SCHEMA, "class": "Student"})
        data = payload["data"]
        print(f"  repeated              -> {status}, "
              f"verdict={data['verdict']}, cache={data['cache']}")

        status, payload = call(base, "/v1/classify", {"schema": SCHEMA})
        print(f"  POST /v1/classify     -> {status}, "
              f"subsumptions={payload['data']['subsumptions']}")

        status, payload = call(base, "/v1/batch", {"queries": [
            {"schema": SCHEMA, "formula": "Student and Professor"},
            {"schema": SCHEMA, "formula": "Student and Person"},
        ]})
        print(f"  POST /v1/batch        -> {status}, "
              f"summary={payload['data']['summary']}")

        # A 50 ms budget against the paper's EXPTIME-hard reduction maps
        # to HTTP 504, carrying the partial progress made before the trip.
        from repro.parser.printer import render_schema
        from repro.reductions import machine_to_schema, parity_machine

        reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
        status, payload = call(base, "/v1/satisfiable",
                               {"schema": render_schema(reduction.schema),
                                "formula": str(reduction.target)},
                               headers={"X-Repro-Timeout-Ms": "50"})
        error = payload["error"]
        print(f"  50 ms vs EXPTIME      -> {status} "
              f"({error['code']}, sysexit={error['sysexit']}, "
              f"steps={error['steps']})")

        status, payload = call(base, "/metrics")
        metrics = payload["data"]
        print(f"  GET /metrics          -> {status}, "
              f"cache hit rate "
              f"{metrics['result_cache']['hit_rate']:.0%}, "
              f"admitted {metrics['admission']['admitted']}, "
              f"p50 {metrics['latency']['p50_ms']:.2f} ms")
    # leaving the with-block drained in-flight requests and shut down


if __name__ == "__main__":
    main()
