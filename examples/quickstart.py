#!/usr/bin/env python3
"""Quickstart: parse the paper's university schema and reason about it.

This walks the full public API surface in five minutes:

1. parse a CAR schema from concrete syntax (Figure 2 of the paper),
2. check that every class can be populated (schema validation),
3. compute the implied subsumption hierarchy (inheritance computation),
4. query implied disjointness and cardinality bounds,
5. pretty-print the schema back to concrete syntax.

Run:  python examples/quickstart.py
"""

from repro import AttrRef, Lit, Reasoner, inv, parse_schema, render_schema
from repro.reasoner import classify, implied_attribute_bounds, implied_disjoint, implies_isa
from repro.workloads import FIGURE_2_SOURCE


def main() -> None:
    print("=== Parsing the CAR schema of Figure 2 ===")
    schema = parse_schema(FIGURE_2_SOURCE)
    print(f"parsed: {schema}")
    print(f"union-free: {schema.is_union_free()}, "
          f"negation-free: {schema.is_negation_free()}, "
          f"max arity: {schema.max_arity()}")

    print("\n=== Schema validation (class satisfiability) ===")
    reasoner = Reasoner(schema)
    report = reasoner.check_coherence()
    print(report)
    stats = reasoner.stats()
    print(f"expansion: {stats.compound_classes} compound classes, "
          f"Psi_S with {stats.psi_unknowns} unknowns "
          f"and {stats.psi_constraints} disequations")

    print("\n=== Implied subsumptions (inheritance computation) ===")
    classification = classify(reasoner)
    for sub, sup in sorted(classification.subsumptions):
        print(f"  {sub} isa {sup}")

    print("\n=== Implied facts the schema never states directly ===")
    print(f"  Student and Professor disjoint?  "
          f"{implied_disjoint(reasoner, 'Student', 'Professor')}")
    print(f"  Grad_Student isa Person and not Professor?  "
          f"{implies_isa(reasoner, 'Grad_Student', Lit('Person') & ~Lit('Professor'))}")
    print(f"  taught_by links per Course:  "
          f"{implied_attribute_bounds(reasoner, 'Course', AttrRef('taught_by'))}")
    print(f"  courses per Professor (inverse of taught_by):  "
          f"{implied_attribute_bounds(reasoner, 'Professor', inv('taught_by'))}")
    print(f"  courses per Grad_Student:  "
          f"{implied_attribute_bounds(reasoner, 'Grad_Student', inv('taught_by'))}")

    print("\n=== Round trip: rendering back to concrete syntax ===")
    rendered = render_schema(schema)
    assert parse_schema(rendered) == schema
    print(rendered.splitlines()[0], "... (round-trips to the identical AST)")


if __name__ == "__main__":
    main()
