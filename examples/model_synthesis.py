#!/usr/bin/env python3
"""Model synthesis: generate a concrete sample database from a schema.

Theorem 3.3's witness direction, made executable: the reasoner's linear
phase produces an integer solution of the disequation system, and the
synthesizer turns it into an actual database state — objects, attribute
links, relation tuples — that provably satisfies every constraint (it is
re-checked by the independent model checker).

Use cases: seeding test databases, sanity-checking a schema's cardinality
design ("how big is the smallest sensible population?"), and demonstrating
satisfiability to a colleague with a concrete example instead of a proof.

Run:  python examples/model_synthesis.py
"""

from repro import AttrRef, Reasoner, is_model, parse_schema
from repro.synthesis import synthesize_model

CONFERENCE_SCHEMA = """
-- Reviewing at a small conference.
class Person endclass

class Author
    isa Person
endclass

class Reviewer
    isa Person and not Author          -- single-blind: no conflicts at all
    attributes reviews : (3, 3) Paper  -- every reviewer gets exactly 3 papers
endclass

class Paper
    isa not Person
    attributes (inv reviews) : (3, 3) Reviewer;   -- 3 reviews per paper
               written_by : (1, 4) Author
endclass
"""


def main() -> None:
    schema = parse_schema(CONFERENCE_SCHEMA)
    reasoner = Reasoner(schema)
    print("coherence:", reasoner.check_coherence())

    report = synthesize_model(reasoner, target="Paper")
    interp = report.interpretation
    print(f"\nsynthesized a verified model at scale {report.scale} "
          f"after {report.attempts} attempt(s):")
    print(interp.summary())

    assert is_model(interp, schema), "the checker must accept the model"

    papers = sorted(interp.class_ext("Paper"))
    reviewers = sorted(interp.class_ext("Reviewer"))
    print(f"\nreview load check: {len(papers)} papers, "
          f"{len(reviewers)} reviewers "
          f"(3 reviews each way => |Paper| == |Reviewer|)")
    for reviewer in reviewers[:3]:
        load = interp.attr_link_count(AttrRef("reviews"), reviewer)
        print(f"  {reviewer}: {load} assigned papers")

    print("\nfirst few review assignments:")
    for pair in sorted(interp.attribute_ext("reviews"))[:5]:
        print(f"  {pair[0]} reviews {pair[1]}")


if __name__ == "__main__":
    main()
