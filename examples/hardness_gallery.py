#!/usr/bin/env python3
"""A gallery of the paper's hardness reductions, run end to end.

Section 4.1 proves class satisfiability EXPTIME-hard via Turing machine
acceptance (Theorem 4.1) and NP-hard for union-free/negation-free schemas
via Intersection Pattern (Theorem 4.2).  This example *executes* those
reductions: it encodes computations and combinatorial problems as CAR
schemas and lets the schema reasoner solve them.

Run:  python examples/hardness_gallery.py
"""

from repro import Reasoner
from repro.reductions import (
    CnfFormula,
    IntersectionPattern,
    cnf_to_schema,
    dpll_satisfiable,
    machine_to_schema,
    parity_machine,
    pattern_to_schema,
)


def turing_section() -> None:
    print("=== Theorem 4.1: a schema that runs a Turing machine ===")
    machine = parity_machine()
    for word, time, space in (("11", 4, 3), ("1", 3, 2)):
        reduction = machine_to_schema(machine, word, time, space)
        reasoner = Reasoner(reduction.schema)
        verdict = reasoner.is_satisfiable(reduction.target)
        truth = machine.accepts(word, time, space)
        print(f"  parity({word!r}) within {time} steps / {space} cells: "
              f"machine says {truth}, schema reasoner says {verdict} "
              f"[{len(reduction.schema.class_symbols)} classes]")
    print("  (class Init is satisfiable exactly when the machine accepts)")


def sat_section() -> None:
    print("\n=== 3SAT as class satisfiability (general CAR) ===")
    # (x0 or x1) and (not x0 or x2) and (not x1 or not x2) and (x1 or x2)
    formula = CnfFormula.of(3, [
        [(0, True), (1, True)],
        [(0, False), (2, True)],
        [(1, False), (2, False)],
        [(1, True), (2, True)],
    ])
    schema = cnf_to_schema(formula)
    reasoner = Reasoner(schema)
    print(f"  DPLL assignment: {dpll_satisfiable(formula)}")
    print(f"  class World satisfiable: {reasoner.is_satisfiable('World')}")
    supported = [m for m in reasoner.supported_compound_classes()
                 if "World" in m]
    print(f"  satisfying assignments found by the expansion: "
          f"{[sorted(m - {'World'}) for m in supported]}")


def intersection_section() -> None:
    print("\n=== Theorem 4.2: Intersection Pattern, union- and negation-free ===")
    solvable = IntersectionPattern.of([[2, 1], [1, 2]])
    impossible = IntersectionPattern.of([[2, 3], [3, 3]])
    for label, pattern in (("|S1∩S2|=1, sizes 2/2", solvable),
                           ("|S1∩S2|=3 > |S1|=2", impossible)):
        schema = pattern_to_schema(pattern)
        reasoner = Reasoner(schema)
        print(f"  pattern {label}: witness class satisfiable = "
              f"{reasoner.is_satisfiable('W')} "
              f"(union-free={schema.is_union_free()}, "
              f"negation-free={schema.is_negation_free()})")


def main() -> None:
    turing_section()
    sat_section()
    intersection_section()


if __name__ == "__main__":
    main()
