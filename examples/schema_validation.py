#!/usr/bin/env python3
"""Schema validation: catching isa/cardinality conflicts before deployment.

The paper's central motivation (Section 1): the *interaction* between
isa-relationships and cardinality constraints can force a class to be empty
in every finite database state, silently.  This example models a hospital
staffing schema containing two such bugs — one local, one that only the
finite-model linear phase can see — shows how the reasoner pinpoints them,
and validates the repaired schema.

Run:  python examples/schema_validation.py
"""

from repro import Reasoner, parse_schema

BROKEN_SCHEMA = """
-- A hospital staffing schema with two latent inconsistencies.

class Employee
    attributes badge : (1, 1) Badge
endclass

class Doctor
    isa Employee and not Nurse
    attributes supervises : (0, 3) Nurse
endclass

class Nurse
    isa Employee
endclass

-- Bug 1 (local): Resident inherits 'pager : (1, 1)' from Doctor... but the
-- hospital also demands residents carry no pager.  The merged interval
-- (1, 0) is empty, so Resident can never have an instance.
class Pager endclass

class Attending
    isa Doctor
    attributes pager : (1, 1) Pager
endclass

class Resident
    isa Attending
    attributes pager : (0, 0) Pager
endclass

-- Bug 2 (global, finite-model only): every ward is run by exactly one
-- head nurse, and every head nurse runs exactly three wards.  Locally
-- fine -- but combined with 'Ward isa HeadNurse' (a data-entry mistake!)
-- the population must satisfy |runs| = |Ward| and |runs| = 3 |Ward|
-- simultaneously, which only the empty Ward can do.
class Ward
    isa HeadNurse
    attributes run_by : (1, 1) HeadNurse
endclass

class HeadNurse
    isa Nurse and not Doctor
    attributes (inv run_by) : (3, 3) Ward
endclass

class Badge endclass
"""

FIXED_SCHEMA = BROKEN_SCHEMA.replace(
    "pager : (0, 0) Pager", "pager : (1, 1) Pager").replace(
    "isa HeadNurse\n    attributes run_by", "attributes run_by")


def validate(label: str, source: str) -> None:
    print(f"=== {label} ===")
    schema = parse_schema(source)
    reasoner = Reasoner(schema)
    report = reasoner.check_coherence()
    if report.is_coherent:
        print(f"coherent: all {len(report.satisfiable)} classes satisfiable")
    else:
        print("INCOHERENT — classes that can never be populated:")
        for name in report.unsatisfiable:
            print(f"  * {name}")
    print()


def main() -> None:
    validate("Broken hospital schema", BROKEN_SCHEMA)
    print("The two failures illustrate the paper's two phases:\n"
          "  * Resident dies already in phase 1: the merged pager interval\n"
          "    (max lower, min upper) = (1, 0) is empty, so no compound\n"
          "    class containing Resident is consistent.\n"
          "  * Ward dies only in phase 2: every compound class is locally\n"
          "    consistent, but the system of linear disequations forces\n"
          "    Var(Ward-compounds) = 0 because |run_by| would have to equal\n"
          "    both |Ward| and 3·|Ward| in any finite database state.\n"
          "    HeadNurse is dragged down with it: each head nurse needs\n"
          "    three incoming run_by links, and only Ward objects can\n"
          "    provide them.\n")
    validate("Repaired hospital schema", FIXED_SCHEMA)


if __name__ == "__main__":
    main()
