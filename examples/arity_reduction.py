#!/usr/bin/env python3
"""Theorem 4.5 in action: reifying n-ary relations to tame the expansion.

The number of compound relations grows like |compound classes|^K with
relation arity K.  When every role-clause of a nonbinary relation is a
single role-literal, the relation can be replaced — in linear time, with
class satisfiability preserved — by a fresh "tuple class" plus K binary
relations.  This example models flight bookings with a 4-ary relation,
shows the expansion blow-up, applies the reduction, and compares.

Run:  python examples/arity_reduction.py
"""

from repro import Reasoner, build_expansion, parse_schema, reify_nonbinary_relations

BOOKING_SCHEMA = """
-- A travel agency: bookings tie together four participants.  Each
-- participant family has subclasses, so each role admits several compound
-- classes and the 4-ary relation multiplies them together.
class Passenger
    isa not Flight and not Agent and not Seat
    participates in Booking[who] : (0, 10)
endclass
class FrequentFlyer isa Passenger endclass
class Minor isa Passenger endclass

class Flight
    isa not Agent and not Seat
    participates in Booking[on] : (0, 200)
endclass
class Domestic isa Flight and not Intercontinental endclass
class Intercontinental isa Flight and not Domestic endclass

class Agent
    isa not Seat
    participates in Booking[sold_by] : (0, 50)
endclass
class SeniorAgent isa Agent endclass

class Seat
    participates in Booking[place] : (0, 1)
endclass
class WindowSeat isa Seat and not AisleSeat endclass
class AisleSeat isa Seat and not WindowSeat endclass

relation Booking(who, on, sold_by, place)
    constraints
        (who : Passenger);
        (on : Flight);
        (sold_by : Agent);
        (place : Seat)
endrelation
"""


def describe(label: str, schema) -> Reasoner:
    reasoner = Reasoner(schema)
    expansion = build_expansion(schema)
    n_rel = sum(len(v) for v in expansion.compound_relations.values())
    print(f"{label}:")
    print(f"  relations: {sorted(schema.relation_symbols)} "
          f"(max arity {schema.max_arity()})")
    print(f"  compound classes: {len(expansion.compound_classes)}, "
          f"compound relations: {n_rel}, total expansion: {expansion.size()}")
    print(f"  coherence: {reasoner.check_coherence()}")
    return reasoner


def main() -> None:
    schema = parse_schema(BOOKING_SCHEMA)
    before = describe("Original schema (4-ary Booking)", schema)

    print()
    result = reify_nonbinary_relations(schema)
    info = result.reified[0]
    print(f"reified {info.relation} into tuple class {info.tuple_class} "
          f"and binaries {sorted(info.role_relations.values())}\n")

    after = describe("Reified schema (binary relations only)", result.schema)

    print("\nsatisfiability agrees on every original class:")
    for name in sorted(schema.class_symbols):
        left = before.is_satisfiable(name)
        right = after.is_satisfiable(name)
        marker = "OK" if left == right else "BUG"
        print(f"  {name}: {left} / {right}  {marker}")


if __name__ == "__main__":
    main()
