"""Legacy setup shim for offline editable installs (`pip install -e .`).

All metadata lives in pyproject.toml; this file exists because the target
environment lacks the `wheel` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
