"""Shared hypothesis strategies for schema generation."""

from hypothesis import strategies as st

from repro.core.cardinality import Card
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import (
    Attr,
    AttrRef,
    ClassDef,
    Part,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)

CLASS_NAMES = ("Alpha", "Beta", "Gamma", "Delta")

literals = st.builds(Lit, st.sampled_from(CLASS_NAMES), st.booleans())
clauses = st.lists(literals, min_size=1, max_size=3).map(
    lambda ls: Clause(tuple(ls)))
formulas = st.lists(clauses, min_size=0, max_size=3).map(
    lambda cs: Formula(tuple(cs)))
cards = st.sampled_from([
    Card(0, 0), Card(0, 1), Card(1, 1), Card(1, 2), Card(2, 2),
    Card(2, 5), Card(0, None), Card(1, None),
])


@st.composite
def rich_schemas(draw) -> Schema:
    """Schemas with formulas, attributes (direct and inverse), and possibly
    a binary relation with role clauses and participation constraints."""
    class_defs = []
    with_relation = draw(st.booleans())
    relations = []
    if with_relation:
        role_formulas = [draw(formulas), draw(formulas)]
        constraints = [
            RoleClause(RoleLiteral(role, formula))
            for role, formula in zip(("left", "right"), role_formulas)
            if formula.clauses
        ]
        relations.append(RelationDef("Rel", ("left", "right"), constraints))
    for name in CLASS_NAMES:
        isa = draw(formulas)
        attrs = []
        if draw(st.booleans()):
            ref = draw(st.sampled_from([AttrRef("edge"), inv("edge")]))
            attrs.append(Attr(ref, draw(cards),
                              draw(st.sampled_from(
                                  [Lit(n) for n in CLASS_NAMES]))))
        participations = []
        if with_relation and draw(st.booleans()):
            role = draw(st.sampled_from(["left", "right"]))
            participations.append(Part("Rel", role, draw(cards)))
        class_defs.append(ClassDef(name, isa, attrs, participations))
    return Schema(class_defs, relations)
