"""Shared wire-contract helpers: the one v1-envelope validator.

Every test that looks at a service response — unit dispatches, live
HTTP round trips, registry routes, CI smoke assertions — validates the
body through :func:`check_envelope` first, so the envelope schema is
pinned in exactly one place.  ``unwrap``/``unwrap_error`` are the
ergonomic forms: validate, then hand back the ``data`` or ``error``
member the test actually wants to inspect.
"""

from __future__ import annotations

import re

from repro.service import HTTP_STATUS_BY_EXIT

_ENVELOPE_KEYS = {"api_version", "request_id", "ok", "data", "error"}
_ERROR_REQUIRED = {"code", "sysexit", "message"}
_CODE_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: sysexits the envelope may carry: the pinned table plus EX_USAGE-free
#: internal failure (70 maps to 500 there already).
_KNOWN_SYSEXITS = set(HTTP_STATUS_BY_EXIT)


def check_envelope(payload: dict, *, status: int = None) -> dict:
    """Assert ``payload`` is a well-formed v1 envelope; return it.

    When ``status`` is given, also checks the ``ok`` flag agrees with
    the HTTP status class and that error sysexits stay consistent with
    the pinned sysexits→HTTP table.
    """
    assert isinstance(payload, dict), f"body is not an object: {payload!r}"
    unknown = set(payload) - _ENVELOPE_KEYS
    assert not unknown, f"unexpected envelope keys: {sorted(unknown)}"
    assert payload.get("api_version") == 1, payload
    request_id = payload.get("request_id")
    assert isinstance(request_id, str) and request_id, payload
    ok = payload.get("ok")
    assert isinstance(ok, bool), payload
    if ok:
        assert "data" in payload and "error" not in payload, payload
    else:
        assert "error" in payload and "data" not in payload, payload
        error = payload["error"]
        assert isinstance(error, dict), payload
        missing = _ERROR_REQUIRED - set(error)
        assert not missing, f"error missing {sorted(missing)}: {error}"
        assert _CODE_RE.match(error["code"]), error
        assert isinstance(error["sysexit"], int), error
        assert isinstance(error["message"], str), error
        if "retry_after_ms" in error:
            assert isinstance(error["retry_after_ms"], int), error
            assert error["retry_after_ms"] > 0, error
        # A sysexit from the pinned table must agree with the status the
        # table assigns it (protocol-only statuses like 431/503 carry
        # sysexits whose table status differs — those are not in-table
        # round trips, so only check codes the table can produce).
        if status is not None and error["sysexit"] in _KNOWN_SYSEXITS:
            table_status = HTTP_STATUS_BY_EXIT[error["sysexit"]]
            assert status in (table_status, 405, 408, 431, 501, 503), \
                (status, error)
    if status is not None:
        assert ok == (status < 400), (status, payload)
    return payload


def unwrap(payload: dict, *, status: int = None) -> dict:
    """Validate a success envelope and return its ``data`` member."""
    check_envelope(payload, status=status)
    assert payload["ok"] is True, payload
    return payload["data"]


def unwrap_error(payload: dict, *, status: int = None) -> dict:
    """Validate an error envelope and return its ``error`` member."""
    check_envelope(payload, status=status)
    assert payload["ok"] is False, payload
    return payload["error"]
