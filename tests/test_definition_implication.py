"""Unit tests for definition-level logical implication."""

import pytest

from repro.core.cardinality import Card
from repro.core.errors import ReasoningError
from repro.core.formulas import Lit
from repro.core.schema import Attr, AttrRef, ClassDef, Part, inv
from repro.parser.parser import parse_schema
from repro.reasoner.implication import (
    implied_attribute_filler,
    implies_class_definition,
)
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.paper_schemas import figure2_schema


@pytest.fixture(scope="module")
def figure2_reasoner():
    return Reasoner(figure2_schema())


class TestImpliedAttributeFiller:
    def test_declared_filler_implied(self, figure2_reasoner):
        assert implied_attribute_filler(
            figure2_reasoner, "Course", AttrRef("taught_by"),
            Lit("Professor") | Lit("Grad_Student"))

    def test_derived_filler(self, figure2_reasoner):
        # Teachers are persons, even though no definition says so directly.
        assert implied_attribute_filler(
            figure2_reasoner, "Course", AttrRef("taught_by"), Lit("Person"))

    def test_refined_filler_for_subclass(self, figure2_reasoner):
        # Advanced courses are taught by professors only.
        assert implied_attribute_filler(
            figure2_reasoner, "Adv_Course", AttrRef("taught_by"),
            Lit("Professor"))
        # ... but courses in general are not.
        assert not implied_attribute_filler(
            figure2_reasoner, "Course", AttrRef("taught_by"),
            Lit("Professor"))

    def test_inverse_filler(self, figure2_reasoner):
        assert implied_attribute_filler(
            figure2_reasoner, "Professor", inv("taught_by"), Lit("Course"))

    def test_unknown_symbol_rejected(self, figure2_reasoner):
        with pytest.raises(ReasoningError):
            implied_attribute_filler(
                figure2_reasoner, "Course", AttrRef("taught_by"),
                Lit("Martian"))


class TestImpliesClassDefinition:
    def test_weaker_definition_is_implied(self, figure2_reasoner):
        # A Grad_Student is a Person with between 0 and 2 taught courses and
        # between 1 and 6 enrolments — all weaker than what is declared.
        candidate = ClassDef(
            "Grad_Student",
            isa=Lit("Person"),
            attributes=[Attr(inv("taught_by"), Card(0, 2), "Course")],
            participates=[Part("Enrollment", "enrolls", Card(1, 6))],
        )
        assert implies_class_definition(figure2_reasoner, candidate)

    def test_stronger_cardinality_not_implied(self, figure2_reasoner):
        candidate = ClassDef(
            "Student",
            participates=[Part("Enrollment", "enrolls", Card(2, 3))],
        )
        assert not implies_class_definition(figure2_reasoner, candidate)

    def test_wrong_isa_not_implied(self, figure2_reasoner):
        candidate = ClassDef("Person", isa=Lit("Student"))
        assert not implies_class_definition(figure2_reasoner, candidate)

    def test_stronger_filler_not_implied(self, figure2_reasoner):
        candidate = ClassDef(
            "Course",
            attributes=[Attr("taught_by", Card(1, 1), Lit("Grad_Student"))],
        )
        assert not implies_class_definition(figure2_reasoner, candidate)

    def test_unsatisfiable_class_implies_anything(self):
        reasoner = Reasoner(parse_schema("""
            class Bad isa Good and not Good endclass
            class Good endclass
        """))
        candidate = ClassDef("Bad", isa=Lit("Good") & ~Lit("Good"))
        assert implies_class_definition(reasoner, candidate)

    def test_declared_definitions_are_implied(self, figure2_reasoner):
        # Trivially: every definition of the schema is implied by it.
        for cdef in figure2_schema().class_definitions:
            assert implies_class_definition(figure2_reasoner, cdef), cdef.name

    def test_non_classdef_rejected(self, figure2_reasoner):
        with pytest.raises(ReasoningError):
            implies_class_definition(figure2_reasoner, "Course")
