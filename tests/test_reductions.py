"""Unit tests for the Theorem 4.1 / 4.2 reduction machinery."""

import pytest

from repro.core.errors import CarError
from repro.reasoner.satisfiability import Reasoner
from repro.reductions.intersection_pattern import (
    IntersectionPattern,
    pattern_solvable_bruteforce,
    pattern_to_schema,
    solution_to_model,
)
from repro.reductions.sat_reduction import (
    CnfFormula,
    cnf_to_schema,
    dpll_satisfiable,
    random_cnf,
)
from repro.reductions.tm_reduction import machine_to_schema
from repro.reductions.turing import (
    MachineError,
    TuringMachine,
    never_accepts,
    parity_machine,
    starts_with_one,
)
from repro.semantics.checker import is_model


class TestTuringMachine:
    def test_accepting_run(self):
        outcome = parity_machine().run("11", time=4, space=3)
        assert outcome.accepted
        assert outcome.trace[0].state == "even"

    def test_rejecting_run(self):
        assert not parity_machine().accepts("1", time=4, space=2)

    def test_time_bound_respected(self):
        # Parity of "11" needs 3 steps (two moves + blank step).
        assert not parity_machine().accepts("11", time=2, space=3)
        assert parity_machine().accepts("11", time=4, space=3)

    def test_space_bound_halts(self):
        # The head runs off the 1-cell tape before seeing the blank.
        assert not parity_machine().accepts("1", time=10, space=1)

    def test_never_accepts(self):
        assert not never_accepts().accepts("1", time=50, space=2)

    def test_accept_state_must_be_sink(self):
        with pytest.raises(MachineError):
            TuringMachine.build({("acc", "_"): ("acc", "_", 0)},
                                initial="q0", accept="acc")

    def test_input_must_fit(self):
        with pytest.raises(MachineError):
            starts_with_one().run("111", time=1, space=2)

    def test_bad_move_rejected(self):
        with pytest.raises(MachineError):
            TuringMachine.build({("q0", "_"): ("q0", "_", 2)},
                                initial="q0", accept="acc")


class TestTmReduction:
    CASES = [
        (starts_with_one, "1", 1, 1),
        (starts_with_one, "0", 1, 1),
        (parity_machine, "1", 3, 2),
        (never_accepts, "0", 2, 1),
        (parity_machine, "0", 3, 2),
    ]

    @pytest.mark.parametrize("factory,word,time,space", CASES)
    def test_satisfiability_matches_acceptance(self, factory, word, time, space):
        machine = factory()
        reduction = machine_to_schema(machine, word, time, space)
        reasoner = Reasoner(reduction.schema)
        assert reasoner.is_satisfiable(reduction.target) == \
            machine.accepts(word, time, space)

    def test_numbers_are_zero_or_one(self):
        # Theorem 4.1 holds with only 0/1 cardinalities and no relations.
        reduction = machine_to_schema(starts_with_one(), "1", 1, 1)
        assert not reduction.schema.relation_symbols
        for cdef in reduction.schema.class_definitions:
            for spec in cdef.attributes:
                assert spec.card.lower in (0, 1)
                assert spec.card.upper in (0, 1)

    def test_input_too_long_rejected(self):
        with pytest.raises(CarError):
            machine_to_schema(starts_with_one(), "11", 1, 1)

    @pytest.mark.slow
    def test_parity_accepting_run(self):
        machine = parity_machine()
        reduction = machine_to_schema(machine, "11", 4, 3)
        assert Reasoner(reduction.schema).is_satisfiable(reduction.target)


class TestIntersectionPattern:
    def test_matrix_validation(self):
        with pytest.raises(CarError):
            IntersectionPattern.of([[1, 2], [3, 1]])  # not symmetric
        with pytest.raises(CarError):
            IntersectionPattern.of([[1, 2]])  # not square

    def test_bruteforce_positive(self):
        pattern = IntersectionPattern.of([[2, 1], [1, 2]])
        assert pattern_solvable_bruteforce(pattern)

    def test_bruteforce_negative(self):
        # |S1 ∩ S2| = 3 > min(|S1|, |S2|) = 2 is impossible.
        pattern = IntersectionPattern.of([[2, 3], [3, 3]])
        assert not pattern_solvable_bruteforce(pattern)

    def test_schema_shape(self):
        schema = pattern_to_schema(IntersectionPattern.of([[1, 0], [0, 1]]))
        assert schema.is_union_free()
        assert schema.is_negation_free()
        assert not schema.relation_symbols

    def test_solution_to_model_is_verified_model(self):
        pattern = IntersectionPattern.of([[2, 1], [1, 2]])
        sets = [frozenset({"x", "y"}), frozenset({"y", "z"})]
        schema = pattern_to_schema(pattern)
        interp = solution_to_model(pattern, sets)
        assert is_model(interp, schema)
        assert interp.class_ext("W")

    def test_solvable_pattern_gives_satisfiable_w(self):
        pattern = IntersectionPattern.of([[2, 1], [1, 2]])
        reasoner = Reasoner(pattern_to_schema(pattern))
        assert reasoner.is_satisfiable("W")

    def test_pairwise_infeasible_pattern_unsatisfiable(self):
        pattern = IntersectionPattern.of([[2, 3], [3, 3]])
        reasoner = Reasoner(pattern_to_schema(pattern))
        assert not reasoner.is_satisfiable("W")

    def test_set_sizes_forced(self):
        # In every model |C_i| = a_ii · |W|; check via synthesized model.
        from repro.synthesis.builder import synthesize_model

        pattern = IntersectionPattern.of([[3, 1], [1, 2]])
        reasoner = Reasoner(pattern_to_schema(pattern))
        report = synthesize_model(reasoner, target="W")
        interp = report.interpretation
        w = len(interp.class_ext("W"))
        assert len(interp.class_ext("C0")) == 3 * w
        assert len(interp.class_ext("C1")) == 2 * w


class TestSatReduction:
    def test_dpll_simple(self):
        formula = CnfFormula.of(2, [[(0, True)], [(1, False)]])
        assignment = dpll_satisfiable(formula)
        assert assignment == {0: True, 1: False}

    def test_dpll_unsat(self):
        formula = CnfFormula.of(1, [[(0, True)], [(0, False)]])
        assert dpll_satisfiable(formula) is None

    def test_empty_clause_rejected(self):
        with pytest.raises(CarError):
            CnfFormula.of(1, [[]])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(CarError):
            CnfFormula.of(1, [[(3, True)]])

    @pytest.mark.parametrize("seed", range(12))
    def test_reduction_matches_dpll(self, seed):
        formula = random_cnf(n_vars=4, n_clauses=6, seed=seed)
        expected = dpll_satisfiable(formula) is not None
        reasoner = Reasoner(cnf_to_schema(formula))
        assert reasoner.is_satisfiable("World") == expected

    def test_random_cnf_deterministic(self):
        assert random_cnf(5, 7, seed=3) == random_cnf(5, 7, seed=3)
        assert random_cnf(5, 7, seed=3) != random_cnf(5, 7, seed=4)
