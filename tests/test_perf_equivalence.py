"""Equivalence guarantees for the indexed expansion pipeline.

The throughput optimizations — endpoint indexes, binding-endpoint pruning,
memoized typing checks, incremental augmented queries, incremental table
extension — must never change any answer.  This suite pins each of them
against its reference implementation on randomized seeded schemas from
:mod:`repro.workloads.generators` (property-style: many seeds, exact
comparisons).
"""

from dataclasses import replace
from itertools import product

import pytest

from repro.core.cardinality import Card
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import (
    Attr,
    ClassDef,
    Part,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)
from repro.engine.config import EngineConfig
from repro.expansion.compound import (
    AttributeTyping,
    CompoundAttribute,
    CompoundRelation,
    RelationTyping,
    is_consistent_compound_attribute,
    is_consistent_compound_relation,
)
from repro.expansion.expansion import build_expansion, is_binding
from repro.expansion.tables import build_tables
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import clustered_schema, random_schema

SEEDS = range(8)


def relational_schema(seed: int) -> Schema:
    """A random schema augmented with a binary relation over its classes."""
    schema = random_schema(6, seed=seed)
    names = sorted(schema.class_symbols)
    a, b = names[seed % len(names)], names[(seed + 1) % len(names)]
    classes = list(schema.class_definitions)
    classes.append(ClassDef("Anchor",
                            participates=[Part("Rel", "u", Card(1, 2))]))
    return Schema(classes, [
        RelationDef("Rel", ("u", "v"), [
            RoleClause(RoleLiteral("u", Lit(a) | Lit("Anchor"))),
            RoleClause(RoleLiteral("v", Lit(b))),
        ])])


# ----------------------------------------------------------------------
# Indexed lookups vs. the linear scans
# ----------------------------------------------------------------------
class TestEndpointIndexEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_attribute_lookups_match_scans(self, seed):
        expansion = build_expansion(random_schema(6, seed=seed))
        scanning = replace(expansion, indexed=False)
        assert scanning.indexed is False
        for attr, compounds in expansion.compound_attributes.items():
            endpoints = ({ca.left for ca in compounds}
                         | {ca.right for ca in compounds}
                         | set(expansion.compound_classes))
            for members in endpoints:
                assert (expansion.attributes_with_left(attr, members)
                        == scanning.attributes_with_left(attr, members))
                assert (expansion.attributes_with_right(attr, members)
                        == scanning.attributes_with_right(attr, members))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relation_lookups_match_scans(self, seed):
        expansion = build_expansion(relational_schema(seed))
        scanning = replace(expansion, indexed=False)
        for relation, compounds in expansion.compound_relations.items():
            roles = expansion.schema.relation(relation).roles
            for role in roles:
                for members in expansion.compound_classes:
                    assert (expansion.relations_with_role(relation, role, members)
                            == scanning.relations_with_role(relation, role,
                                                            members))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lookup_sets_cover_all_compounds(self, seed):
        """Every compound attribute appears under exactly its endpoints."""
        expansion = build_expansion(random_schema(6, seed=seed))
        for attr, compounds in expansion.compound_attributes.items():
            recovered = set()
            for members in {ca.left for ca in compounds}:
                recovered.update(expansion.attributes_with_left(attr, members))
            assert recovered == set(compounds)


# ----------------------------------------------------------------------
# Memoized typing checks vs. the reference predicates
# ----------------------------------------------------------------------
class TestTypingMemoEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_attribute_typing_matches_reference(self, seed):
        schema = random_schema(6, seed=seed)
        compounds = build_expansion(schema).compound_classes
        for attr in schema.attribute_symbols:
            typing = AttributeTyping(schema, attr)
            for left, right in product(compounds, compounds):
                candidate = CompoundAttribute(attr, left, right)
                assert typing.consistent(left, right) == \
                    is_consistent_compound_attribute(
                        schema, candidate, endpoints_consistent=True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relation_typing_matches_reference(self, seed):
        schema = relational_schema(seed)
        compounds = build_expansion(schema).compound_classes
        for rdef in schema.relation_definitions:
            typing = RelationTyping(schema, rdef.name)
            for combo in product(compounds, repeat=rdef.arity):
                assignment = dict(zip(rdef.roles, combo))
                candidate = CompoundRelation(rdef.name, assignment)
                assert typing.consistent(assignment) == \
                    is_consistent_compound_relation(
                        schema, candidate, endpoints_consistent=True)


# ----------------------------------------------------------------------
# Binding-endpoint pruning vs. Definition 3.1 verbatim
# ----------------------------------------------------------------------
class TestPruningEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pruned_is_exactly_the_binding_slice(self, seed):
        """The pruned enumeration holds exactly the verbatim compound
        attributes with a binding endpoint — Definition 3.1 restricted by
        the ``is_binding`` rule, no more and no fewer."""
        schema = random_schema(6, seed=seed)
        pruned = build_expansion(schema)
        verbatim = build_expansion(schema, include_unconstrained=True)
        assert pruned.compound_classes == verbatim.compound_classes
        assert pruned.natt == verbatim.natt
        for attr in schema.attribute_symbols:
            from repro.core.schema import AttrRef
            direct, inverse = AttrRef(attr), AttrRef(attr, inverse=True)
            expected = {
                ca for ca in verbatim.compound_attributes.get(attr, ())
                if is_binding(verbatim.natt.get((ca.left, direct),
                                                Card(0, None)))
                or is_binding(verbatim.natt.get((ca.right, inverse),
                                                Card(0, None)))
            }
            assert set(pruned.compound_attributes.get(attr, ())) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pruned_relations_are_exactly_the_binding_slice(self, seed):
        schema = relational_schema(seed)
        pruned = build_expansion(schema)
        verbatim = build_expansion(schema, include_unconstrained=True)
        for rdef in schema.relation_definitions:
            expected = {
                cr for cr in verbatim.compound_relations.get(rdef.name, ())
                if any(is_binding(verbatim.nrel.get(
                        (members, rdef.name, role), Card(0, None)))
                       for role, members in cr.assignment)
            }
            assert set(pruned.compound_relations.get(rdef.name, ())) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_duplicate_candidates(self, seed):
        """The union decomposition generates each relevant pair once."""
        schema = relational_schema(seed)
        expansion = build_expansion(schema)
        for compounds in expansion.compound_attributes.values():
            assert len(compounds) == len(set(compounds))
        for compounds in expansion.compound_relations.values():
            assert len(compounds) == len(set(compounds))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_verdicts_pruned_vs_verbatim(self, seed):
        """Satisfiability is decided identically over both expansions."""
        from repro.linear.support import acceptable_support

        schema = random_schema(5, seed=seed)
        verdicts = []
        for include in (False, True):
            expansion = build_expansion(schema,
                                        include_unconstrained=include)
            support = acceptable_support(expansion)
            populated = set(support.supported_compound_classes())
            verdicts.append({name: any(name in members for members in populated)
                             for name in sorted(schema.class_symbols)})
        assert verdicts[0] == verdicts[1]


# ----------------------------------------------------------------------
# Strategy and incremental-augmented equivalence
# ----------------------------------------------------------------------
def cross_cluster_formulas(schema: Schema) -> list[Formula]:
    names = sorted(schema.class_symbols)
    picked = [names[0], names[len(names) // 2], names[-1]]
    return [
        Formula((Clause((Lit(picked[0]),)), Clause((Lit(picked[1]),)))),
        Formula((Clause((Lit(picked[0]), Lit(picked[2]))),
                 Clause((Lit(picked[1], positive=False),)))),
        Formula((Clause((Lit(picked[2]),)),
                 Clause((Lit(picked[0], positive=False),)))),
    ]


class TestAugmentedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_formula_verdicts_naive_vs_incremental(self, seed):
        schema = clustered_schema(3, 2, seed=seed)
        naive = Reasoner(schema, config=EngineConfig(strategy="naive"))
        incremental = Reasoner(schema, config=EngineConfig(strategy="strategic"))
        full = Reasoner(schema, config=EngineConfig(
            strategy="strategic", incremental_augmented=False))
        for formula in cross_cluster_formulas(schema):
            expected = naive.is_formula_satisfiable(formula)
            assert incremental.is_formula_satisfiable(formula) == expected
            assert full.is_formula_satisfiable(formula) == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_augmented_reasoner_matches_cold_rebuild(self, seed):
        schema = clustered_schema(3, 2, seed=seed)
        base = Reasoner(schema, config=EngineConfig(strategy="strategic"))
        base.support  # build the pipeline so seeding applies
        probe = ClassDef(base.fresh_class_name("Probe"),
                         isa=next(iter(cross_cluster_formulas(schema))))
        seeded = base.augmented_with(probe)
        cold = Reasoner(schema.with_class(probe), config=EngineConfig(strategy="strategic"))
        assert seeded._precomputed_classes is not None  # fast path engaged
        assert (set(seeded.expansion.compound_classes)
                == set(cold.expansion.compound_classes))
        for name in sorted(schema.class_symbols) + [probe.name]:
            assert seeded.is_satisfiable(name) == cold.is_satisfiable(name)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_extended_tables_match_full_rebuild(self, seed):
        schema = random_schema(6, seed=seed)
        base_tables = build_tables(schema)
        reasoner = Reasoner(schema)
        name = reasoner.fresh_class_name("Probe")
        for formula in cross_cluster_formulas(schema):
            augmented = schema.with_class(ClassDef(name, isa=formula))
            extended = base_tables.extended_with(augmented, name)
            rebuilt = build_tables(augmented)
            assert extended._implied == rebuilt._implied
            assert extended.empty_classes == rebuilt.empty_classes
            assert extended.disjoint_pairs == rebuilt.disjoint_pairs

    def test_extended_with_rejects_existing_class(self):
        schema = random_schema(4, seed=0)
        tables = build_tables(schema)
        name = sorted(schema.class_symbols)[0]
        with pytest.raises(ValueError):
            tables.extended_with(schema, name)

    def test_verdict_cache_is_lru_bounded(self):
        schema = clustered_schema(2, 2, seed=3)
        reasoner = Reasoner(schema, config=EngineConfig(strategy="strategic"))
        limit = Reasoner.AUGMENTED_CACHE_LIMIT
        names = sorted(schema.class_symbols)
        # Synthesize more distinct cross-cluster formulas than the cache
        # holds: (A_i ∧ B_j) over distinct cluster pairs, padded by repeats.
        formulas = []
        for i in range(limit + 16):
            formulas.append(Formula((
                Clause((Lit(names[0]),)),
                Clause((Lit(names[-1]), Lit(names[i % len(names)]))),
                Clause((Lit(names[(i // len(names)) % len(names)],
                            positive=False), Lit(names[0]))),
            )))
        distinct = list(dict.fromkeys(formulas))
        for formula in distinct:
            reasoner._augmented_satisfiable(formula)
        assert len(reasoner._augmented_cache) <= limit
        # A cached verdict is reused (hit keeps the entry at the MRU end).
        last = distinct[-1]
        assert last in reasoner._augmented_cache
        reasoner._augmented_satisfiable(last)
        assert next(reversed(reasoner._augmented_cache)) == last


# ----------------------------------------------------------------------
# The cumulative size_limit guard
# ----------------------------------------------------------------------
class TestCumulativeSizeLimit:
    def attribute_heavy_schema(self) -> Schema:
        # 3 pairwise-compatible classes sharing one attribute: few compound
        # classes, many compound attributes.
        return Schema([
            ClassDef("A", attributes=[Attr("link", Card(1, 1))]),
            ClassDef("B", attributes=[Attr("link", Card(1, 2))]),
            ClassDef("C", attributes=[Attr(inv("link"), Card(0, 4))]),
        ])

    def test_limit_counts_classes(self):
        from repro.core.errors import ReasoningError

        classes = [ClassDef(f"C{i}") for i in range(12)]
        with pytest.raises(ReasoningError):
            build_expansion(Schema(classes), "naive", size_limit=100)

    def test_limit_is_cumulative_over_all_compound_objects(self):
        from repro.core.errors import ReasoningError

        schema = self.attribute_heavy_schema()
        unlimited = build_expansion(schema)
        total = unlimited.size()
        n_classes = len(unlimited.compound_classes)
        # The class count alone fits, the running total does not: the old
        # per-attribute guard missed exactly this case.
        assert n_classes < total - 1
        with pytest.raises(ReasoningError):
            build_expansion(schema, size_limit=total - 1)
        assert build_expansion(schema, size_limit=total).size() == total

    def test_limit_spans_multiple_attributes(self):
        from repro.core.errors import ReasoningError

        # Two attributes with a handful of compound attributes each: each
        # per-attribute count stays below the limit, the total exceeds it.
        schema = Schema([
            ClassDef("A", attributes=[Attr("x", Card(1, 1)),
                                      Attr("y", Card(1, 1))]),
            ClassDef("B"),
        ])
        unlimited = build_expansion(schema)
        per_attr = {attr: len(v)
                    for attr, v in unlimited.compound_attributes.items()}
        limit = len(unlimited.compound_classes) + max(per_attr.values())
        assert limit < unlimited.size()
        with pytest.raises(ReasoningError):
            build_expansion(schema, size_limit=limit)
