"""Unit tests for the benchmark helper library."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from benchlib import (  # noqa: E402
    Series,
    growth_ratios,
    is_subquadratic,
    is_superlinear,
    render_table,
    timed,
)


class TestTimed:
    def test_returns_result_and_positive_time(self):
        seconds, value = timed(lambda: sum(range(1000)))
        assert value == sum(range(1000))
        assert seconds >= 0


class TestGrowth:
    def test_growth_ratios(self):
        assert growth_ratios([1, 2, 8]) == [2.0, 4.0]

    def test_zero_denominator(self):
        assert growth_ratios([0, 5]) == [0.0]

    def test_superlinear_exponential(self):
        xs = [2, 4, 8, 16]
        ys = [4, 16, 256, 65536]
        assert is_superlinear(xs, ys)

    def test_not_superlinear_when_linear(self):
        xs = [2, 4, 8, 16]
        ys = [20, 40, 80, 160]
        assert not is_superlinear(xs, ys)

    def test_subquadratic_linear(self):
        xs = [1, 2, 4, 8]
        ys = [3, 6, 12, 24]
        assert is_subquadratic(xs, ys)

    def test_not_subquadratic_cubic(self):
        xs = [1, 2, 4, 8]
        ys = [1, 8, 64, 512]
        assert not is_subquadratic(xs, ys)

    def test_degenerate_zero_start(self):
        assert is_superlinear([0, 1], [0, 1])
        assert is_subquadratic([0, 1], [0, 1])

    def test_series_wrapper(self):
        series = Series("demo", [1, 2], [3.0, 9.0])
        assert series.ratios() == [3.0]


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table("Title", ["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2].strip()) <= {"-", " "}
        assert "30" in text and "2.5" in text

    def test_float_formatting(self):
        text = render_table("t", ["x"], [[0.000123456]])
        assert "0.0001235" in text or "0.0001234" in text
