"""Unit tests for interpretations and the model checker."""

import pytest

from repro.core.cardinality import Card
from repro.core.errors import SemanticsError
from repro.core.formulas import Lit
from repro.core.schema import Attr, AttrRef, ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema, inv
from repro.parser.parser import parse_schema
from repro.semantics.checker import check_model, is_model
from repro.semantics.interpretation import Interpretation, LabeledTuple, restrict_to_schema


class TestLabeledTuple:
    def test_lookup(self):
        tup = LabeledTuple({"of": 1, "by": 2})
        assert tup["of"] == 1
        assert tup["by"] == 2

    def test_missing_role(self):
        with pytest.raises(KeyError):
            LabeledTuple({"of": 1})["by"]

    def test_canonical_equality(self):
        assert LabeledTuple({"a": 1, "b": 2}) == LabeledTuple([("b", 2), ("a", 1)])

    def test_hashable_set_semantics(self):
        tuples = {LabeledTuple({"a": 1}), LabeledTuple({"a": 1})}
        assert len(tuples) == 1

    def test_empty_rejected(self):
        with pytest.raises(SemanticsError):
            LabeledTuple({})

    def test_duplicate_role_rejected(self):
        with pytest.raises(SemanticsError):
            LabeledTuple([("a", 1), ("a", 2)])


class TestInterpretation:
    def test_empty_universe_rejected(self):
        with pytest.raises(SemanticsError):
            Interpretation([])

    def test_class_must_stay_in_universe(self):
        with pytest.raises(SemanticsError):
            Interpretation([1], classes={"C": {2}})

    def test_attribute_pairs_validated(self):
        with pytest.raises(SemanticsError):
            Interpretation([1], attributes={"a": {(1, 2)}})
        with pytest.raises(SemanticsError):
            Interpretation([1], attributes={"a": {(1,)}})

    def test_relation_tuples_validated(self):
        with pytest.raises(SemanticsError):
            Interpretation([1], relations={"R": {LabeledTuple({"u": 9})}})

    def test_unmentioned_symbols_empty(self):
        interp = Interpretation([1, 2])
        assert interp.class_ext("C") == frozenset()
        assert interp.attribute_ext("a") == frozenset()
        assert interp.relation_ext("R") == frozenset()

    def test_inverse_extension(self):
        interp = Interpretation([1, 2], attributes={"a": {(1, 2)}})
        assert interp.attr_ref_ext(inv("a")) == frozenset({(2, 1)})

    def test_formula_ext(self):
        interp = Interpretation([1, 2, 3], classes={"A": {1, 2}, "B": {2}})
        formula = Lit("A") & ~Lit("B")
        assert interp.formula_ext(formula) == frozenset({1})

    def test_link_counts(self):
        interp = Interpretation([1, 2, 3], attributes={"a": {(1, 2), (1, 3), (2, 3)}})
        assert interp.attr_link_count(AttrRef("a"), 1) == 2
        assert interp.attr_link_count(inv("a"), 3) == 2
        assert interp.attr_fillers(AttrRef("a"), 1) == frozenset({2, 3})

    def test_participation_count(self):
        tuples = {LabeledTuple({"u": 1, "v": 2}), LabeledTuple({"u": 1, "v": 3})}
        interp = Interpretation([1, 2, 3], relations={"R": tuples})
        assert interp.participation_count("R", "u", 1) == 2
        assert interp.participation_count("R", "v", 1) == 0


def university() -> Schema:
    return parse_schema("""
        class Person endclass
        class Student isa Person and not Professor endclass
        class Professor isa Person endclass
    """)


class TestChecker:
    def test_empty_interpretation_is_model(self):
        # The paper: the everything-empty interpretation satisfies any schema.
        schema = university()
        assert is_model(Interpretation([0]), schema)

    def test_isa_violation(self):
        schema = university()
        interp = Interpretation([0], classes={"Student": {0}})
        violations = check_model(interp, schema)
        assert any(v.kind == "isa" for v in violations)

    def test_isa_satisfied(self):
        schema = university()
        interp = Interpretation([0], classes={"Student": {0}, "Person": {0}})
        assert is_model(interp, schema)

    def test_disjointness_violation(self):
        schema = university()
        interp = Interpretation([0], classes={
            "Student": {0}, "Professor": {0}, "Person": {0}})
        assert not is_model(interp, schema)

    def test_attribute_cardinality_violation(self):
        schema = Schema([ClassDef("C", attributes=[Attr("a", Card(2, 3), "D")])])
        interp = Interpretation([0, 1], classes={"C": {0}, "D": {1}},
                                attributes={"a": {(0, 1)}})
        violations = check_model(interp, schema)
        assert any(v.kind == "attribute-cardinality" for v in violations)

    def test_attribute_type_violation(self):
        schema = Schema([ClassDef("C", attributes=[Attr("a", Card(0, 5), "D")])])
        interp = Interpretation([0, 1], classes={"C": {0}},
                                attributes={"a": {(0, 1)}})
        violations = check_model(interp, schema)
        assert any(v.kind == "attribute-type" for v in violations)

    def test_inverse_attribute_counting(self):
        schema = Schema([
            ClassDef("Professor",
                     attributes=[Attr(inv("taught_by"), Card(1, 2), "Course")]),
        ])
        # Professor 0 is taught_by-filler of zero courses: violates (1, 2).
        interp = Interpretation([0], classes={"Professor": {0}})
        assert not is_model(interp, schema)
        # With one course pointing at the professor it is fine.
        interp = Interpretation([0, 1],
                                classes={"Professor": {0}, "Course": {1}},
                                attributes={"taught_by": {(1, 0)}})
        assert is_model(interp, schema)

    def test_participation_cardinality(self):
        schema = Schema(
            [ClassDef("C", participates=[Part("R", "u", Card(1, 1))])],
            [RelationDef("R", ("u", "v"))])
        interp = Interpretation([0, 1], classes={"C": {0}})
        assert not is_model(interp, schema)
        interp = Interpretation([0, 1], classes={"C": {0}},
                                relations={"R": {LabeledTuple({"u": 0, "v": 1})}})
        assert is_model(interp, schema)

    def test_role_clause_violation(self):
        schema = Schema([], [RelationDef("R", ("u", "v"), [
            RoleClause(RoleLiteral("u", "A"), RoleLiteral("v", "B")),
        ])])
        bad = Interpretation([0, 1], relations={"R": {LabeledTuple({"u": 0, "v": 1})}})
        assert any(v.kind == "role-clause" for v in check_model(bad, schema))
        good = Interpretation([0, 1], classes={"B": {1}},
                              relations={"R": {LabeledTuple({"u": 0, "v": 1})}})
        assert is_model(good, schema)

    def test_relation_arity_violation(self):
        schema = Schema([], [RelationDef("R", ("u", "v"))])
        interp = Interpretation([0], relations={"R": {LabeledTuple({"u": 0})}})
        assert any(v.kind == "relation-arity" for v in check_model(interp, schema))

    def test_restrict_to_schema(self):
        schema = university()
        interp = Interpretation([0], classes={"Person": {0}, "Alien": {0}})
        restricted = restrict_to_schema(interp, schema)
        assert restricted.class_ext("Alien") == frozenset()
        assert restricted.class_ext("Person") == frozenset({0})
