"""Suite-wide fixtures.

The CLI defaults its precompiled-artifact cache to ``~/.cache/repro``
(overridable via ``$REPRO_ARTIFACT_DIR``); tests must neither read a
developer's real cache (stale snapshots would mask cold-path bugs) nor
write into it.  Every test therefore gets a private, empty artifact
directory — tests that want cross-run warmth share one explicitly.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_artifact_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "artifacts"))
