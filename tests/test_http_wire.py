"""The asyncio wire layer, probed with raw sockets.

:mod:`tests.test_service` drives the socket-free application; these
tests drive the HTTP/1.1 parser itself — keep-alive, pipelining,
split-segment framing, size limits, slow-loris/idle timeouts, and
half-finished clients — the failure modes a hand-rolled parser has to
get right.
"""

import json
import socket
import time

import pytest

from repro.service import API_VERSION, ReproService, ServiceConfig
from tests.wire import check_envelope, unwrap, unwrap_error

DISJOINT_SCHEMA = "class A isa not B endclass class B endclass"


def _request_bytes(method="POST", path="/v1/satisfiable", body=None,
                   headers=()):
    payload = b"" if body is None else json.dumps(body).encode()
    lines = [f"{method} {path} HTTP/1.1", "Host: t",
             f"Content-Length: {len(payload)}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return "\r\n".join(lines).encode() + b"\r\n\r\n" + payload


class _Client:
    """A raw-socket HTTP client that keeps its read buffer across
    responses — pipelined replies arrive back-to-back in one segment,
    so per-call ``recv`` would throw away the next response's bytes."""

    def __init__(self, address, timeout=10):
        self.sock = socket.create_connection(address, timeout=timeout)
        self._buffer = b""

    def sendall(self, raw):
        self.sock.sendall(raw)

    def recv(self, n):
        if self._buffer:
            chunk, self._buffer = self._buffer[:n], self._buffer[n:]
            return chunk
        return self.sock.recv(n)

    def close(self):
        self.sock.close()

    def read_response(self):
        """One full HTTP response: (status, headers, body)."""
        while b"\r\n\r\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed before a full header")
            self._buffer += chunk
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        while len(self._buffer) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed mid-body")
            self._buffer += chunk
        raw, self._buffer = self._buffer[:length], self._buffer[length:]
        body = json.loads(raw) if length else None
        return status, headers, body


def _read_response(conn):
    return conn.read_response()


@pytest.fixture(scope="module")
def live():
    config = ServiceConfig(port=0, max_header_bytes=2048,
                           max_body_bytes=4096, idle_timeout_s=1.0)
    with ReproService(config) as svc:
        yield svc, (svc.host, svc.port)


@pytest.fixture()
def conn(live):
    _, address = live
    client = _Client(address)
    yield client
    client.close()


class TestKeepAliveAndPipelining:
    def test_many_requests_reuse_one_connection(self, conn):
        for index in range(5):
            conn.sendall(_request_bytes(
                body={"schema": DISJOINT_SCHEMA, "formula": "A"}))
            status, headers, payload = _read_response(conn)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert unwrap(payload, status=status)["verdict"] is True
            assert payload["api_version"] == API_VERSION

    def test_pipelined_requests_answer_in_order(self, live, conn):
        svc, _ = live
        before = svc.tracer.counters.get("service.requests_pipelined", 0)
        # The first request must be a cache-cold formula: a warm hit is
        # answered inline on the event loop as fast as the reader parses
        # it, so the pipelining counter would stay at zero.  A cold one
        # occupies the worker pool while requests 2-3 queue behind it.
        batch = (_request_bytes(body={"schema": DISJOINT_SCHEMA,
                                      "formula": "A or not B"})
                 + _request_bytes(method="GET", path="/healthz")
                 + _request_bytes(body={"schema": DISJOINT_SCHEMA,
                                        "formula": "A and B"}))
        conn.sendall(batch)
        first = _read_response(conn)
        second = _read_response(conn)
        third = _read_response(conn)
        assert unwrap(first[2])["verdict"] is True
        assert unwrap(second[2])["status"] == "ok"
        assert unwrap(third[2])["verdict"] is False
        assert (svc.tracer.counters.get("service.requests_pipelined", 0)
                > before)

    def test_request_split_across_tcp_segments(self, conn):
        raw = _request_bytes(body={"schema": DISJOINT_SCHEMA,
                                   "formula": "A"})
        # drip the bytes: header split mid-line, body split mid-JSON
        for start in range(0, len(raw), 7):
            conn.sendall(raw[start:start + 7])
            time.sleep(0.001)
        status, _, payload = _read_response(conn)
        assert status == 200
        assert unwrap(payload, status=status)["verdict"] is True

    def test_pipelined_batch_split_at_an_arbitrary_byte(self, conn):
        batch = (_request_bytes(method="GET", path="/healthz")
                 + _request_bytes(method="GET", path="/readyz"))
        # split inside the second request's start line
        cut = len(batch) - 9
        conn.sendall(batch[:cut])
        time.sleep(0.02)
        conn.sendall(batch[cut:])
        assert _read_response(conn)[0] == 200
        assert _read_response(conn)[0] == 200


class TestProtocolLimits:
    def test_oversized_start_line_is_431_and_close(self, conn):
        conn.sendall(b"GET /" + b"x" * 4096 + b" HTTP/1.1\r\nHost: t\r\n\r\n")
        status, headers, payload = _read_response(conn)
        assert status == 431
        assert headers["connection"] == "close"
        error = unwrap_error(payload, status=status)
        assert error["code"] == "headers_too_large"
        assert conn.recv(1) == b""  # server really closed

    def test_oversized_header_block_is_431(self, conn):
        head = b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
        head += b"".join(b"X-Pad-%d: %s\r\n" % (i, b"y" * 200)
                         for i in range(20))
        conn.sendall(head + b"\r\n")
        status, _, payload = _read_response(conn)
        assert status == 431
        assert unwrap_error(payload, status=status)["sysexit"] == 64

    def test_oversized_content_length_is_413_without_reading(self, conn):
        # no body bytes are sent at all: the refusal comes from the header
        conn.sendall(b"POST /v1/satisfiable HTTP/1.1\r\nHost: t\r\n"
                     b"Content-Length: 99999\r\n\r\n")
        status, headers, payload = _read_response(conn)
        assert status == 413
        assert headers["connection"] == "close"
        assert unwrap_error(payload, status=status)["sysexit"] == 77

    def test_bad_request_line_is_400(self, conn):
        conn.sendall(b"NONSENSE\r\n\r\n")
        status, _, payload = _read_response(conn)
        assert status == 400
        assert unwrap_error(payload)["code"] == "bad_request_line"

    def test_chunked_transfer_encoding_is_501(self, conn):
        conn.sendall(b"POST /v1/satisfiable HTTP/1.1\r\nHost: t\r\n"
                     b"Transfer-Encoding: chunked\r\n\r\n")
        status, _, payload = _read_response(conn)
        assert status == 501
        assert (unwrap_error(payload)["code"]
                == "unsupported_transfer_encoding")

    def test_expect_100_continue_is_honored(self, conn):
        body = json.dumps({"schema": DISJOINT_SCHEMA,
                           "formula": "A"}).encode()
        conn.sendall(b"POST /v1/satisfiable HTTP/1.1\r\nHost: t\r\n"
                     b"Expect: 100-continue\r\n"
                     b"Content-Length: %d\r\n\r\n" % len(body))
        interim = conn.recv(64)
        assert interim.startswith(b"HTTP/1.1 100 Continue")
        conn.sendall(body)
        status, _, payload = _read_response(conn)
        assert status == 200
        assert unwrap(payload)["verdict"] is True


class TestConnectionLifecycle:
    def test_client_disconnect_mid_body_leaves_service_healthy(self, live):
        svc, address = live
        sock = socket.create_connection(address, timeout=10)
        sock.sendall(b"POST /v1/satisfiable HTTP/1.1\r\nHost: t\r\n"
                     b"Content-Length: 500\r\n\r\n" + b"{" )
        sock.close()  # vanish with 499 bytes still owed
        time.sleep(0.1)
        again = _Client(address)
        try:
            again.sendall(_request_bytes(method="GET", path="/healthz"))
            status, _, payload = _read_response(again)
        finally:
            again.close()
        assert status == 200
        assert svc.tracer.counters.get("service.client_disconnects", 0) >= 1

    def test_idle_connection_is_closed_by_the_timeout(self, live, conn):
        svc, _ = live
        before = svc.tracer.counters.get("service.idle_timeouts", 0)
        start = time.perf_counter()
        # send nothing: the 1s idle timeout must close the socket
        assert conn.recv(1) == b""
        elapsed = time.perf_counter() - start
        assert 0.2 < elapsed < 8.0
        assert svc.tracer.counters.get("service.idle_timeouts", 0) > before

    def test_slow_loris_header_trickle_is_cut_off(self, live):
        _, address = live
        with socket.create_connection(address, timeout=10) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n")
            deadline = time.perf_counter() + 8.0
            closed = False
            while time.perf_counter() < deadline:
                try:
                    sock.sendall(b"X-Drip: y\r\n")
                except (BrokenPipeError, ConnectionResetError):
                    closed = True
                    break
                time.sleep(0.4)
                sock.setblocking(False)
                try:
                    if sock.recv(1) == b"":
                        closed = True
                        break
                except BlockingIOError:
                    pass
                finally:
                    sock.setblocking(True)
            assert closed, "slow-loris connection survived the idle timeout"

    def test_keep_alive_survives_application_errors(self, conn):
        # error responses (4xx from the app) must NOT close the connection
        conn.sendall(_request_bytes(body={"formula": "A"}))  # no schema
        status, headers, payload = _read_response(conn)
        assert status == 422
        assert headers["connection"] == "keep-alive"
        check_envelope(payload, status=status)
        conn.sendall(_request_bytes(
            body={"schema": DISJOINT_SCHEMA, "formula": "A"}))
        status, _, payload = _read_response(conn)
        assert status == 200
        assert unwrap(payload)["verdict"] is True

    def test_connection_close_header_is_honored(self, conn):
        conn.sendall(_request_bytes(method="GET", path="/healthz",
                                    headers=(("Connection", "close"),)))
        status, headers, _ = _read_response(conn)
        assert status == 200
        assert headers["connection"] == "close"
        assert conn.recv(1) == b""
