"""The LP backend registry and the exact/float-fallback equivalence suite.

The maximal acceptable support of ``Ψ_S`` is unique (solutions of the
homogeneous system are closed under addition), so every sound backend must
compute the *same* support set — backends may only differ in witness values
and wall-clock.  The differential tests here pin ``"exact"`` and
``"float-fallback"`` to identical verdicts on seeded random schemas and on
hypothesis-generated rich schemas.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.errors import LinearSystemError
from repro.engine import EngineConfig
from repro.expansion.expansion import build_expansion
from repro.linear.backends import (
    ExactBackend,
    FloatFallbackBackend,
    LpBackend,
    RoundSolution,
    available_backends,
    get_backend,
    register_backend,
)
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import (
    clustered_schema,
    hierarchy_schema,
    random_schema,
)

from .strategies import rich_schemas


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "exact" in names
        assert "float-fallback" in names
        assert "auto" in names

    def test_float_alias_is_float_fallback(self):
        assert get_backend("float") is get_backend("float-fallback")

    def test_unknown_name_raises(self):
        with pytest.raises(LinearSystemError, match="unknown LP backend"):
            get_backend("bogus")

    def test_instances_satisfy_the_protocol(self):
        for name in ("exact", "float-fallback", "auto"):
            assert isinstance(get_backend(name), LpBackend)

    def test_backend_instance_passes_through(self):
        backend = ExactBackend()
        assert get_backend(backend) is backend

    def test_non_backend_object_rejected(self):
        with pytest.raises(LinearSystemError, match="LpBackend protocol"):
            get_backend(object())

    def test_custom_backend_registration(self):
        class Tracing:
            name = "test-tracing"

            def __init__(self):
                self.calls = 0
                self._inner = ExactBackend()

            def solve(self, system, positive_indices, *, merge_columns=True):
                self.calls += 1
                return self._inner.solve(system, positive_indices,
                                         merge_columns=merge_columns)

        tracing = register_backend(Tracing())
        try:
            schema = random_schema(5, seed=3)
            result = acceptable_support(build_expansion(schema),
                                        backend="test-tracing")
            assert tracing.calls >= 1
            reference = acceptable_support(build_expansion(schema),
                                           backend="exact")
            assert result.support == reference.support
        finally:
            from repro.linear import backends

            backends._REGISTRY.pop("test-tracing", None)


class TestRoundSolutions:
    def test_exact_solution_is_rational_and_acceptable(self):
        system = build_system(build_expansion(random_schema(5, seed=1)))
        solution = ExactBackend().solve(
            system, list(range(system.n_unknowns())))
        assert isinstance(solution, RoundSolution)
        assert all(isinstance(v, Fraction) for v in solution.values.values())
        assert solution.backend_used in ("exact", "propagation")

    def test_empty_candidates_need_no_lp(self):
        system = build_system(build_expansion(random_schema(4, seed=2)))
        for name in ("exact", "float-fallback", "auto"):
            solution = get_backend(name).solve(system, [])
            assert solution.supported == frozenset()
            assert solution.backend_used == "propagation"

    def test_degenerate_floats_fall_back(self):
        backend = FloatFallbackBackend()
        assert backend._degenerate([0.5, 5e-7])
        assert not backend._degenerate([0.5, 0.0, 1.0])
        assert not backend._degenerate([1e-12])  # snapped to zero, fine


class TestBackendEquivalence:
    """Exact and float-fallback must agree on every schema — Theorem 3.3's
    verdicts cannot depend on the arithmetic core."""

    SEEDS = range(8)

    def support_sets(self, schema):
        expansion = build_expansion(schema)
        exact = acceptable_support(expansion, backend="exact")
        fallback = acceptable_support(expansion, backend="float-fallback")
        return exact, fallback

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_schemas(self, seed):
        exact, fallback = self.support_sets(random_schema(6, seed=seed))
        assert exact.support == fallback.support

    @pytest.mark.parametrize("seed", range(4))
    def test_clustered_schemas(self, seed):
        exact, fallback = self.support_sets(
            clustered_schema(3, 3, seed=seed))
        assert exact.support == fallback.support

    def test_hierarchy_schema(self):
        exact, fallback = self.support_sets(hierarchy_schema(3, 2))
        assert exact.support == fallback.support

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reasoner_verdicts_per_backend(self, seed):
        schema = random_schema(6, seed=seed)
        verdicts = {}
        for backend in ("exact", "float-fallback", "auto"):
            reasoner = Reasoner(
                schema, config=EngineConfig(lp_backend=backend))
            verdicts[backend] = tuple(reasoner.satisfiable_classes())
        assert len(set(verdicts.values())) == 1, verdicts

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schema=rich_schemas())
    def test_rich_schemas_property(self, schema):
        exact, fallback = self.support_sets(schema)
        assert exact.support == fallback.support

    @pytest.mark.parametrize("seed", range(4))
    def test_witnesses_verify_exactly(self, seed):
        """Both backends' witnesses must satisfy every disequation."""
        system = build_system(build_expansion(random_schema(6, seed=seed)))
        for backend in ("exact", "float-fallback"):
            result = acceptable_support(system, backend=backend)
            for constraint in system.constraints:
                total = sum(
                    (coeff * result.solution[var]
                     for var, coeff in constraint.coefficients),
                    Fraction(0))
                assert total <= 0
