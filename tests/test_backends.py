"""The LP backend registry and the exact/float-fallback equivalence suite.

The maximal acceptable support of ``Ψ_S`` is unique (solutions of the
homogeneous system are closed under addition), so every sound backend must
compute the *same* support set — backends may only differ in witness values
and wall-clock.  The differential tests here pin ``"exact"``,
``"exact-sparse"``, and ``"float-fallback"`` to identical verdicts on
seeded random schemas and on hypothesis-generated rich schemas, and the
capability tests pin the redesigned registry API (described entries,
parameterized specs, deprecated aliases, the §4.4 closed-form path).
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.errors import LinearSystemError
from repro.engine import EngineConfig
from repro.expansion.expansion import build_expansion
from repro.linear.backends import (
    AutoBackend,
    BackendCapabilities,
    BackendDescription,
    ExactBackend,
    FloatFallbackBackend,
    LpBackend,
    RoundSolution,
    SparseExactBackend,
    available_backends,
    backend_capabilities,
    bump_metric,
    describe_backend,
    get_backend,
    register_backend,
)
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import (
    clustered_schema,
    hierarchy_schema,
    random_schema,
)

from .strategies import rich_schemas


class TestRegistry:
    def test_builtin_backends_registered(self):
        entries = available_backends()
        assert all(isinstance(entry, BackendDescription) for entry in entries)
        names = {entry.name for entry in entries}
        assert {"exact", "exact-sparse", "float-fallback", "auto"} <= names

    def test_described_entries_fold_aliases(self):
        by_name = {entry.name: entry for entry in available_backends()}
        fallback = by_name["float-fallback"]
        assert "float" in fallback.aliases
        assert "float" in fallback.deprecated_aliases
        assert "limit" in by_name["auto"].parameters

    def test_float_alias_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match='alias "float"'):
            resolved = get_backend("float")
        assert resolved is get_backend("float-fallback")

    def test_unknown_name_raises(self):
        with pytest.raises(LinearSystemError, match="unknown LP backend"):
            get_backend("bogus")

    def test_instances_satisfy_the_protocol(self):
        for name in ("exact", "float-fallback", "auto"):
            assert isinstance(get_backend(name), LpBackend)

    def test_backend_instance_passes_through(self):
        backend = ExactBackend()
        assert get_backend(backend) is backend

    def test_non_backend_object_rejected(self):
        with pytest.raises(LinearSystemError, match="LpBackend protocol"):
            get_backend(object())

    def test_custom_backend_registration(self):
        class Tracing:
            name = "test-tracing"

            def __init__(self):
                self.calls = 0
                self._inner = ExactBackend()

            def solve(self, system, positive_indices, *, merge_columns=True):
                self.calls += 1
                return self._inner.solve(system, positive_indices,
                                         merge_columns=merge_columns)

        tracing = register_backend(Tracing())
        try:
            schema = random_schema(5, seed=3)
            result = acceptable_support(build_expansion(schema),
                                        backend="test-tracing")
            assert tracing.calls >= 1
            reference = acceptable_support(build_expansion(schema),
                                           backend="exact")
            assert result.support == reference.support
        finally:
            from repro.linear import backends

            backends._REGISTRY.pop("test-tracing", None)


class TestCapabilityContract:
    def test_builtin_capabilities(self):
        assert get_backend("exact").capabilities() == BackendCapabilities(
            arithmetic="exact-rational", sparse=False, closed_form=False,
            degeneracy="bland-anticycling")
        sparse = get_backend("exact-sparse").capabilities()
        assert sparse.sparse and sparse.closed_form
        assert sparse.arithmetic == "exact-rational"
        assert get_backend("auto").capabilities().arithmetic == "hybrid"
        assert (get_backend("float-fallback").capabilities().degeneracy
                == "ambiguity-band-exact-fallback")

    def test_describe_matches_capabilities(self):
        for name in ("exact", "exact-sparse", "float-fallback", "auto"):
            backend = get_backend(name)
            description = backend.describe()
            assert description.name == name
            assert description.capabilities == backend.capabilities()
            assert description.summary

    def test_foreign_backend_gets_conservative_defaults(self):
        class Bare:
            name = "bare"

            def solve(self, system, positive_indices, *, merge_columns=True):
                raise NotImplementedError

        capabilities = backend_capabilities(Bare())
        assert not capabilities.closed_form
        assert not capabilities.sparse
        description = describe_backend(Bare())
        assert description.name == "bare"

    def test_description_round_trips_to_dict(self):
        entry = get_backend("auto").describe()
        as_dict = entry.as_dict()
        assert as_dict["name"] == "auto"
        assert as_dict["capabilities"]["closed_form"] is True
        assert as_dict["parameters"] == ["limit"]


class TestParameterizedSpecs:
    def test_auto_limit_spec(self):
        backend = get_backend("auto:limit=5")
        assert isinstance(backend, AutoBackend)
        assert backend._limit == 5

    def test_spec_validates_in_engine_config(self):
        assert EngineConfig(lp_backend="auto:limit=500").lp_backend == \
            "auto:limit=500"

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(LinearSystemError, match="must be positive"):
            get_backend("auto:limit=0")

    def test_unparameterized_backend_rejects_params(self):
        with pytest.raises(LinearSystemError, match="takes no spec"):
            get_backend("exact:limit=5")

    def test_malformed_params_rejected(self):
        with pytest.raises(LinearSystemError, match="malformed"):
            get_backend("auto:limit")

    def test_unknown_param_rejected(self):
        with pytest.raises(LinearSystemError, match="bad parameters"):
            get_backend("auto:bogus=3")

    def test_unknown_name_with_params_rejected(self):
        with pytest.raises(LinearSystemError, match="unknown LP backend"):
            get_backend("bogus:limit=5")


class TestMetricSchema:
    def test_bump_metric_rejects_undocumented_keys(self):
        with pytest.raises(LinearSystemError, match="unknown solver metric"):
            bump_metric({}, "lp.made_up")

    def test_bump_metric_accumulates(self):
        metrics = {}
        bump_metric(metrics, "lp.pivots", 3)
        bump_metric(metrics, "lp.pivots", 2)
        assert metrics == {"lp.pivots": 5}

    def test_solver_metrics_stay_on_schema(self):
        from repro.linear.backends import METRIC_KEYS

        system = build_system(build_expansion(random_schema(5, seed=4)))
        for name in ("exact", "exact-sparse", "float-fallback", "auto"):
            solution = get_backend(name).solve(
                system, list(range(system.n_unknowns())))
            assert set(solution.metrics) <= METRIC_KEYS


class TestRoundSolutions:
    def test_exact_solution_is_rational_and_acceptable(self):
        system = build_system(build_expansion(random_schema(5, seed=1)))
        solution = ExactBackend().solve(
            system, list(range(system.n_unknowns())))
        assert isinstance(solution, RoundSolution)
        assert all(isinstance(v, Fraction) for v in solution.values.values())
        assert solution.backend_used in ("exact", "propagation")

    def test_empty_candidates_need_no_lp(self):
        system = build_system(build_expansion(random_schema(4, seed=2)))
        for name in ("exact", "float-fallback", "auto"):
            solution = get_backend(name).solve(system, [])
            assert solution.supported == frozenset()
            assert solution.backend_used == "propagation"

    def test_degenerate_floats_fall_back(self):
        backend = FloatFallbackBackend()
        assert backend._degenerate([0.5, 5e-7])
        assert not backend._degenerate([0.5, 0.0, 1.0])
        assert not backend._degenerate([1e-12])  # snapped to zero, fine


class TestAutoRouting:
    """`auto` routes by LP column count, with the default cutoff at the
    measured sparse/float crossover (`SPARSE_BACKEND_LIMIT`)."""

    def test_default_limit_is_the_measured_crossover(self):
        from repro.linear.backends import SPARSE_BACKEND_LIMIT

        assert SPARSE_BACKEND_LIMIT == 400
        assert AutoBackend()._limit == SPARSE_BACKEND_LIMIT

    def test_routes_small_systems_to_the_sparse_core(self):
        system = build_system(build_expansion(random_schema(5, seed=1)))
        solution = AutoBackend(limit=10 ** 6).solve(
            system, list(range(system.n_unknowns())))
        assert solution.backend_used == "exact-sparse"
        assert solution.metrics.get("lp.sparse_solves", 0) == 1

    def test_routes_large_systems_to_the_float_core(self):
        system = build_system(build_expansion(random_schema(5, seed=1)))
        solution = AutoBackend(limit=1).solve(
            system, list(range(system.n_unknowns())))
        # "float" when scipy answered, "exact" via the verified fallback —
        # either way the sparse core was bypassed.
        assert solution.backend_used in ("float", "exact")
        assert "lp.sparse_solves" not in solution.metrics

    def test_routing_preserves_verdicts(self):
        schema = random_schema(6, seed=3)
        expansion = build_expansion(schema)
        supports = {
            acceptable_support(expansion, backend=f"auto:limit={limit}").support
            for limit in (1, 10 ** 6)}
        assert len(supports) == 1


class TestBackendEquivalence:
    """Every sound backend must agree on every schema — Theorem 3.3's
    verdicts cannot depend on the arithmetic core."""

    SEEDS = range(8)
    BACKENDS = ("exact", "exact-sparse", "float-fallback")

    def support_sets(self, schema):
        expansion = build_expansion(schema)
        return [acceptable_support(expansion, backend=name)
                for name in self.BACKENDS]

    def assert_agree(self, results):
        assert len({result.support for result in results}) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_schemas(self, seed):
        self.assert_agree(self.support_sets(random_schema(6, seed=seed)))

    @pytest.mark.parametrize("seed", range(4))
    def test_clustered_schemas(self, seed):
        self.assert_agree(self.support_sets(clustered_schema(3, 3, seed=seed)))

    def test_hierarchy_schema(self):
        self.assert_agree(self.support_sets(hierarchy_schema(3, 2)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reasoner_verdicts_per_backend(self, seed):
        schema = random_schema(6, seed=seed)
        verdicts = {}
        for backend in ("exact", "exact-sparse", "float-fallback", "auto"):
            reasoner = Reasoner(
                schema, config=EngineConfig(lp_backend=backend))
            verdicts[backend] = tuple(reasoner.satisfiable_classes())
        assert len(set(verdicts.values())) == 1, verdicts

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(schema=rich_schemas())
    def test_rich_schemas_property(self, schema):
        self.assert_agree(self.support_sets(schema))

    @pytest.mark.parametrize("seed", range(4))
    def test_witnesses_verify_exactly(self, seed):
        """Every backend's witness must satisfy every disequation."""
        system = build_system(build_expansion(random_schema(6, seed=seed)))
        for backend in self.BACKENDS:
            result = acceptable_support(system, backend=backend)
            for constraint in system.constraints:
                total = sum(
                    (coeff * result.solution[var]
                     for var, coeff in constraint.coefficients),
                    Fraction(0))
                assert total <= 0


class TestStrategyBackendSweep:
    """Sparse vs dense exact across enumeration strategies: the Phase-1
    strategy decides *which* compound classes exist, the backend decides the
    arithmetic — verdicts must be invariant in both dimensions."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("strategy", ("naive", "strategic", "auto"))
    def test_random_verdicts_invariant(self, seed, strategy):
        schema = random_schema(5, seed=seed)
        verdicts = {}
        for backend in ("exact", "exact-sparse"):
            reasoner = Reasoner(schema, config=EngineConfig(
                strategy=strategy, lp_backend=backend))
            verdicts[backend] = tuple(reasoner.satisfiable_classes())
        assert verdicts["exact"] == verdicts["exact-sparse"]

    @pytest.mark.parametrize("strategy", ("naive", "strategic", "hierarchy",
                                          "auto"))
    def test_hierarchy_verdicts_invariant(self, strategy):
        schema = hierarchy_schema(2, 3, with_attributes=True, seed=3)
        verdicts = {}
        for backend in ("exact", "exact-sparse", "auto"):
            reasoner = Reasoner(schema, config=EngineConfig(
                strategy=strategy, lp_backend=backend))
            verdicts[backend] = tuple(reasoner.satisfiable_classes())
        assert len(set(verdicts.values())) == 1, verdicts


class TestClosedForm:
    """The §4.4 short-circuit: hierarchy-flagged systems answer without a
    single simplex pivot, and never change a verdict."""

    def test_hierarchy_flag_takes_closed_form(self):
        system = build_system(build_expansion(
            hierarchy_schema(3, 3, with_attributes=True, seed=1)))
        plain = acceptable_support(system, backend="exact-sparse")
        flagged = acceptable_support(system, backend="exact-sparse",
                                     hierarchy=True)
        assert flagged.support == plain.support
        assert flagged.backend_used == "closed-form"

    def test_closed_form_pivots_are_zero(self):
        system = build_system(build_expansion(
            hierarchy_schema(2, 3, with_attributes=True, seed=5)))
        solution = SparseExactBackend().solve(
            system, list(range(system.n_unknowns())), hierarchy=True)
        assert solution.backend_used == "closed-form"
        assert solution.metrics == {"lp.hierarchy_closed_form": 1}
        assert "lp.pivots" not in solution.metrics

    def test_closed_form_witness_verifies_exactly(self):
        system = build_system(build_expansion(
            hierarchy_schema(3, 2, with_attributes=True, seed=7)))
        result = acceptable_support(system, backend="exact-sparse",
                                    hierarchy=True)
        assert result.backend_used == "closed-form"
        for constraint in system.constraints:
            total = sum((coeff * result.solution[var]
                         for var, coeff in constraint.coefficients),
                        Fraction(0))
            assert total <= 0
        for index in result.support:
            assert result.solution[index] > 0

    def test_flag_on_non_hierarchy_is_harmless(self):
        """A schema that is not hierarchy-shaped fails the construct-and-
        verify attempt and silently takes the ordinary LP."""
        system = build_system(build_expansion(random_schema(6, seed=2)))
        flagged = acceptable_support(system, backend="exact-sparse",
                                     hierarchy=True)
        plain = acceptable_support(system, backend="exact")
        assert flagged.support == plain.support

    def test_flag_never_reaches_closed_form_free_backends(self):
        """Foreign backends without the capability keep the old solve
        signature and must not receive the hierarchy keyword."""

        class Strict:
            name = "test-strict"

            def __init__(self):
                self._inner = ExactBackend()

            def solve(self, system, positive_indices, *, merge_columns=True):
                return self._inner.solve(system, positive_indices,
                                         merge_columns=merge_columns)

        register_backend(Strict())
        try:
            system = build_system(build_expansion(
                hierarchy_schema(2, 2, with_attributes=True, seed=0)))
            result = acceptable_support(system, backend="test-strict",
                                        hierarchy=True)
            reference = acceptable_support(system, backend="exact")
            assert result.support == reference.support
        finally:
            from repro.linear import backends

            backends._REGISTRY.pop("test-strict", None)
