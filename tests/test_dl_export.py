"""Unit tests for the Description Logic TBox export."""


from repro.interop.dl_export import export_tbox
from repro.parser.parser import parse_schema
from repro.workloads.paper_schemas import figure2_schema


def axioms_of(source: str):
    return export_tbox(parse_schema(source)).axioms


class TestConceptTranslation:
    def test_isa_inclusion(self):
        axioms = axioms_of("class Student isa Person and not Professor endclass")
        assert "Student ⊑ (¬Professor) ⊓ (Person)" in axioms or any(
            axiom.startswith("Student ⊑") and "Person" in axiom
            and "¬Professor" in axiom for axiom in axioms)

    def test_union_concept(self):
        axioms = axioms_of(
            "class Course attributes taught_by : (1, 1) Professor or Grad endclass")
        joined = "\n".join(axioms)
        assert "∀taught_by.(Grad ⊔ Professor)" in joined \
            or "∀taught_by.(Professor ⊔ Grad)" in joined

    def test_number_restrictions(self):
        axioms = axioms_of(
            "class C attributes a : (2, 5) D endclass")
        joined = "\n".join(axioms)
        assert "(≥ 2 a.⊤)" in joined
        assert "(≤ 5 a.⊤)" in joined

    def test_unbounded_upper_omitted(self):
        axioms = axioms_of("class C attributes a : (1, *) D endclass")
        joined = "\n".join(axioms)
        assert "(≥ 1 a.⊤)" in joined
        assert "≤" not in joined

    def test_inverse_role(self):
        axioms = axioms_of(
            "class Professor attributes (inv taught_by) : (1, 2) Course endclass")
        joined = "\n".join(axioms)
        assert "taught_by⁻" in joined


class TestRelationTranslation:
    def test_binary_role_typing(self):
        tbox = export_tbox(parse_schema("""
            relation R(u, v)
                constraints (u : A); (v : B)
            endrelation
        """))
        joined = "\n".join(tbox.axioms)
        assert "∃R.⊤ ⊑ A" in joined
        assert "∃R⁻.⊤ ⊑ B" in joined

    def test_participation_as_number_restriction(self):
        tbox = export_tbox(parse_schema("""
            class C participates in R[u] : (1, 3) endclass
            relation R(u, v) endrelation
        """))
        joined = "\n".join(tbox.axioms)
        assert "C ⊑ (≥ 1 R.⊤) ⊓ (≤ 3 R.⊤)" in joined

    def test_ternary_relation_reified(self):
        tbox = export_tbox(parse_schema("""
            relation Exam(of, by, in)
                constraints (of : Student); (by : Professor)
            endrelation
        """))
        assert any("reified" in w for w in tbox.warnings)

    def test_disjunctive_role_clause_warned(self):
        tbox = export_tbox(parse_schema("""
            relation R(u, v)
                constraints (u : A) or (v : B)
            endrelation
        """))
        assert any("disjunctive" in w.lower() for w in tbox.warnings)

    def test_finite_model_caveat_always_present(self):
        tbox = export_tbox(parse_schema("class A endclass"))
        assert any("finite-model" in w for w in tbox.warnings)


class TestFigure2Export:
    def test_exports_without_errors(self):
        tbox = export_tbox(figure2_schema())
        assert len(tbox.axioms) >= 8
        joined = "\n".join(tbox.axioms)
        # The ternary Exam was reified; the binary Enrollment kept.
        assert any("Exam" in w and "reified" in w for w in tbox.warnings)
        assert "∃Enrollment.⊤ ⊑ Course" in joined

    def test_rendering_includes_warnings(self):
        text = str(export_tbox(figure2_schema()))
        assert "%%" in text
