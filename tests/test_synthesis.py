"""Unit tests for flows, bipartite realization, and model synthesis."""

import pytest

from repro.core.cardinality import ANY, Card
from repro.core.errors import SynthesisError
from repro.core.formulas import Lit
from repro.core.schema import Attr, ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema, inv
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner
from repro.semantics.checker import is_model
from repro.synthesis.bipartite import realize_bipartite
from repro.synthesis.builder import synthesize_model
from repro.synthesis.flows import FlowNetwork, feasible_flow_with_lower_bounds


class TestMaxFlow:
    def test_single_edge(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 7)
        assert network.max_flow(0, 1) == 7

    def test_bottleneck(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 10)
        network.add_edge(1, 2, 4)
        assert network.max_flow(0, 2) == 4

    def test_parallel_paths(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 3)
        network.add_edge(1, 3, 3)
        network.add_edge(0, 2, 5)
        network.add_edge(2, 3, 2)
        assert network.max_flow(0, 3) == 5

    def test_residual_rerouting(self):
        # The classic case where a naive greedy needs the residual edge.
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1)
        network.add_edge(0, 2, 1)
        network.add_edge(1, 2, 1)
        network.add_edge(1, 3, 1)
        network.add_edge(2, 3, 1)
        assert network.max_flow(0, 3) == 2

    def test_same_source_sink_rejected(self):
        with pytest.raises(SynthesisError):
            FlowNetwork(2).max_flow(1, 1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(SynthesisError):
            FlowNetwork(2).add_edge(0, 1, -1)


class TestLowerBoundedFlow:
    def test_forced_lower_bound(self):
        # Circulation 0 → 1 → 0 with lower bound 2 on the forward edge.
        flows = feasible_flow_with_lower_bounds(2, [
            (0, 1, 2, 5),
            (1, 0, 0, None),
        ])
        assert flows is not None
        assert flows[0] >= 2
        assert flows[0] == flows[1]

    def test_infeasible_bounds(self):
        # Edge demands 3 units but the return path caps at 1.
        flows = feasible_flow_with_lower_bounds(2, [
            (0, 1, 3, 5),
            (1, 0, 0, 1),
        ])
        assert flows is None

    def test_contradictory_interval(self):
        assert feasible_flow_with_lower_bounds(2, [(0, 1, 5, 3)]) is None


class TestBipartiteRealization:
    def test_perfect_matching(self):
        result = realize_bipartite(
            ["a", "b"], ["x", "y"],
            lambda o: Card(1, 1), lambda o: Card(1, 1),
            lambda s, t: True)
        assert result is not None
        assert len(result) == 2
        assert len({s for s, _ in result}) == 2
        assert len({t for _, t in result}) == 2

    def test_respects_allowed(self):
        result = realize_bipartite(
            ["a"], ["x", "y"],
            lambda o: Card(1, 1), lambda o: ANY,
            lambda s, t: t == "y")
        assert result == {("a", "y")}

    def test_infeasible_degree(self):
        # One left object must emit 2 links but only one target is allowed.
        result = realize_bipartite(
            ["a"], ["x"],
            lambda o: Card(2, 2), lambda o: ANY,
            lambda s, t: True)
        assert result is None

    def test_unbalanced_ratio(self):
        # 2 sources each emitting exactly 1; 1 target absorbing exactly 2.
        result = realize_bipartite(
            ["a", "b"], ["x"],
            lambda o: Card(1, 1), lambda o: Card(2, 2),
            lambda s, t: True)
        assert result == {("a", "x"), ("b", "x")}


class TestSynthesizeModel:
    def check(self, schema: Schema, target: str):
        reasoner = Reasoner(schema)
        report = synthesize_model(reasoner, target=target)
        assert is_model(report.interpretation, schema)
        assert report.interpretation.class_ext(target)
        return report

    def test_plain_hierarchy(self):
        self.check(parse_schema("""
            class Person endclass
            class Student isa Person and not Professor endclass
            class Professor isa Person endclass
        """), "Student")

    def test_mandatory_attribute(self):
        self.check(Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 2), "D")]),
            ClassDef("D"),
        ]), "C")

    def test_inverse_ratio(self):
        # |C| = 5 |D| in every model: synthesis must scale blocks.
        report = self.check(Schema([
            ClassDef("C", isa=~Lit("D"),
                     attributes=[Attr("a", Card(1, 1), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(5, 5), "C")]),
        ]), "D")
        interp = report.interpretation
        assert len(interp.class_ext("C")) == 5 * len(interp.class_ext("D"))

    def test_binary_relation(self):
        schema = Schema(
            [ClassDef("C", isa=~Lit("D"),
                      participates=[Part("R", "u", Card(2, 2))]),
             ClassDef("D", isa=~Lit("C"),
                      participates=[Part("R", "v", Card(1, 1))])],
            [RelationDef("R", ("u", "v"), [
                RoleClause(RoleLiteral("u", "C")),
                RoleClause(RoleLiteral("v", "D")),
            ])])
        report = self.check(schema, "C")
        interp = report.interpretation
        assert len(interp.relation_ext("R")) == 2 * len(interp.class_ext("C"))

    def test_ternary_relation(self):
        schema = Schema(
            [ClassDef("A", participates=[Part("R", "x", Card(1, 2))]),
             ClassDef("B"), ClassDef("C")],
            [RelationDef("R", ("x", "y", "z"), [
                RoleClause(RoleLiteral("y", "B")),
                RoleClause(RoleLiteral("z", "C")),
            ])])
        self.check(schema, "A")

    def test_unsatisfiable_target_raises(self):
        schema = parse_schema("class Bad isa Good and not Good endclass")
        with pytest.raises(SynthesisError):
            synthesize_model(Reasoner(schema), target="Bad")

    def test_empty_schema_gives_tiny_model(self):
        report = synthesize_model(Reasoner(Schema([ClassDef("A")])), target="A")
        assert report.n_objects >= 1

    def test_max_objects_guard(self):
        from repro.workloads.generators import cardinality_chain_schema

        schema = cardinality_chain_schema(4, fan_out=4)  # needs 4^4 L4 objects
        with pytest.raises(SynthesisError):
            synthesize_model(Reasoner(schema), target="L0", max_objects=10)

    def test_cardinality_chain(self):
        from repro.workloads.generators import cardinality_chain_schema

        schema = cardinality_chain_schema(2, fan_out=2)
        report = self.check(schema, "L0")
        interp = report.interpretation
        assert len(interp.class_ext("L1")) == 2 * len(interp.class_ext("L0"))
        assert len(interp.class_ext("L2")) == 4 * len(interp.class_ext("L0"))


@pytest.mark.slow
class TestFigure2Synthesis:
    def test_figure2_end_to_end(self):
        from repro.workloads.paper_schemas import figure2_schema

        reasoner = Reasoner(figure2_schema())
        report = synthesize_model(reasoner, target="Grad_Student")
        interp = report.interpretation
        assert is_model(interp, figure2_schema())
        assert interp.class_ext("Grad_Student")
        # Every course enrolls between 5 and 100 students (Figure 2).
        for course in interp.class_ext("Course"):
            count = interp.participation_count("Enrollment", "enrolled_in", course)
            assert 5 <= count <= 100
