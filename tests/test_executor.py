"""The batch executor: typed outcomes, sharding, pools, failure isolation.

The equivalence suite at the bottom runs the same generated workloads
through the serial, thread, and process paths and demands identical
verdicts — the executor is a scheduler, never an oracle.
"""

import pickle

import pytest

from repro.core.errors import BudgetExceeded, CarError, ParseError
from repro.core.formulas import Formula
from repro.engine import (
    BatchExecutor,
    BatchQuery,
    EngineConfig,
    QueryError,
    QueryOutcome,
    SchemaSession,
    schema_fingerprint,
)
from repro.obs.tracer import Tracer
from repro.parser.printer import render_schema
from repro.workloads.generators import (
    clustered_schema,
    hierarchy_schema,
    random_schema,
)

GOOD = "class A isa not B endclass class B endclass"
CONTRADICTION = "class C isa not C endclass"


class TestBatchQuery:
    def test_coerce_pair(self):
        query = BatchQuery.coerce((GOOD, "A"))
        assert query.schema == GOOD
        assert isinstance(query.formula, Formula)

    def test_coerce_dict_parses_formula_syntax(self):
        query = BatchQuery.coerce({"schema": GOOD,
                                   "formula": "A and not B"})
        assert isinstance(query.formula, Formula)

    def test_coerce_passthrough(self):
        query = BatchQuery.coerce((GOOD, "A"))
        assert BatchQuery.coerce(query) is query

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ParseError):
            BatchQuery.coerce("just a string")
        with pytest.raises(ParseError):
            BatchQuery.coerce({"formula": "A"})
        with pytest.raises(ParseError):
            BatchQuery.coerce({"schema": GOOD})
        with pytest.raises(ParseError):
            BatchQuery.coerce({"schema": 42, "formula": "A"})


class TestQueryOutcome:
    def test_ok_outcome(self):
        outcome = QueryOutcome(0, True, duration=0.5)
        assert outcome.ok and not outcome.timed_out
        assert outcome.require() is True

    def test_require_reraises_typed_error(self):
        error = QueryError("BudgetExceeded", "deadline", 75, steps=7)
        outcome = QueryOutcome(0, None, error)
        assert outcome.timed_out
        with pytest.raises(BudgetExceeded) as excinfo:
            outcome.require()
        assert excinfo.value.exit_code == 75
        assert excinfo.value.steps == 7

    def test_require_unknown_kind_falls_back_to_car_error(self):
        error = QueryError("ZeroDivisionError", "boom", 70)
        with pytest.raises(CarError, match="ZeroDivisionError"):
            QueryOutcome(0, None, error).require()

    def test_outcomes_pickle(self):
        error = QueryError("ParseError", "bad", 65)
        outcome = QueryOutcome(3, None, error, 0.1, 9, None, "ff")
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone == outcome

    def test_to_json_shape(self):
        payload = QueryOutcome(1, False, duration=0.25).to_json()
        assert payload["index"] == 1
        assert payload["verdict"] is False
        assert payload["error"] is None
        assert payload["timed_out"] is False


class TestBatchExecutorSerial:
    def test_outcomes_in_input_order(self):
        with BatchExecutor() as executor:
            outcomes = executor.run([(GOOD, "A"), (GOOD, "B"),
                                     (CONTRADICTION, "C")])
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.verdict for o in outcomes] == [True, True, False]

    def test_shards_share_fingerprint(self):
        with BatchExecutor() as executor:
            outcomes = executor.run([(GOOD, "A"), (GOOD, "B")])
        assert outcomes[0].schema_fingerprint == \
            outcomes[1].schema_fingerprint == schema_fingerprint(GOOD)

    def test_bad_schema_isolated(self):
        with BatchExecutor() as executor:
            outcomes = executor.run([("class ((", "A"), (GOOD, "A")])
        assert not outcomes[0].ok
        assert outcomes[0].error.kind == "ParseError"
        assert outcomes[1].ok and outcomes[1].verdict is True

    def test_bad_query_shape_isolated(self):
        with BatchExecutor() as executor:
            outcomes = executor.run(["nonsense", (GOOD, "A")])
        assert outcomes[0].error.kind == "ParseError"
        assert outcomes[1].ok

    def test_unknown_formula_symbol_isolated(self):
        with BatchExecutor() as executor:
            outcomes = executor.run([(GOOD, "NoSuchClass"), (GOOD, "A")])
        assert outcomes[0].error.kind == "ReasoningError"
        assert outcomes[0].error.exit_code == 64
        assert outcomes[1].ok

    def test_step_budget_yields_timed_out_outcome(self):
        schema = render_schema(clustered_schema(3, 4, seed=1))
        name = sorted(clustered_schema(3, 4, seed=1).class_symbols)[0]
        with BatchExecutor(max_steps=5) as executor:
            outcomes = executor.run([(schema, name)])
        assert outcomes[0].timed_out
        assert outcomes[0].error.exit_code == 75
        assert outcomes[0].steps > 0

    def test_stats_attached_on_success(self):
        with BatchExecutor() as executor:
            outcome = executor.run([(GOOD, "A")])[0]
        assert outcome.stats is not None
        assert outcome.stats.classes == 2

    def test_collect_stats_off(self):
        with BatchExecutor() as executor:
            outcome = executor.run([(GOOD, "A")], collect_stats=False)[0]
        assert outcome.stats is None

    def test_bad_mode_and_jobs_rejected(self):
        with pytest.raises(CarError):
            BatchExecutor(mode="bogus")
        with pytest.raises(CarError):
            BatchExecutor(jobs=0)

    def test_executor_counters(self):
        tracer = Tracer()
        with BatchExecutor(tracer=tracer) as executor:
            executor.run([(GOOD, "A"), (GOOD, "B"), (CONTRADICTION, "C"),
                          ("class ((", "A")])
        assert tracer.counters["executor.tasks_dispatched"] == 4
        assert tracer.counters["executor.shards"] == 2
        assert tracer.counters["executor.tasks_completed"] == 3
        assert tracer.counters["executor.tasks_failed"] == 1
        assert tracer.counters.get("executor.tasks_timed_out", 0) == 0


class TestBatchExecutorPools:
    def test_process_pool_answers(self):
        with BatchExecutor(jobs=2, mode="process") as executor:
            outcomes = executor.run([(GOOD, "A"), (CONTRADICTION, "C")])
            assert executor.pool_kind == "process"
        assert [o.verdict for o in outcomes] == [True, False]

    def test_thread_pool_answers(self):
        with BatchExecutor(jobs=2, mode="thread") as executor:
            outcomes = executor.run([(GOOD, "A"), (CONTRADICTION, "C")])
            assert executor.pool_kind == "thread"
        assert [o.verdict for o in outcomes] == [True, False]

    def test_pool_reused_across_runs(self):
        tracer = Tracer()
        with BatchExecutor(jobs=2, mode="process",
                           tracer=tracer) as executor:
            executor.run([(GOOD, "A")])
            executor.run([(GOOD, "B")])
        assert tracer.counters["executor.pool_reuse"] == 1

    def test_process_timeout_isolated_from_batch(self):
        # The deadline governs the hard query inside its worker; the easy
        # one still comes back answered.
        from repro.reductions import machine_to_schema, parity_machine

        reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
        hard = (render_schema(reduction.schema), str(reduction.target))
        with BatchExecutor(jobs=2, mode="process") as executor:
            outcomes = executor.run([hard, (GOOD, "A")], deadline=0.05)
        assert outcomes[0].timed_out
        assert outcomes[1].ok and outcomes[1].verdict is True


def _workload_queries():
    """(schema source, class symbol) pairs over the workload generators."""
    queries = []
    for schema in (clustered_schema(3, 3, seed=3),
                   hierarchy_schema(2, 3, seed=5),
                   random_schema(6, seed=7)):
        names = sorted(schema.class_symbols)
        source = render_schema(schema)
        for name in names[:3]:
            queries.append((source, name))
    return queries


class TestPoolEquivalence:
    """Process pool, thread pool, and serial must agree everywhere."""

    @pytest.fixture(scope="class")
    def workload(self):
        return _workload_queries()

    @pytest.fixture(scope="class")
    def serial_outcomes(self, workload):
        with BatchExecutor(mode="serial") as executor:
            return executor.run(workload)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_pool_matches_serial(self, workload, serial_outcomes, mode):
        with BatchExecutor(jobs=2, mode=mode) as executor:
            outcomes = executor.run(workload)
        assert [o.verdict for o in outcomes] == \
            [o.verdict for o in serial_outcomes]
        assert all(o.ok for o in outcomes)

    def test_strategies_agree_through_executor(self, workload):
        verdicts = []
        for strategy in ("naive", "strategic"):
            config = EngineConfig(strategy=strategy)
            with BatchExecutor(config, jobs=2, mode="process") as executor:
                verdicts.append(
                    [o.verdict for o in executor.run(workload)])
        assert verdicts[0] == verdicts[1]


class TestSessionBatchApi:
    def test_check_many_detailed_outcomes(self):
        session = SchemaSession()
        outcomes = session.check_many_detailed(GOOD, ["A", "B"])
        assert [o.verdict for o in outcomes] == [True, True]
        assert all(o.ok for o in outcomes)

    def test_check_many_is_a_shim_over_detailed(self):
        session = SchemaSession()
        assert session.check_many(GOOD, ["A", "B"]) == [True, True]

    def test_check_many_raises_carried_error(self):
        session = SchemaSession()
        with pytest.raises(CarError):
            session.check_many(GOOD, ["A", "NoSuchClass"])

    def test_check_many_detailed_isolates_errors(self):
        session = SchemaSession()
        outcomes = session.check_many_detailed(GOOD, ["A", "NoSuchClass"])
        assert outcomes[0].ok
        assert outcomes[1].error.kind == "ReasoningError"

    def test_check_many_detailed_budget(self):
        schema = clustered_schema(3, 4, seed=1)
        session = SchemaSession()
        name = sorted(schema.class_symbols)[0]
        outcomes = session.check_many_detailed(schema, [name], max_steps=5)
        assert outcomes[0].timed_out

    def test_run_batch_reuses_executor(self):
        session = SchemaSession()
        session.run_batch([(GOOD, "A")])
        first = session._executor
        session.run_batch([(GOOD, "B")])
        assert session._executor is first
        session.run_batch([(GOOD, "A")], jobs=2)
        assert session._executor is not first
        session.close()
        assert session._executor is None

    def test_run_batch_serial_hits_session_cache(self):
        session = SchemaSession()
        session.reasoner(GOOD)  # warm
        before = session.cache_info().hits
        session.run_batch([(GOOD, "A"), (GOOD, "B")])
        assert session.cache_info().hits > before

    def test_warm_returns_stats_in_order(self):
        session = SchemaSession()
        stats = session.warm([GOOD, CONTRADICTION])
        assert [s.classes for s in stats] == [2, 1]
        assert GOOD in session and CONTRADICTION in session

    def test_invalidate_iterable(self):
        session = SchemaSession()
        session.warm([GOOD, CONTRADICTION])
        session.invalidate([GOOD, CONTRADICTION])
        assert GOOD not in session
        assert CONTRADICTION not in session

    def test_invalidate_single_string_is_one_schema(self):
        session = SchemaSession()
        session.warm([GOOD])
        session.invalidate(GOOD)  # must not iterate the characters
        assert GOOD not in session
