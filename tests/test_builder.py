"""Unit tests for the fluent schema builder."""

import pytest

from repro.core.builder import SchemaBuilder
from repro.core.cardinality import Card
from repro.core.errors import SchemaError
from repro.core.schema import AttrRef, inv
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner


class TestBuilder:
    def test_equivalent_to_parsed_schema(self):
        built = (SchemaBuilder()
                 .cls("Person")
                 .cls("Student").isa("Person").isa_not("Professor")
                     .attr("student_id", Card(1, 1), "String")
                     .takes_part("Enrollment", "enrolls", Card(1, 6))
                 .cls("Professor").isa("Person")
                 .cls("Course")
                     .attr("taught_by", Card(1, 1), "Professor")
                 .rel("Enrollment", "enrolled_in", "enrolls")
                     .role("enrolled_in", "Course")
                     .role("enrolls", "Student")
                 .build())
        parsed = parse_schema("""
            class Person endclass
            class Student isa Person and not Professor
                attributes student_id : (1, 1) String
                participates in Enrollment[enrolls] : (1, 6)
            endclass
            class Professor isa Person endclass
            class Course attributes taught_by : (1, 1) Professor endclass
            relation Enrollment(enrolled_in, enrolls)
                constraints (enrolled_in : Course); (enrolls : Student)
            endrelation
        """)
        assert built == parsed

    def test_isa_one_of(self):
        schema = (SchemaBuilder()
                  .cls("Course").isa_one_of("Lecture", "Seminar")
                  .build())
        isa = schema.definition("Course").isa
        assert isa.satisfied_by({"Lecture"})
        assert isa.satisfied_by({"Seminar"})
        assert not isa.satisfied_by(set())

    def test_inverse_attribute(self):
        schema = (SchemaBuilder()
                  .cls("Professor").inv_attr("taught_by", Card(1, 2), "Course")
                  .build())
        specs = schema.definition("Professor").attribute_specs
        assert inv("taught_by") in specs
        assert AttrRef("taught_by") not in specs

    def test_disjunctive_role_clause(self):
        schema = (SchemaBuilder()
                  .rel("Enrollment", "enrolled_in", "enrolls")
                      .role_clause(("enrolled_in", "Basic"),
                                   ("enrolls", "Grad"))
                  .build())
        clause = schema.relation("Enrollment").constraints[0]
        assert len(clause) == 2

    def test_refinement_without_open_class_fails(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().attr("x")
        with pytest.raises(SchemaError):
            SchemaBuilder().cls("A").role("u", "B")

    def test_refinement_without_open_relation_fails(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().role("u", "A")

    def test_built_schema_is_validated(self):
        with pytest.raises(SchemaError):
            (SchemaBuilder()
             .cls("C").takes_part("Missing", "u", Card(0, 1))
             .build())

    def test_built_schema_reasons(self):
        schema = (SchemaBuilder()
                  .cls("Student").isa("Person").isa_not("Professor")
                  .cls("TA").isa("Student").isa("Professor")
                  .build())
        reasoner = Reasoner(schema)
        assert not reasoner.is_satisfiable("TA")
        assert reasoner.is_satisfiable("Student")
