"""Tests for the conjunctive-query answering subsystem (``repro.qa``).

The load-bearing piece is the differential suite: on randomized
positive-Horn schemas and databases, the rewriting route
(:class:`QueryRewriter` + :func:`certain_answers`) must agree with two
independent oracles —

* a **chase** oracle that saturates the database into the canonical
  model (class propagation, role-constraint typing, fresh witnesses for
  mandatory participations) and evaluates the query directly, and
* on a small handcrafted schema, **brute-force model enumeration** over
  a bounded universe.

The random corpus deliberately stays inside the positive fragment
(acyclic conjunctive ``isa``, single-literal role clauses, lower-bound
cards only, no attributes): there the chase is a universal model, so
its answers *are* the certain answers.  Attributes and inconsistency
are covered by handcrafted cases instead — the rewriter eliminates
mandatory attribute atoms but has no attribute-filler-typing
specialization rule, so chase-derived filler memberships would be a
known scope boundary, not a bug.
"""

import itertools
import json
import random

import pytest

from repro.core.errors import ParseError, SchemaError
from repro.engine import EngineConfig
from repro.engine.session import SchemaSession
from repro.parser.parser import parse_schema
from repro.qa import (
    ClassAtom,
    QueryRewriter,
    QueryValidationError,
    certain_answers,
    parse_query,
    render_query,
)
from repro.qa.ast import canonical_query
from repro.reasoner.satisfiability import Reasoner
from repro.semantics.database import Database

NAIVE = EngineConfig(strategy="naive")


def _rewriter_for(schema, config=NAIVE):
    reasoner = Reasoner(schema, config=config)
    return reasoner, QueryRewriter(reasoner.pipeline.closure_index())


WORK_SCHEMA_SOURCE = """
    class Person endclass
    class Employee isa Person
        participates in WorksFor[emp] : (1, *)
    endclass
    class Dept endclass
    relation WorksFor(emp, dept)
        constraints (emp : Employee); (dept : Dept)
    endrelation
"""


@pytest.fixture(scope="module")
def work_schema():
    return parse_schema(WORK_SCHEMA_SOURCE)


@pytest.fixture(scope="module")
def work_rewriter(work_schema):
    return _rewriter_for(work_schema)


def _work_database(schema):
    db = Database(schema)
    db.insert("alice", "Employee")
    db.insert("bob")
    db.insert("d0", "Dept")
    db.add_tuple("WorksFor", emp="bob", dept="d0")
    return db


# ----------------------------------------------------------------------
# Parser: round-trips and typed errors
# ----------------------------------------------------------------------
class TestParserRoundTrip:
    def test_render_parse_round_trip(self, work_schema):
        source = "q(x, y) :- WorksFor(x, y), Person(x), Dept(y)"
        query = parse_query(source, work_schema)
        again = parse_query(render_query(query), work_schema)
        assert canonical_query(again) == canonical_query(query)

    def test_variable_renaming_is_canonicalized_away(self, work_schema):
        a = parse_query("q(u) :- Person(u), WorksFor(u, v)", work_schema)
        b = parse_query("q(n) :- WorksFor(n, m), Person(n)", work_schema)
        assert canonical_query(a) == canonical_query(b)

    def test_constants_and_comments(self, work_schema):
        query = parse_query(
            '# who works in d0?\nq(x) :- WorksFor(x, "d0")', work_schema)
        assert not query.is_boolean
        assert 'WorksFor(x, "d0")' in render_query(query)

    def test_boolean_true_body(self, work_schema):
        query = parse_query("q() :- true", work_schema)
        assert query.is_boolean
        assert query.atoms == ()


class TestParserErrors:
    def test_syntax_error_is_parse_error(self, work_schema):
        with pytest.raises(ParseError):
            parse_query("q(x) :- Person(x", work_schema)

    def test_head_constant_is_parse_error(self, work_schema):
        with pytest.raises(ParseError, match="head terms must be variables"):
            parse_query('q("alice") :- Person("alice")', work_schema)

    def test_unknown_symbol_is_validation_error(self, work_schema):
        with pytest.raises(QueryValidationError, match="Martian"):
            parse_query("q(x) :- Martian(x)", work_schema)

    def test_arity_mismatch_is_validation_error(self, work_schema):
        with pytest.raises(QueryValidationError):
            parse_query("q(x) :- WorksFor(x)", work_schema)

    def test_unsafe_head_is_validation_error(self, work_schema):
        with pytest.raises(QueryValidationError,
                           match="does not occur in the query body"):
            parse_query("q(x, y) :- Person(x)", work_schema)

    def test_validation_error_is_a_schema_error(self, work_schema):
        # so the CLI maps it onto sysexit 65 like every other input error
        with pytest.raises(SchemaError):
            parse_query("q(x) :- Martian(x)", work_schema)


# ----------------------------------------------------------------------
# Rewriter: handcrafted specialization / elimination cases
# ----------------------------------------------------------------------
def _single_class_disjuncts(result):
    """Names of disjuncts that are a single class atom over the head var."""
    names = set()
    for disjunct in result.disjuncts:
        if len(disjunct.atoms) == 1 and isinstance(disjunct.atoms[0],
                                                   ClassAtom):
            names.add(disjunct.atoms[0].name)
    return names


class TestRewriterHandcrafted:
    def test_subclass_and_role_specialization(self, work_rewriter, work_schema):
        _, rewriter = work_rewriter
        result = rewriter.rewrite(parse_query("q(x) :- Person(x)",
                                              work_schema))
        # Person(x) specializes to its subclass and to the relation whose
        # emp-fillers are certainly Employees (hence Persons).
        assert {"Person", "Employee"} <= _single_class_disjuncts(result)
        assert any(atom.name == "WorksFor"
                   for disjunct in result.disjuncts
                   for atom in disjunct.atoms)

    def test_mandatory_participation_elimination(self, work_rewriter,
                                                 work_schema):
        _, rewriter = work_rewriter
        result = rewriter.rewrite(parse_query("q(x) :- WorksFor(x, y)",
                                              work_schema))
        # y is an unshared existential: the atom can be dropped in favour
        # of the class whose instances all participate at emp.
        assert "Employee" in _single_class_disjuncts(result)

    def test_shared_variable_blocks_naive_elimination(self, work_rewriter,
                                                      work_schema):
        _, rewriter = work_rewriter
        result = rewriter.rewrite(
            parse_query("q(x, y) :- WorksFor(x, y)", work_schema))
        # y is distinguished — every disjunct must still bind it.
        for disjunct in result.disjuncts:
            assert any(atom.name == "WorksFor" for atom in disjunct.atoms)

    def test_mandatory_attribute_elimination(self):
        schema = parse_schema("""
            class Course attributes taught_by : (1, *) Prof endclass
            class Prof endclass
        """)
        _, rewriter = _rewriter_for(schema)
        result = rewriter.rewrite(parse_query("q(x) :- taught_by(x, y)",
                                              schema))
        assert "Course" in _single_class_disjuncts(result)

    def test_rewrite_cache_round_trip(self, work_schema):
        _, rewriter = _rewriter_for(work_schema)
        query = parse_query("q(x) :- Person(x)", work_schema)
        cold = rewriter.rewrite(query)
        warm = rewriter.rewrite(
            parse_query("q(z) :- Person(z)", work_schema))
        assert not cold.cached and warm.cached
        assert [render_query(d) for d in warm.disjuncts] == \
               [render_query(d) for d in cold.disjuncts]


# ----------------------------------------------------------------------
# Certain answers: handcrafted end-to-end cases
# ----------------------------------------------------------------------
class TestCertainAnswersHandcrafted:
    def _answer(self, source, schema, rewriter_pair, database):
        reasoner, rewriter = rewriter_pair
        query = parse_query(source, schema)
        return certain_answers(rewriter, query, database, reasoner=reasoner)

    def test_role_constraint_types_asserted_fillers(self, work_schema,
                                                    work_rewriter):
        db = _work_database(work_schema)
        answer = self._answer("q(x) :- Person(x)", work_schema,
                              work_rewriter, db)
        # bob is never asserted a Person, but he fills emp in an asserted
        # tuple, and emp-fillers are certainly Employees ⊑ Person.
        assert {row[0] for row in answer.answers} == {"alice", "bob"}

    def test_mandatory_participation_yields_unasserted_answer(
            self, work_schema, work_rewriter):
        db = _work_database(work_schema)
        answer = self._answer("q(x) :- WorksFor(x, y)", work_schema,
                              work_rewriter, db)
        # alice has no asserted tuple, but every model gives her one.
        assert {row[0] for row in answer.answers} == {"alice", "bob"}

    def test_boolean_entailment_and_refutation(self, work_schema,
                                               work_rewriter):
        db = _work_database(work_schema)
        assert self._answer("q() :- WorksFor(x, y)", work_schema,
                            work_rewriter, db).boolean is True
        # d0 *may* be an Employee in some model, but not in every model.
        assert self._answer("q() :- Dept(x), Employee(x)", work_schema,
                            work_rewriter, db).boolean is False

    def test_constant_restricts_answers(self, work_schema, work_rewriter):
        db = _work_database(work_schema)
        answer = self._answer('q(x) :- WorksFor(x, "d0")', work_schema,
                              work_rewriter, db)
        # the mandatory-participation disjunct cannot apply (the dept end
        # is pinned to a constant), so only the asserted tuple answers.
        assert {row[0] for row in answer.answers} == {"bob"}

    def test_mandatory_attribute_boolean(self):
        schema = parse_schema("""
            class Course attributes taught_by : (1, *) Prof endclass
            class Prof endclass
        """)
        pair = _rewriter_for(schema)
        db = Database(schema)
        db.insert("c1", "Course")
        answer = self._answer("q(x) :- taught_by(x, y)", schema, pair, db)
        assert {row[0] for row in answer.answers} == {"c1"}
        assert self._answer("q() :- taught_by(x, y)", schema, pair,
                            db).boolean is True

    def test_inconsistent_database_makes_everything_certain(self):
        schema = parse_schema("class A isa not B endclass class B endclass")
        pair = _rewriter_for(schema)
        db = Database(schema)
        db.insert("x", "A", "B")
        db.insert("y")
        open_answer = self._answer("q(u) :- B(u)", schema, pair, db)
        assert open_answer.inconsistent
        assert {row[0] for row in open_answer.answers} == {"x", "y"}
        assert self._answer("q() :- A(u), B(u)", schema, pair,
                            db).boolean is True

    def test_empty_database_open_query_is_empty(self, work_schema,
                                                work_rewriter):
        answer = self._answer("q(x) :- Person(x)", work_schema,
                              work_rewriter, Database(work_schema))
        assert answer.answers == ()
        assert not answer.inconsistent


# ----------------------------------------------------------------------
# Differential oracle 1: the chase (canonical model of the positive
# fragment)
# ----------------------------------------------------------------------
def _chase(schema, database, witness_rounds=3):
    """Saturate ``database`` into the canonical model of the positive
    fragment: propagate conjunctive ``isa``, type role fillers through
    single-literal role clauses, and create fresh witnesses for
    mandatory participations (depth-bounded, enough for the bounded
    query shapes below)."""
    snapshot = database.snapshot()
    classes = {obj: set(snapshot.classes_of(obj))
               for obj in snapshot.universe}
    tuples = {rdef.name: [dict(t.as_dict())
                          for t in snapshot.relation_ext(rdef.name)]
              for rdef in schema.relation_definitions}
    definitions = {cdef.name: cdef for cdef in schema.class_definitions}
    fresh = itertools.count()
    named = frozenset(snapshot.universe)

    def close_typing():
        changed = True
        while changed:
            changed = False
            for obj in list(classes):
                for name in list(classes[obj]):
                    cdef = definitions.get(name)
                    if cdef is None:
                        continue
                    for clause in cdef.isa:
                        if len(clause) == 1:
                            lit = next(iter(clause))
                            if lit.positive and lit.name not in classes[obj]:
                                classes[obj].add(lit.name)
                                changed = True
            for rdef in schema.relation_definitions:
                for clause in rdef.constraints:
                    if len(clause) != 1:
                        continue
                    role_lit = clause.literals[0]
                    for formula_clause in role_lit.formula:
                        if len(formula_clause) != 1:
                            continue
                        lit = next(iter(formula_clause))
                        if not lit.positive:
                            continue
                        for row in tuples[rdef.name]:
                            obj = row[role_lit.role]
                            members = classes.setdefault(obj, set())
                            if lit.name not in members:
                                members.add(lit.name)
                                changed = True

    for _ in range(witness_rounds):
        close_typing()
        pending = []
        for cdef in schema.class_definitions:
            for part in cdef.participates:
                if part.card.lower < 1:
                    continue
                rdef = schema.relation(part.relation)
                for obj in [o for o, m in classes.items()
                            if cdef.name in m]:
                    if any(row[part.role] == obj
                           for row in tuples[part.relation]):
                        continue
                    row = {role: (obj if role == part.role
                                  else f"_w{next(fresh)}")
                           for role in rdef.roles}
                    pending.append((part.relation, row))
        if not pending:
            break
        for relation, row in pending:
            for obj in row.values():
                classes.setdefault(obj, set())
            tuples[relation].append(row)
    close_typing()
    return classes, tuples, named


def _chase_answers(query, chased):
    """Evaluate ``query`` over the chased instance; open answers keep
    only rows made entirely of named database objects."""
    classes, tuples, named = chased
    from repro.qa.ast import Const, RelationAtom

    def rows_for(atom):
        if isinstance(atom, ClassAtom):
            return [(obj,) for obj, members in classes.items()
                    if atom.name in members]
        assert isinstance(atom, RelationAtom)
        return [tuple(row[role] for role in atom.roles)
                for row in tuples[atom.name]]

    results = set()
    atoms = list(query.atoms)

    def search(index, binding):
        if index == len(atoms):
            results.add(tuple(binding[var] for var in query.head))
            return
        for row in rows_for(atoms[index]):
            candidate = dict(binding)
            for term, value in zip(atoms[index].terms(), row):
                if isinstance(term, Const):
                    if term.value != value:
                        break
                elif candidate.setdefault(term, value) != value:
                    break
            else:
                search(index + 1, candidate)

    search(0, {})
    if query.is_boolean:
        return bool(results)
    return {row for row in results if all(obj in named for obj in row)}


def _random_positive_schema(rng):
    n_classes = rng.randint(3, 5)
    names = [f"C{i}" for i in range(n_classes)]
    n_relations = rng.randint(1, 2)
    lines = []
    for i, name in enumerate(names):
        supers = [other for other in names[:i] if rng.random() < 0.4]
        isa = f" isa {' and '.join(supers)}" if supers else ""
        parts = []
        for r in range(n_relations):
            if rng.random() < 0.3:
                role = rng.choice(("src", "dst"))
                parts.append(f"R{r}[{role}] : (1, *)")
        participates = (f" participates in {'; '.join(parts)}"
                        if parts else "")
        lines.append(f"class {name}{isa}{participates} endclass")
    for r in range(n_relations):
        constraints = []
        for role in ("src", "dst"):
            if rng.random() < 0.7:
                constraints.append(f"({role} : {rng.choice(names)})")
        suffix = (f" constraints {'; '.join(constraints)}"
                  if constraints else "")
        lines.append(f"relation R{r}(src, dst){suffix} endrelation")
    return parse_schema("\n".join(lines)), names, n_relations


def _random_database(schema, names, n_relations, rng):
    db = Database(schema)
    objects = [f"o{i}" for i in range(rng.randint(3, 6))]
    for obj in objects:
        db.insert(obj, *[name for name in names if rng.random() < 0.35])
    for r in range(n_relations):
        for _ in range(rng.randint(0, 4)):
            db.add_tuple(f"R{r}", src=rng.choice(objects),
                         dst=rng.choice(objects))
    return db


def _random_queries(names, n_relations, rng):
    sources = []
    for name in rng.sample(names, 2):
        sources.append(f"q(x) :- {name}(x)")
    relation = f"R{rng.randrange(n_relations)}"
    sources.append(f"q(x) :- {relation}(x, y)")
    sources.append(f"q(y) :- {relation}(x, y)")
    sources.append(f"q() :- {relation}(x, y)")
    sources.append(f"q() :- {rng.choice(names)}(x)")
    sources.append(f"q(x) :- {relation}(x, y), {rng.choice(names)}(y)")
    sources.append(f"q(x, y) :- {relation}(x, y)")
    return sources


class TestDifferentialChase:
    @pytest.mark.parametrize("seed", range(10))
    def test_rewriting_matches_the_chase_oracle(self, seed):
        rng = random.Random(seed)
        schema, names, n_relations = _random_positive_schema(rng)
        reasoner, rewriter = _rewriter_for(schema)
        database = _random_database(schema, names, n_relations, rng)
        chased = _chase(schema, database)
        for source in _random_queries(names, n_relations, rng):
            query = parse_query(source, schema)
            answer = certain_answers(rewriter, query, database,
                                     reasoner=reasoner)
            assert not answer.inconsistent, source
            expected = _chase_answers(query, chased)
            if query.is_boolean:
                assert answer.boolean == expected, source
            else:
                assert set(answer.answers) == expected, source


# ----------------------------------------------------------------------
# Differential oracle 2: brute-force model enumeration over a bounded
# universe
# ----------------------------------------------------------------------
class TestDifferentialModels:
    SCHEMA_SOURCE = """
        class P endclass
        class E isa P participates in R[src] : (1, *) endclass
        relation R(src, dst) constraints (src : E) endrelation
    """

    def _enumerate_certain(self, query, universe, named, asserted_classes,
                           asserted_tuples):
        """Intersect the query's answers over every model of the schema
        extending the asserted facts on the bounded universe."""
        certain = None
        pairs = list(itertools.product(universe, repeat=2))
        optional_pairs = [p for p in pairs if p not in asserted_tuples]
        per_object = []
        for obj in universe:
            base = asserted_classes.get(obj, frozenset())
            combos = [frozenset(extra) | base
                      for size in range(3)
                      for extra in itertools.combinations(
                          {"P", "E"} - base, size)]
            per_object.append(sorted(set(combos), key=sorted))
        for memberships in itertools.product(*per_object):
            classes = dict(zip(universe, memberships))
            if any("E" in m and "P" not in m for m in memberships):
                continue
            for extra_size in range(len(optional_pairs) + 1):
                for extra in itertools.combinations(optional_pairs,
                                                    extra_size):
                    tuples = list(asserted_tuples) + list(extra)
                    if any("E" not in classes[src] for src, _ in tuples):
                        continue
                    participants = {src for src, _ in tuples}
                    if any("E" in classes[obj] and obj not in participants
                           for obj in universe):
                        continue
                    answers = self._evaluate(query, classes, tuples)
                    certain = (answers if certain is None
                               else certain & answers)
                    if not certain:
                        return {row for row in ()
                                } if not query.is_boolean else False
        if query.is_boolean:
            return bool(certain)
        return {row for row in certain
                if all(obj in named for obj in row)}

    def _evaluate(self, query, classes, tuples):
        from repro.qa.ast import RelationAtom
        results = set()
        atoms = list(query.atoms)

        def search(index, binding):
            if index == len(atoms):
                results.add(tuple(binding[var] for var in query.head))
                return
            atom = atoms[index]
            if isinstance(atom, ClassAtom):
                rows = [(obj,) for obj, members in classes.items()
                        if atom.name in members]
            else:
                assert isinstance(atom, RelationAtom)
                rows = list(tuples)
            for row in rows:
                candidate = dict(binding)
                for term, value in zip(atom.terms(), row):
                    if candidate.setdefault(term, value) != value:
                        break
                else:
                    search(index + 1, candidate)

        search(0, {})
        return results

    @pytest.mark.parametrize("source", [
        "q(x) :- P(x)",
        "q(x) :- E(x)",
        "q(x) :- R(x, y)",
        "q() :- R(x, y)",
        "q() :- E(x)",
    ])
    def test_rewriting_matches_model_enumeration(self, source):
        schema = parse_schema(self.SCHEMA_SOURCE)
        reasoner, rewriter = _rewriter_for(schema)
        db = Database(schema)
        db.insert("a", "E")
        db.insert("b")
        db.add_tuple("R", src="b", dst="a")

        named = ("a", "b")
        universe = ("a", "b", "_w")
        query = parse_query(source, schema)
        expected = self._enumerate_certain(
            query, universe, frozenset(named),
            {"a": frozenset({"E"})}, [("b", "a")])
        answer = certain_answers(rewriter, query, db, reasoner=reasoner)
        if query.is_boolean:
            assert answer.boolean == expected, source
        else:
            assert set(answer.answers) == expected, source


# ----------------------------------------------------------------------
# Session, CLI, and service integration
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_session_query_parses_and_caches(self):
        session = SchemaSession()
        schema = parse_schema(WORK_SCHEMA_SOURCE)
        database = {
            "objects": {"alice": ["Employee"], "bob": [], "d0": ["Dept"]},
            "relations": [["WorksFor", {"emp": "bob", "dept": "d0"}]],
        }
        cold = session.query(schema, "q(x) :- Person(x)", database)
        assert {row[0] for row in cold.answers} == {"alice", "bob"}
        assert not cold.rewrite_cached
        warm = session.query(schema, "q(z) :- Person(z)", database)
        assert warm.rewrite_cached
        assert set(warm.answers) == set(cold.answers)


class TestCliQuery:
    @pytest.fixture
    def schema_file(self, tmp_path):
        path = tmp_path / "work.car"
        path.write_text(WORK_SCHEMA_SOURCE)
        return str(path)

    @pytest.fixture
    def database_file(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({
            "objects": {"alice": ["Employee"], "bob": [], "d0": ["Dept"]},
            "relations": [["WorksFor", {"emp": "bob", "dept": "d0"}]],
        }))
        return str(path)

    def test_open_query_exits_zero_with_answers(self, schema_file,
                                                database_file, capsys):
        from repro.cli import main
        assert main(["query", schema_file, "q(x) :- Person(x)",
                     "--database", database_file]) == 0
        out = capsys.readouterr().out
        assert "2 certain answer(s)" in out

    def test_boolean_verdict_drives_exit_status(self, schema_file,
                                                database_file, capsys):
        from repro.cli import main
        assert main(["query", schema_file, "q() :- WorksFor(x, y)",
                     "--database", database_file]) == 0
        assert main(["query", schema_file, "q() :- Dept(x), Employee(x)",
                     "--database", database_file]) == 1
        capsys.readouterr()

    def test_json_output_is_the_answer_document(self, schema_file,
                                                database_file, capsys):
        from repro.cli import main
        assert main(["query", schema_file, "q(x) :- Person(x)",
                     "--database", database_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "query"
        assert sorted(row[0] for row in document["answers"]) == \
               ["alice", "bob"]
        assert document["rewrite"]["steps"] > 0

    def test_unknown_symbol_exits_65(self, schema_file, capsys):
        from repro.cli import main
        assert main(["query", schema_file, "q(x) :- Martian(x)"]) == 65
        capsys.readouterr()

    def test_tripped_budget_exits_75(self, schema_file, capsys):
        from repro.cli import main
        assert main(["query", schema_file, "q(x) :- Person(x)",
                     "--max-steps", "1"]) == 75
        capsys.readouterr()


class TestServiceQuery:
    @pytest.fixture
    def service(self):
        from repro.service.app import ReproService, ServiceConfig
        svc = ReproService(ServiceConfig(port=0))
        yield svc
        svc.drain(grace=1.0)

    def _dispatch(self, service, method, path, body=None, headers=None):
        from tests.wire import check_envelope
        raw = b"" if body is None else json.dumps(body).encode()
        response = service.dispatch(method, path, headers or {}, raw)
        check_envelope(response.payload, status=response.status)
        return response

    def test_inline_query_round_trip_hits_the_cache(self, service):
        from tests.wire import unwrap
        body = {
            "schema": WORK_SCHEMA_SOURCE,
            "query": "q(x) :- Person(x)",
            "database": {
                "objects": {"alice": ["Employee"], "bob": [],
                            "d0": ["Dept"]},
                "relations": [["WorksFor", {"emp": "bob", "dept": "d0"}]],
            },
        }
        cold = self._dispatch(service, "POST", "/v1/query", body)
        assert cold.status == 200
        data = unwrap(cold.payload)
        assert data["cache"] == "miss"
        assert sorted(row[0] for row in data["answers"]) == ["alice", "bob"]
        warm = self._dispatch(service, "POST", "/v1/query", body)
        assert unwrap(warm.payload)["cache"] == "hit"
        assert unwrap(warm.payload)["answers"] == data["answers"]

    def test_query_by_schema_ref(self, service):
        from tests.wire import unwrap
        put = self._dispatch(service, "PUT", "/v1/schemas/work",
                             {"schema": WORK_SCHEMA_SOURCE})
        assert put.status == 201  # stored fresh
        response = self._dispatch(service, "POST", "/v1/query", {
            "schema_ref": "work", "query": "q() :- Employee(x)"})
        assert response.status == 200
        data = unwrap(response.payload)
        assert data["is_boolean"] and data["boolean"] is False

    def test_invalid_query_maps_to_422(self, service):
        from tests.wire import unwrap_error
        response = self._dispatch(service, "POST", "/v1/query", {
            "schema": WORK_SCHEMA_SOURCE, "query": "q(x) :- Martian(x)"})
        assert response.status == 422
        error = unwrap_error(response.payload)
        assert error["sysexit"] == 65

    def test_budget_header_maps_to_504(self, service):
        response = self._dispatch(
            service, "POST", "/v1/query",
            {"schema": WORK_SCHEMA_SOURCE, "query": "q(x) :- Person(x)"},
            headers={"X-Repro-Max-Steps": "1"})
        assert response.status == 504
