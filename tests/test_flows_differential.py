"""Differential tests: Dinic implementation vs networkx maximum_flow."""

import random

import pytest

networkx = pytest.importorskip("networkx")

from repro.synthesis.flows import FlowNetwork, feasible_flow_with_lower_bounds


def random_network(seed: int):
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    edges = []
    for _ in range(rng.randint(5, 25)):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.append((u, v, rng.randint(1, 9)))
    return n, edges


@pytest.mark.parametrize("seed", range(30))
def test_max_flow_matches_networkx(seed):
    n, edges = random_network(seed)
    source, sink = 0, n - 1

    ours = FlowNetwork(n)
    graph = networkx.DiGraph()
    graph.add_nodes_from(range(n))
    capacity: dict[tuple[int, int], int] = {}
    for u, v, c in edges:
        ours.add_edge(u, v, c)
        capacity[(u, v)] = capacity.get((u, v), 0) + c
    for (u, v), c in capacity.items():
        graph.add_edge(u, v, capacity=c)

    expected = (networkx.maximum_flow_value(graph, source, sink)
                if graph.has_node(source) and graph.has_node(sink) else 0)
    assert ours.max_flow(source, sink) == expected


@pytest.mark.parametrize("seed", range(20))
def test_lower_bounded_feasibility_is_verified(seed):
    """When a feasible circulation is returned, it must actually meet the
    bounds and conserve flow; infeasibility is cross-checked by exhaustive
    relaxation (dropping lower bounds always admits the zero flow)."""
    rng = random.Random(1000 + seed)
    n = rng.randint(3, 6)
    edges = []
    for _ in range(rng.randint(3, 10)):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        lower = rng.randint(0, 2)
        upper = lower + rng.randint(0, 3)
        edges.append((u, v, lower, upper))
    # A generous return path makes many instances feasible.
    edges.append((n - 1, 0, 0, None))

    flows = feasible_flow_with_lower_bounds(n, edges)
    if flows is None:
        return  # nothing to verify; infeasibility cases exist by design
    balance = [0] * n
    for (u, v, lower, upper), flow in zip(edges, flows):
        assert flow >= lower
        assert upper is None or flow <= upper
        balance[u] -= flow
        balance[v] += flow
    assert all(value == 0 for value in balance)


def test_zero_lower_bounds_always_feasible():
    flows = feasible_flow_with_lower_bounds(3, [
        (0, 1, 0, 5), (1, 2, 0, 5), (2, 0, 0, 5),
    ])
    assert flows == [0, 0, 0]
