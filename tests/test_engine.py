"""The engine layer: EngineConfig, the staged Pipeline, and SchemaSession."""

import pytest

from repro.core.errors import LinearSystemError, ReasoningError
from repro.core.schema import ClassDef
from repro.core.formulas import Lit
from repro.engine import (
    EngineConfig,
    Pipeline,
    SchemaSession,
    schema_fingerprint,
)
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import clustered_schema, random_schema

GOOD_SOURCE = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""

REORDERED_SOURCE = """
class Professor isa Person endclass
class Person endclass
class Student isa Person and not Professor endclass
"""

BAD_SOURCE = GOOD_SOURCE + """
class TA isa Student and Professor endclass
"""


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.strategy == "auto"
        assert config.size_limit is None
        assert config.lp_backend == "auto"
        assert config.incremental_augmented

    def test_frozen_and_hashable(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.strategy = "naive"
        assert hash(config) == hash(EngineConfig())
        assert config == EngineConfig()

    def test_replace_derives_variants(self):
        config = EngineConfig().replace(strategy="naive", lp_backend="exact")
        assert config.strategy == "naive"
        assert config.lp_backend == "exact"
        assert EngineConfig().strategy == "auto"  # original untouched

    def test_bad_strategy_rejected(self):
        with pytest.raises(ReasoningError, match="strategy"):
            EngineConfig(strategy="bogus")

    def test_bad_backend_rejected(self):
        with pytest.raises(LinearSystemError, match="unknown LP backend"):
            EngineConfig(lp_backend="bogus")

    def test_bad_limits_rejected(self):
        with pytest.raises(ReasoningError):
            EngineConfig(size_limit=0)
        with pytest.raises(ReasoningError):
            EngineConfig(augmented_cache_limit=0)
        with pytest.raises(ReasoningError):
            EngineConfig(session_cache_limit=0)

    def test_replace_revalidates(self):
        with pytest.raises(ReasoningError):
            EngineConfig().replace(strategy="bogus")

    def test_as_dict_round_trip(self):
        config = EngineConfig(strategy="strategic", size_limit=100)
        assert EngineConfig(**config.as_dict()) == config


class TestPipeline:
    def test_construction_is_lazy(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE))
        assert pipeline.built_stages() == ()
        assert pipeline.timer.readings() == {}

    def test_support_pulls_the_whole_chain(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE))
        pipeline.support
        assert pipeline.built_stages() == (
            "tables", "expansion", "system", "support")

    def test_artifacts_are_cached(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE))
        assert pipeline.expansion is pipeline.expansion
        assert pipeline.timer.count("expansion") == 1

    def test_stage_timings_do_not_nest(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE))
        pipeline.expansion
        # tables built as a prerequisite, timed under its own stage only
        assert pipeline.timer.count("tables") == 1
        assert pipeline.timer.count("expansion") == 1

    def test_naive_strategy_skips_tables(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE),
                            EngineConfig(strategy="naive"))
        pipeline.expansion
        assert "tables" not in pipeline.built_stages()

    def test_config_reaches_the_stages(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE),
                            EngineConfig(lp_backend="exact"))
        assert pipeline.support.backend_used in ("exact", "propagation")

    def test_size_limit_guard(self):
        pipeline = Pipeline(clustered_schema(3, 3, seed=0),
                            EngineConfig(size_limit=1))
        with pytest.raises(ReasoningError):
            pipeline.expansion

    def test_stats_builds_missing_stages(self):
        pipeline = Pipeline(parse_schema(GOOD_SOURCE))
        stats = pipeline.stats()
        assert stats.classes == 3
        assert "support" in stats.timings

    def test_strategies_agree(self):
        schema = clustered_schema(2, 3, seed=1)
        verdicts = set()
        for strategy in ("auto", "naive", "strategic"):
            pipeline = Pipeline(schema, EngineConfig(strategy=strategy))
            populated = pipeline.support.supported_compound_classes()
            verdicts.add(frozenset(
                name for name in schema.class_symbols
                if any(name in members for members in populated)))
        assert len(verdicts) == 1


class TestReasonerFacade:
    """The Reasoner keeps its public surface while delegating to Pipeline."""

    def test_legacy_kwargs_become_config_with_deprecation(self):
        with pytest.deprecated_call(match="EngineConfig"):
            reasoner = Reasoner(parse_schema(GOOD_SOURCE), strategy="naive",
                                size_limit=500, incremental_augmented=False)
        assert reasoner.config.strategy == "naive"
        assert reasoner.config.size_limit == 500
        assert not reasoner.config.incremental_augmented

    def test_explicit_config_wins(self):
        config = EngineConfig(strategy="strategic", lp_backend="exact")
        with pytest.deprecated_call(match="EngineConfig"):
            reasoner = Reasoner(parse_schema(GOOD_SOURCE), strategy="naive",
                                config=config)
        assert reasoner.config is config
        assert reasoner.pipeline.config is config

    def test_pipeline_artifacts_shared_with_facade(self):
        reasoner = Reasoner(parse_schema(GOOD_SOURCE))
        assert reasoner.expansion is reasoner.pipeline.expansion
        assert reasoner.support is reasoner.pipeline.support

    def test_augmented_reasoner_inherits_config(self):
        config = EngineConfig(strategy="strategic", lp_backend="exact")
        reasoner = Reasoner(clustered_schema(2, 3, seed=2), config=config)
        reasoner.support
        name = reasoner.fresh_class_name()
        augmented = reasoner.augmented_with(ClassDef(name, isa=Lit("K0_0")))
        assert augmented.config is config


class TestFingerprint:
    def test_order_insensitive(self):
        assert (schema_fingerprint(parse_schema(GOOD_SOURCE))
                == schema_fingerprint(parse_schema(REORDERED_SOURCE)))

    def test_accepts_source_text(self):
        assert (schema_fingerprint(GOOD_SOURCE)
                == schema_fingerprint(parse_schema(GOOD_SOURCE)))

    def test_distinguishes_schemas(self):
        assert (schema_fingerprint(parse_schema(GOOD_SOURCE))
                != schema_fingerprint(parse_schema(BAD_SOURCE)))

    def test_stable_across_render_round_trips(self):
        from repro.parser.printer import render_schema

        schema = clustered_schema(2, 3, seed=3)
        assert (schema_fingerprint(schema)
                == schema_fingerprint(parse_schema(render_schema(schema))))


class TestSchemaSession:
    def test_cache_hit_returns_same_reasoner(self):
        session = SchemaSession()
        first = session.reasoner(parse_schema(GOOD_SOURCE))
        second = session.reasoner(parse_schema(REORDERED_SOURCE))
        assert first is second
        info = session.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_warm_pipeline_is_reused(self):
        session = SchemaSession()
        schema = parse_schema(GOOD_SOURCE)
        session.satisfiable(schema, "Student")
        reasoner = session.reasoner(schema)
        assert "support" in reasoner.pipeline.built_stages()
        assert reasoner.pipeline.timer.count("support") == 1
        session.satisfiable(schema, "Professor")
        assert reasoner.pipeline.timer.count("support") == 1  # no rebuild

    def test_lru_eviction(self):
        session = SchemaSession(EngineConfig(session_cache_limit=2))
        schemas = [random_schema(4, seed=seed) for seed in range(3)]
        for schema in schemas:
            session.reasoner(schema)
        assert len(session) == 2
        assert session.cache_info().evictions == 1
        assert schemas[0] not in session          # the oldest was evicted
        assert schemas[1] in session
        assert schemas[2] in session

    def test_lru_recency_updated_on_hit(self):
        session = SchemaSession(EngineConfig(session_cache_limit=2))
        schemas = [random_schema(4, seed=seed) for seed in range(3)]
        session.reasoner(schemas[0])
        session.reasoner(schemas[1])
        session.reasoner(schemas[0])              # refresh 0's recency
        session.reasoner(schemas[2])              # evicts 1, not 0
        assert schemas[0] in session
        assert schemas[1] not in session

    def test_invalidate_one_and_all(self):
        session = SchemaSession()
        schema = parse_schema(GOOD_SOURCE)
        session.reasoner(schema)
        session.invalidate(schema)
        assert schema not in session
        session.reasoner(schema)
        session.invalidate()
        assert len(session) == 0

    def test_check_coherence_matches_reasoner(self):
        session = SchemaSession()
        schema = parse_schema(BAD_SOURCE)
        report = session.check_coherence(schema)
        assert report.unsatisfiable == ("TA",)
        assert str(report) == str(Reasoner(schema).check_coherence())

    def test_check_many_batches_formulas(self):
        session = SchemaSession()
        schema = parse_schema(GOOD_SOURCE)
        verdicts = session.check_many(schema, [
            Lit("Student"), Lit("Student") & Lit("Professor")])
        assert verdicts == [True, False]
        assert session.cache_info().misses == 1  # one pipeline served both

    def test_classify_and_stats_entry_points(self):
        session = SchemaSession()
        assert "Student isa Person" in str(session.classify(GOOD_SOURCE))
        stats = session.stats(GOOD_SOURCE)
        assert stats.classes == 3
        assert session.cache_info().hits >= 1  # classify warmed the cache

    def test_accepts_source_text_everywhere(self):
        session = SchemaSession()
        assert session.satisfiable(GOOD_SOURCE, "Student")
        assert not session.satisfiable(
            "class A isa not A endclass", "A")

    def test_session_config_reaches_reasoners(self):
        session = SchemaSession(EngineConfig(lp_backend="exact",
                                             strategy="strategic"))
        reasoner = session.reasoner(parse_schema(GOOD_SOURCE))
        assert reasoner.config.lp_backend == "exact"
        assert reasoner.config.strategy == "strategic"
