"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main

GOOD_SCHEMA = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""

BAD_SCHEMA = GOOD_SCHEMA + """
class TA isa Student and Professor endclass
"""

CARD_SCHEMA = """
class C isa not D attributes a : (1, 2) D endclass
class D endclass
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.car"
    path.write_text(GOOD_SCHEMA)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.car"
    path.write_text(BAD_SCHEMA)
    return str(path)


class TestValidate:
    def test_coherent_schema_exits_zero(self, good_file, capsys):
        assert main(["validate", good_file]) == 0
        assert "coherent" in capsys.readouterr().out

    def test_incoherent_schema_exits_nonzero(self, bad_file, capsys):
        assert main(["validate", bad_file]) == 1
        out = capsys.readouterr().out
        assert "INCOHERENT" in out
        assert "TA" in out
        assert "unsatisfiable" in out  # the explanation is printed

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(GOOD_SCHEMA))
        assert main(["validate", "-"]) == 0


class TestClassify:
    def test_lists_subsumptions(self, good_file, capsys):
        assert main(["classify", good_file]) == 0
        out = capsys.readouterr().out
        assert "Student isa Person" in out


class TestSatisfiable:
    def test_satisfiable_class(self, good_file, capsys):
        assert main(["satisfiable", good_file, "Student"]) == 0
        assert "satisfiable" in capsys.readouterr().out

    def test_unsatisfiable_class_explained(self, bad_file, capsys):
        assert main(["satisfiable", bad_file, "TA"]) == 1
        assert "phase 1" in capsys.readouterr().out

    def test_unknown_class_is_error(self, good_file, capsys):
        # ReasoningError carries the stable exit code 64.
        assert main(["satisfiable", good_file, "Nope"]) == 64
        assert "error" in capsys.readouterr().err


class TestSynthesize:
    def test_synthesizes_model(self, tmp_path, capsys):
        path = tmp_path / "card.car"
        path.write_text(CARD_SCHEMA)
        assert main(["synthesize", str(path), "--target", "C"]) == 0
        out = capsys.readouterr().out
        assert "verified model" in out

    def test_full_dump(self, tmp_path, capsys):
        path = tmp_path / "card.car"
        path.write_text(CARD_SCHEMA)
        assert main(["synthesize", str(path), "--target", "C", "--full"]) == 0
        out = capsys.readouterr().out
        assert "a(" in out  # attribute pairs printed


class TestRenderAndStats:
    def test_render_round_trips(self, good_file, capsys):
        assert main(["render", good_file]) == 0
        out = capsys.readouterr().out
        from repro.parser.parser import parse_schema

        assert parse_schema(out) == parse_schema(GOOD_SCHEMA)

    def test_stats_keys(self, good_file, capsys):
        assert main(["stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "compound_classes:" in out
        assert "lp_backend:" in out

    def test_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.car"
        path.write_text("class endclass")
        # ParseError carries the stable exit code 65 (EX_DATAERR).
        assert main(["validate", str(path)]) == 65
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        # Unreadable input carries the stable exit code 66 (EX_NOINPUT).
        assert main(["validate", "/nonexistent/schema.car"]) == 66

    def test_strategy_flag(self, good_file):
        assert main(["validate", good_file, "--strategy", "naive"]) == 0


class TestJsonOutput:
    def parse(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_validate_json_coherent(self, good_file, capsys):
        assert main(["validate", good_file, "--json"]) == 0
        document = self.parse(capsys)
        assert document["command"] == "validate"
        assert document["coherent"] is True
        assert sorted(document["satisfiable"]) == ["Person", "Professor",
                                                   "Student"]
        assert document["unsatisfiable"] == []

    def test_validate_json_incoherent(self, bad_file, capsys):
        assert main(["validate", bad_file, "--json"]) == 1
        document = self.parse(capsys)
        assert document["coherent"] is False
        assert document["unsatisfiable"] == ["TA"]

    def test_satisfiable_json(self, good_file, capsys):
        assert main(["satisfiable", good_file, "Student", "--json"]) == 0
        document = self.parse(capsys)
        assert document == {"command": "satisfiable", "class": "Student",
                            "satisfiable": True, "explanation": None}

    def test_satisfiable_json_explains_failure(self, bad_file, capsys):
        assert main(["satisfiable", bad_file, "TA", "--json"]) == 1
        document = self.parse(capsys)
        assert document["satisfiable"] is False
        assert "phase 1" in document["explanation"]

    def test_stats_json(self, good_file, capsys):
        assert main(["stats", good_file, "--json"]) == 0
        document = self.parse(capsys)
        assert document["command"] == "stats"
        assert document["classes"] == 3
        assert document["lp_backend"] in (
            "exact", "exact-sparse", "float", "closed-form", "propagation")
        assert "psi_unknowns" in document

    def test_validate_text_matches_report_str(self, good_file, capsys):
        from repro.parser.parser import parse_schema
        from repro.reasoner.satisfiability import Reasoner

        assert main(["validate", good_file]) == 0
        out = capsys.readouterr().out.strip()
        report = Reasoner(parse_schema(GOOD_SCHEMA)).check_coherence()
        assert out == str(report)


class TestBackendFlag:
    @pytest.mark.parametrize("backend", ["auto", "exact", "exact-sparse",
                                         "float-fallback", "auto:limit=50"])
    def test_backend_accepted_everywhere(self, good_file, backend, capsys):
        assert main(["validate", good_file, "--backend", backend]) == 0
        assert main(["satisfiable", good_file, "Student",
                     "--backend", backend]) == 0
        capsys.readouterr()

    def test_backends_agree_on_verdicts(self, bad_file, capsys):
        import json

        verdicts = []
        for backend in ("exact", "float-fallback"):
            main(["validate", bad_file, "--json", "--backend", backend])
            document = json.loads(capsys.readouterr().out)
            verdicts.append((document["coherent"],
                             tuple(document["unsatisfiable"])))
        assert verdicts[0] == verdicts[1] == (False, ("TA",))

    def test_unknown_backend_rejected(self, good_file, capsys):
        with pytest.raises(SystemExit):
            main(["validate", good_file, "--backend", "bogus"])


class TestUniformJson:
    """Every subcommand accepts --json (the normalized CLI surface)."""

    def parse(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_classify_json(self, good_file, capsys):
        assert main(["classify", good_file, "--json"]) == 0
        document = self.parse(capsys)
        assert document["command"] == "classify"
        assert ["Student", "Person"] in document["subsumptions"]
        assert document["unsatisfiable"] == []

    def test_render_json(self, good_file, capsys):
        from repro.parser.parser import parse_schema

        assert main(["render", good_file, "--json"]) == 0
        document = self.parse(capsys)
        assert document["command"] == "render"
        assert parse_schema(document["schema"]) == parse_schema(GOOD_SCHEMA)

    def test_synthesize_json(self, tmp_path, capsys):
        path = tmp_path / "card.car"
        path.write_text(CARD_SCHEMA)
        assert main(["synthesize", str(path), "--target", "C",
                     "--full", "--json"]) == 0
        document = self.parse(capsys)
        assert document["command"] == "synthesize"
        assert document["n_objects"] >= 1
        assert "a" in document["attributes"]

    def test_json_error_document(self, tmp_path, capsys):
        path = tmp_path / "broken.car"
        path.write_text("class endclass")
        assert main(["validate", str(path), "--json"]) == 65
        document = self.parse(capsys)
        assert document["exit_code"] == 65
        assert "error" in document


class TestProfileAndTrace:
    def test_profile_summary_on_stderr(self, good_file, capsys):
        assert main(["satisfiable", good_file, "Student", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "pipeline.support" in captured.err
        assert "profile" in captured.err
        # stdout stays clean for the verdict
        assert "satisfiable" in captured.out

    def test_trace_out_writes_versioned_jsonl(self, good_file, tmp_path,
                                              capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(["satisfiable", good_file, "Student",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        lines = [json.loads(line)
                 for line in trace_path.read_text().splitlines()]
        header = lines[0]
        assert header["type"] == "header"
        assert header["trace_schema"] == 1
        kinds = {line["type"] for line in lines}
        assert "span" in kinds and "counter" in kinds
        span_names = {line["name"] for line in lines
                      if line["type"] == "span"}
        assert {"pipeline.tables", "pipeline.expansion", "pipeline.system",
                "pipeline.support"} <= span_names

    def test_trace_written_even_on_failure(self, bad_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["satisfiable", bad_file, "TA",
                     "--trace-out", str(trace_path)]) == 1
        capsys.readouterr()
        assert trace_path.exists()
        assert '"type": "header"' in trace_path.read_text()

    def test_no_flags_no_trace_output(self, good_file, capsys):
        assert main(["satisfiable", good_file, "Student"]) == 0
        assert capsys.readouterr().err == ""


class TestBatch:
    """The ``repro batch`` subcommand: JSONL in, JSONL outcomes out."""

    @pytest.fixture
    def queries_file(self, tmp_path):
        import json

        lines = [
            {"schema": GOOD_SCHEMA, "formula": "Student and not Professor"},
            {"schema": GOOD_SCHEMA, "formula": "Student and Professor"},
            {"schema": "class C isa not C endclass", "formula": "C"},
        ]
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines))
        return str(path)

    def test_jsonl_outcomes_per_line(self, queries_file, capsys):
        import json

        assert main(["batch", queries_file]) == 0
        out = capsys.readouterr().out
        outcomes = [json.loads(line) for line in out.splitlines()]
        assert [o["index"] for o in outcomes] == [0, 1, 2]
        assert [o["verdict"] for o in outcomes] == [True, False, False]
        assert all(o["error"] is None for o in outcomes)

    def test_json_document_with_summary(self, queries_file, capsys):
        import json

        assert main(["batch", queries_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "batch"
        assert payload["summary"] == {"total": 3, "ok": 3, "timed_out": 0,
                                      "failed": 0}
        assert len(payload["outcomes"]) == 3

    def test_stdin_input(self, capsys, monkeypatch):
        import io
        import json

        line = json.dumps({"schema": GOOD_SCHEMA, "formula": "Student"})
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n"))
        assert main(["batch", "-"]) == 0

    def test_bad_lines_isolated_and_exit_code(self, tmp_path, capsys):
        import json

        path = tmp_path / "mixed.jsonl"
        path.write_text("\n".join([
            json.dumps({"schema": GOOD_SCHEMA, "formula": "Student"}),
            "this is not json",
            json.dumps({"formula": "no schema key"}),
        ]))
        # First failure is the invalid JSON line: ParseError, exit 65.
        assert main(["batch", str(path)]) == 65
        outcomes = [json.loads(line)
                    for line in capsys.readouterr().out.splitlines()]
        assert outcomes[0]["verdict"] is True
        assert outcomes[1]["error"]["kind"] == "ParseError"
        assert "line 2" in outcomes[1]["error"]["message"]
        assert outcomes[2]["error"]["kind"] == "ParseError"

    def test_timeout_exits_75(self, tmp_path, capsys):
        import json

        from repro.parser.printer import render_schema
        from repro.reductions import machine_to_schema, parity_machine

        reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
        path = tmp_path / "slow.jsonl"
        path.write_text("\n".join([
            json.dumps({"schema": render_schema(reduction.schema),
                        "formula": str(reduction.target)}),
            json.dumps({"schema": GOOD_SCHEMA, "formula": "Student"}),
        ]))
        assert main(["batch", str(path), "--timeout", "0.05"]) == 75
        outcomes = [json.loads(line)
                    for line in capsys.readouterr().out.splitlines()]
        # The deadline kills the EXPTIME query, not its batch-mate.
        assert outcomes[0]["timed_out"] is True
        assert outcomes[0]["error"]["exit_code"] == 75
        assert outcomes[1]["verdict"] is True

    def test_jobs_process_pool(self, queries_file, capsys):
        import json

        assert main(["batch", queries_file, "--jobs", "2",
                     "--mode", "process"]) == 0
        outcomes = [json.loads(line)
                    for line in capsys.readouterr().out.splitlines()]
        assert [o["verdict"] for o in outcomes] == [True, False, False]

    def test_profile_counters_on_stderr(self, queries_file, capsys):
        assert main(["batch", queries_file, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "executor.tasks_dispatched" in err
        assert "executor.shards" in err


class TestWholeCommandBudget:
    """--timeout / --max-steps on the classic subcommands."""

    def test_max_steps_trips_exit_75(self, tmp_path, capsys):
        from repro.parser.printer import render_schema
        from repro.workloads.generators import clustered_schema

        path = tmp_path / "clustered.car"
        path.write_text(render_schema(clustered_schema(3, 4, seed=1)))
        assert main(["validate", str(path), "--max-steps", "5"]) == 75
        assert "budget" in capsys.readouterr().err.lower()

    def test_generous_timeout_is_harmless(self, good_file, capsys):
        assert main(["validate", good_file, "--timeout", "60"]) == 0
