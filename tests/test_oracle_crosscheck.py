"""Property-based cross-validation of the reasoner against the brute-force
oracle, plus the meta-theorems the strategies rely on.

These are the most important tests in the suite: they compare the paper's
two-phase decision procedure (expansion + linear disequations) with an
independent exhaustive model search on hypothesis-generated schemas.

The comparison is necessarily one-sided in one direction — the oracle only
refutes models up to its size bound — so we check:

* oracle finds a model  ⇒  the reasoner reports satisfiable (completeness);
* the reasoner reports unsatisfiable  ⇒  the oracle finds nothing
  (soundness of "unsatisfiable", the contrapositive of the above, stated
  separately to catch both failure modes in reporting);
* strategy invariance: naive, strategic, exact-LP and float-LP pipelines
  all give identical verdicts;
* Theorem 4.6: imposing cross-cluster disjointness preserves every verdict.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.cardinality import Card
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import Attr, AttrRef, ClassDef, Schema, inv
from repro.engine.config import EngineConfig
from repro.expansion.graph import impose_cluster_disjointness
from repro.reasoner.satisfiability import Reasoner
from repro.semantics.bruteforce import brute_force_find_model
from repro.semantics.checker import is_model

CLASS_NAMES = ("A", "B", "C")

literals = st.builds(Lit,
                     st.sampled_from(CLASS_NAMES),
                     st.booleans())
clauses = st.lists(literals, min_size=1, max_size=2).map(
    lambda lits: Clause(tuple(lits)))
formulas = st.lists(clauses, min_size=0, max_size=2).map(
    lambda cs: Formula(tuple(cs)))

cards = st.sampled_from([
    Card(0, 0), Card(0, 1), Card(1, 1), Card(1, 2), Card(2, 2), Card(0, None),
])

attr_specs = st.builds(
    Attr,
    st.sampled_from([AttrRef("a"), inv("a")]),
    cards,
    st.sampled_from([Lit(name) for name in CLASS_NAMES]
                    + [~Lit(name) for name in CLASS_NAMES]),
)


@st.composite
def small_schemas(draw) -> Schema:
    """Schemas over three classes and one attribute, sized for the oracle."""
    class_defs = []
    for name in CLASS_NAMES:
        isa = draw(formulas)
        n_attrs = draw(st.integers(0, 1))
        attrs = []
        if n_attrs:
            spec = draw(attr_specs)
            attrs.append(spec)
        class_defs.append(ClassDef(name, isa, attrs))
    return Schema(class_defs)


ORACLE_SIZE = 2


def oracle_and_reasoner(schema: Schema, target: str):
    model = brute_force_find_model(schema, target, max_size=ORACLE_SIZE)
    reasoner = Reasoner(schema)
    return model, reasoner.is_satisfiable(target)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_reasoner_complete_wrt_oracle(schema, target):
    """Any model the oracle finds certifies satisfiability: the reasoner
    must agree."""
    model, verdict = oracle_and_reasoner(schema, target)
    if model is not None:
        assert is_model(model, schema)
        assert verdict, (
            f"oracle found a model for {target} but the reasoner said "
            f"unsatisfiable:\n{model.summary()}")


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_unsat_verdicts_have_no_small_countermodel(schema, target):
    model, verdict = oracle_and_reasoner(schema, target)
    if not verdict:
        assert model is None


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_strategies_agree(schema, target):
    naive = Reasoner(schema, config=EngineConfig(strategy="naive")).is_satisfiable(target)
    strategic = Reasoner(schema, config=EngineConfig(strategy="strategic")).is_satisfiable(target)
    assert naive == strategic


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_lp_backends_agree(schema, target):
    from repro.expansion.expansion import build_expansion
    from repro.linear.support import acceptable_support

    expansion = build_expansion(schema)
    exact = acceptable_support(expansion, backend="exact")
    floaty = acceptable_support(expansion, backend="float-fallback")
    assert exact.support == floaty.support


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_theorem_4_6_preserves_satisfiability(schema, target):
    """Imposing disjointness between disconnected classes (Theorem 4.6)
    must not change any satisfiability verdict."""
    original = Reasoner(schema, config=EngineConfig(strategy="naive")).is_satisfiable(target)
    modified_schema = impose_cluster_disjointness(schema)
    modified = Reasoner(modified_schema, config=EngineConfig(strategy="naive")).is_satisfiable(target)
    assert original == modified


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas())
def test_expansion_verbatim_agrees_with_filtered(schema):
    """Materializing unconstrained compound objects (Definition 3.1
    verbatim) must not change which compound classes are supported."""
    from repro.expansion.expansion import build_expansion
    from repro.linear.support import acceptable_support

    filtered = acceptable_support(build_expansion(schema))
    verbatim = acceptable_support(
        build_expansion(schema, include_unconstrained=True))
    assert (set(map(frozenset, filtered.supported_compound_classes()))
            == set(map(frozenset, verbatim.supported_compound_classes())))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES),
       st.sampled_from(CLASS_NAMES))
def test_implication_agrees_across_strategies(schema, c1, c2):
    """The naive strategy enumerates every subset, so its implication
    verdicts are ground truth; the strategic pipeline (clusters + augmented
    cross-cluster queries) must agree.

    This is the regression test for the Theorem 4.6 subtlety: imposing
    cross-cluster disjointness preserves satisfiability but NOT implication,
    so implication queries must route around the cluster restriction.
    """
    from repro.reasoner.implication import implied_disjoint, implied_subsumption

    naive = Reasoner(schema, config=EngineConfig(strategy="naive"))
    strategic = Reasoner(schema, config=EngineConfig(strategy="strategic"))
    assert (implied_disjoint(naive, c1, c2)
            == implied_disjoint(strategic, c1, c2))
    assert (implied_subsumption(naive, c1, c2)
            == implied_subsumption(strategic, c1, c2))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_schemas(), st.sampled_from(CLASS_NAMES))
def test_attribute_filler_implication_agrees_across_strategies(schema, name):
    from repro.core.schema import AttrRef
    from repro.reasoner.implication import implied_attribute_filler

    target = Lit(name)
    naive = Reasoner(schema, config=EngineConfig(strategy="naive"))
    strategic = Reasoner(schema, config=EngineConfig(strategy="strategic"))
    assert (implied_attribute_filler(naive, name, AttrRef("a"), target)
            == implied_attribute_filler(strategic, name, AttrRef("a"), target))
    negated = ~Lit(name)
    assert (implied_attribute_filler(naive, name, AttrRef("a"), negated)
            == implied_attribute_filler(strategic, name, AttrRef("a"), negated))
