"""The cooperative budget: deadlines, step bounds, and the hot loops.

Covers the :mod:`repro.core.budget` primitives themselves and — the part
that actually matters — that each reasoning hot loop (DPLL enumeration,
compound-candidate probing, simplex pivoting) observes the ambient budget
and dies with :class:`~repro.core.errors.BudgetExceeded` under a tiny
step bound or an already-expired deadline.
"""

import time

import pytest

from repro.core.budget import (
    NULL_BUDGET,
    Budget,
    NullBudget,
    current_budget,
    use_budget,
)
from repro.core.errors import BudgetExceeded, CarError
from repro.engine import EngineConfig
from repro.expansion.enumerate import (
    dpll_compound_classes,
    naive_compound_classes,
)
from repro.expansion.expansion import build_expansion
from repro.linear.simplex import solve_lp
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import clustered_schema, wide_attribute_schema


class TestBudgetPrimitives:
    def test_step_budget_trips_after_max_steps(self):
        budget = Budget(max_steps=3)
        budget.tick()
        budget.tick()
        budget.tick()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.tick()
        assert excinfo.value.exit_code == 75
        assert excinfo.value.steps == 4

    def test_deadline_trips_on_monotonic_clock(self):
        budget = Budget(deadline=0.01)
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded):
            budget.tick()

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        for _ in range(10_000):
            budget.tick()
        assert budget.steps == 10_000

    def test_check_does_not_charge_a_step(self):
        budget = Budget(max_steps=1)
        budget.check()
        budget.check()
        assert budget.steps == 0

    def test_remaining_accessors(self):
        budget = Budget(deadline=60.0, max_steps=10)
        budget.tick(4)
        assert budget.remaining_steps() == 6
        assert 0 < budget.remaining_seconds() <= 60.0
        assert Budget().remaining_steps() is None
        assert Budget().remaining_seconds() is None

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(CarError):
            Budget(deadline=0)
        with pytest.raises(CarError):
            Budget(max_steps=-1)

    def test_budget_exceeded_is_car_error(self):
        assert issubclass(BudgetExceeded, CarError)

    def test_null_budget_is_inert_singleton(self):
        assert isinstance(NULL_BUDGET, NullBudget)
        assert not NULL_BUDGET.enabled
        NULL_BUDGET.tick()
        NULL_BUDGET.tick(100)
        NULL_BUDGET.check()
        assert NULL_BUDGET.steps == 0


class TestAmbientBudget:
    def test_default_is_null_budget(self):
        assert current_budget() is NULL_BUDGET

    def test_use_budget_installs_and_restores(self):
        budget = Budget(max_steps=100)
        with use_budget(budget):
            assert current_budget() is budget
        assert current_budget() is NULL_BUDGET

    def test_use_budget_none_installs_null(self):
        with use_budget(Budget(max_steps=5)):
            with use_budget(None):
                assert current_budget() is NULL_BUDGET

    def test_restored_even_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_budget(Budget(max_steps=5)):
                raise RuntimeError("boom")
        assert current_budget() is NULL_BUDGET


#: Enough structure to force real work in every stage.
CLUSTERED = clustered_schema(3, 5, seed=2)


class TestHotLoopsHonorBudget:
    def test_naive_enumeration_trips_step_budget(self):
        with use_budget(Budget(max_steps=10)):
            with pytest.raises(BudgetExceeded):
                naive_compound_classes(CLUSTERED)

    def test_dpll_enumeration_trips_step_budget(self):
        universe = sorted(CLUSTERED.class_symbols)
        with use_budget(Budget(max_steps=5)):
            with pytest.raises(BudgetExceeded):
                dpll_compound_classes(CLUSTERED, universe)

    def test_candidate_probing_trips_step_budget(self):
        schema = wide_attribute_schema(20)
        with use_budget(Budget(max_steps=25)):
            with pytest.raises(BudgetExceeded):
                build_expansion(schema)

    def test_simplex_trips_step_budget(self):
        # A 6-variable LP needing several pivots.
        n = 6
        c = [1] * n
        a_ub = [[1 if i == j else 2 for j in range(n)] for i in range(n)]
        b_ub = [10] * n
        with use_budget(Budget(max_steps=2)):
            with pytest.raises(BudgetExceeded):
                solve_lp(c, a_ub, b_ub)

    def test_expired_deadline_trips_every_loop(self):
        budget = Budget(deadline=0.001)
        time.sleep(0.005)
        with use_budget(budget):
            with pytest.raises(BudgetExceeded):
                dpll_compound_classes(CLUSTERED,
                                      sorted(CLUSTERED.class_symbols))

    def test_reasoner_end_to_end_respects_budget(self):
        reasoner = Reasoner(clustered_schema(3, 5, seed=4),
                            config=EngineConfig(strategy="strategic"))
        with use_budget(Budget(max_steps=20)):
            with pytest.raises(BudgetExceeded):
                reasoner.check_coherence()

    def test_generous_budget_changes_nothing(self):
        schema = parse_schema("""
            class A isa not B endclass
            class B endclass
        """)
        bare = Reasoner(schema).check_coherence().is_coherent
        with use_budget(Budget(deadline=60.0, max_steps=10_000_000)):
            budgeted = Reasoner(schema).check_coherence().is_coherent
        assert bare == budgeted

    def test_budget_abort_leaves_pipeline_retryable(self):
        # A tripped budget mid-build must not poison the lazy pipeline:
        # the failed stage is simply rebuilt on the next query.
        reasoner = Reasoner(clustered_schema(3, 4, seed=6))
        with use_budget(Budget(max_steps=10)):
            with pytest.raises(BudgetExceeded):
                reasoner.check_coherence()
        assert reasoner.check_coherence().is_coherent in (True, False)
