"""Unit tests for Theorem 4.5's arity reduction (reification)."""

import pytest

from repro.core.cardinality import Card
from repro.core.errors import SchemaError
from repro.core.formulas import Lit
from repro.core.schema import ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema
from repro.expansion.expansion import build_expansion
from repro.reasoner.satisfiability import Reasoner
from repro.reasoner.transform import reify_nonbinary_relations


def ternary_schema(card=Card(1, 2)) -> Schema:
    return Schema(
        [ClassDef("Student", participates=[Part("Exam", "of", card)]),
         ClassDef("Professor"), ClassDef("Course")],
        [RelationDef("Exam", ("of", "by", "in"), [
            RoleClause(RoleLiteral("of", "Student")),
            RoleClause(RoleLiteral("by", "Professor")),
            RoleClause(RoleLiteral("in", "Course")),
        ])])


class TestReification:
    def test_binary_relations_untouched(self):
        schema = Schema([], [RelationDef("R", ("u", "v"))])
        result = reify_nonbinary_relations(schema)
        assert not result.was_changed()
        assert result.schema is schema

    def test_ternary_gets_rewritten(self):
        result = reify_nonbinary_relations(ternary_schema())
        assert result.was_changed()
        reified = result.reified[0]
        assert reified.relation == "Exam"
        assert set(reified.role_relations) == {"of", "by", "in"}
        # The ternary relation is gone; three binary ones appear.
        assert "Exam" not in result.schema.relation_symbols
        for binary in reified.role_relations.values():
            assert result.schema.relation(binary).arity == 2

    def test_tuple_class_disjoint_from_everything(self):
        result = reify_nonbinary_relations(ternary_schema())
        tuple_class = result.reified[0].tuple_class
        isa = result.schema.definition(tuple_class).isa
        for other in ("Student", "Professor", "Course"):
            assert not isa.satisfied_by({tuple_class, other})
        assert isa.satisfied_by({tuple_class})

    def test_participations_rewritten(self):
        result = reify_nonbinary_relations(ternary_schema())
        student = result.schema.definition("Student")
        assert len(student.participates) == 1
        spec = student.participates[0]
        assert spec.role == "filler"
        assert spec.card == Card(1, 2)

    def test_disjunctive_role_clause_rejected(self):
        schema = Schema([], [RelationDef("R", ("a", "b", "c"), [
            RoleClause(RoleLiteral("a", "X"), RoleLiteral("b", "Y")),
        ])])
        with pytest.raises(SchemaError):
            reify_nonbinary_relations(schema)

    def test_satisfiability_preserved(self):
        schema = ternary_schema()
        result = reify_nonbinary_relations(schema)
        before = Reasoner(schema)
        after = Reasoner(result.schema)
        for name in ("Student", "Professor", "Course"):
            assert before.is_satisfiable(name) == after.is_satisfiable(name)

    def test_unsatisfiability_preserved(self):
        # Student must take an exam whose 'of' filler is in the empty class.
        schema = Schema(
            [ClassDef("Student", isa=~Lit("Ghost"),
                      participates=[Part("Exam", "of", Card(1, 1))]),
             ClassDef("Ghost")],
            [RelationDef("Exam", ("of", "by", "in"), [
                RoleClause(RoleLiteral("of", "Ghost")),
            ])])
        result = reify_nonbinary_relations(schema)
        assert not Reasoner(schema).is_satisfiable("Student")
        assert not Reasoner(result.schema).is_satisfiable("Student")

    def test_expansion_shrinks(self):
        # The point of the theorem: the K-ary compound-relation blow-up
        # disappears after reification.
        schema = ternary_schema()
        before = build_expansion(schema)
        after = build_expansion(reify_nonbinary_relations(schema).schema)
        ternary_compounds = len(before.compound_relations["Exam"])
        binary_compounds = sum(
            len(v) for v in after.compound_relations.values())
        assert ternary_compounds > 0
        assert binary_compounds <= 3 * max(
            len(v) for v in before.compound_relations.values()) or \
            binary_compounds < ternary_compounds

    def test_fresh_names_avoid_collisions(self):
        schema = Schema(
            [ClassDef("Exam__tuple"),
             ClassDef("Student", isa=~Lit("Exam__tuple"),
                      participates=[Part("Exam", "of", Card(0, 1))])],
            [RelationDef("Exam", ("of", "by", "in"))])
        result = reify_nonbinary_relations(schema)
        tuple_class = result.reified[0].tuple_class
        assert tuple_class != "Exam__tuple"
        assert tuple_class in result.schema.class_symbols


class TestGenerators:
    def test_clustered_structure(self):
        from repro.expansion.graph import clusters
        from repro.workloads.generators import clustered_schema

        schema = clustered_schema(n_clusters=3, cluster_size=3, seed=1)
        assert len(schema.class_symbols) == 9
        assert len(clusters(schema)) == 3

    def test_hierarchy_is_detected(self):
        from repro.expansion.graph import hierarchy_compound_classes
        from repro.workloads.generators import hierarchy_schema

        schema = hierarchy_schema(depth=2, branching=2)
        closed = hierarchy_compound_classes(schema)
        assert closed is not None
        assert len(closed) == len(schema.class_symbols) + 1

    def test_adversarial_is_single_cluster(self):
        from repro.expansion.graph import clusters
        from repro.workloads.generators import adversarial_schema

        schema = adversarial_schema(6, seed=2)
        assert len(clusters(schema)) == 1

    def test_cardinality_chain_growth(self):
        from repro.workloads.generators import cardinality_chain_schema

        schema = cardinality_chain_schema(2, fan_out=3)
        reasoner = Reasoner(schema)
        assert reasoner.is_satisfiable("L0")

    def test_generators_deterministic(self):
        from repro.workloads.generators import random_schema

        assert random_schema(5, seed=9) == random_schema(5, seed=9)
