"""Unit tests for the navigational query layer."""

import pytest

from repro.core.errors import SemanticsError
from repro.core.formulas import Lit
from repro.core.schema import AttrRef, inv
from repro.parser.parser import parse_formula
from repro.semantics.interpretation import Interpretation, LabeledTuple
from repro.semantics.query import ObjectSet, objects


@pytest.fixture
def interp():
    return Interpretation(
        ["ada", "bob", "carol", "db", "os", "ml"],
        classes={
            "Person": {"ada", "bob", "carol"},
            "Student": {"ada", "bob"},
            "Professor": {"carol"},
            "Course": {"db", "os", "ml"},
            "Adv_Course": {"ml"},
        },
        attributes={
            "taught_by": {("db", "carol"), ("os", "carol"), ("ml", "carol")},
            "mentors": {("carol", "ada")},
        },
        relations={
            "Enrollment": {
                LabeledTuple({"enrolled_in": "db", "enrolls": "ada"}),
                LabeledTuple({"enrolled_in": "db", "enrolls": "bob"}),
                LabeledTuple({"enrolled_in": "ml", "enrolls": "ada"}),
            },
        },
    )


class TestConstruction:
    def test_objects_covers_universe(self, interp):
        assert len(objects(interp)) == 6

    def test_prefiltered(self, interp):
        assert objects(interp, of="Student").to_set() == {"ada", "bob"}

    def test_outside_universe_rejected(self, interp):
        with pytest.raises(SemanticsError):
            ObjectSet(interp, ["ghost"])


class TestFiltering:
    def test_where_formula(self, interp):
        students = objects(interp).where(parse_formula("Person and not Professor"))
        assert students.to_set() == {"ada", "bob"}

    def test_where_not(self, interp):
        non_courses = objects(interp).where_not("Course")
        assert non_courses.to_set() == {"ada", "bob", "carol"}

    def test_filter_predicate(self, interp):
        short = objects(interp).filter(lambda o: len(o) == 2)
        assert short.to_set() == {"db", "os", "ml"}

    def test_having_links(self, interp):
        busy = objects(interp).having_links(inv("taught_by"), at_least=3)
        assert busy.to_set() == {"carol"}
        nobody = objects(interp).having_links(inv("taught_by"), at_least=4)
        assert not nobody.to_set()

    def test_having_links_upper(self, interp):
        linkless = objects(interp).having_links(
            AttrRef("mentors"), at_least=0, at_most=0)
        assert "carol" not in linkless
        assert "ada" in linkless


class TestNavigation:
    def test_follow_direct(self, interp):
        teachers = objects(interp, of="Course").follow(AttrRef("taught_by"))
        assert teachers.to_set() == {"carol"}

    def test_follow_inverse(self, interp):
        courses = objects(interp, of="Professor").follow(inv("taught_by"))
        assert courses.to_set() == {"db", "os", "ml"}

    def test_follow_path(self, interp):
        mentees_of_teachers = objects(interp, of="Course").follow_path(
            [AttrRef("taught_by"), AttrRef("mentors")])
        assert mentees_of_teachers.to_set() == {"ada"}

    def test_in_relation(self, interp):
        enrolled = objects(interp, of="Student").in_relation(
            "Enrollment", "enrolls")
        assert enrolled.to_set() == {"ada", "bob"}

    def test_partners_join(self, interp):
        classmates_sources = objects(interp, of=Lit("Adv_Course"))
        enrollees = classmates_sources.partners(
            "Enrollment", at="enrolled_in", to="enrolls")
        assert enrollees.to_set() == {"ada"}

    def test_partners_bad_role(self, interp):
        with pytest.raises(SemanticsError):
            objects(interp).partners("Enrollment", at="nope", to="enrolls")


class TestAlgebra:
    def test_union_intersect_minus(self, interp):
        students = objects(interp, of="Student")
        professors = objects(interp, of="Professor")
        assert students.union(professors).to_set() == {"ada", "bob", "carol"}
        assert students.intersect(professors).to_set() == set()
        persons = objects(interp, of="Person")
        assert persons.minus(students).to_set() == {"carol"}

    def test_cross_interpretation_rejected(self, interp):
        other = Interpretation(["x"])
        with pytest.raises(SemanticsError):
            objects(interp).union(objects(other))

    def test_repr_preview(self, interp):
        text = repr(objects(interp))
        assert "ObjectSet(6" in text


class TestOnSynthesizedModel:
    def test_pipeline_over_generated_state(self):
        from repro.parser.parser import parse_schema
        from repro.reasoner.satisfiability import Reasoner
        from repro.synthesis.builder import synthesize_model

        schema = parse_schema("""
            class C isa not D attributes a : (2, 2) D endclass
            class D endclass
        """)
        report = synthesize_model(Reasoner(schema), target="C")
        interp = report.interpretation
        sources = objects(interp, of="C")
        assert len(sources) >= 1
        targets = sources.follow(AttrRef("a"))
        assert targets.to_set() <= interp.class_ext("D")
        # Every C has exactly two links in the synthesized state.
        assert sources.having_links(AttrRef("a"), at_least=2,
                                    at_most=2).to_set() == sources.to_set()
