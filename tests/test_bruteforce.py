"""Unit tests for the exhaustive tiny-domain oracle."""

import pytest

from repro.core.cardinality import Card
from repro.core.formulas import Lit
from repro.core.schema import Attr, ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema, inv
from repro.parser.parser import parse_schema
from repro.semantics.bruteforce import (
    BruteForceBudget,
    brute_force_find_model,
    brute_force_satisfiable,
)
from repro.semantics.checker import is_model
from repro.core.errors import SemanticsError


class TestBasics:
    def test_primitive_class_satisfiable(self):
        schema = Schema([ClassDef("C")])
        assert brute_force_satisfiable(schema, "C", max_size=1)

    def test_unknown_class_rejected(self):
        schema = Schema([ClassDef("C")])
        with pytest.raises(SemanticsError):
            brute_force_satisfiable(schema, "Nope")

    def test_found_model_is_verified(self):
        schema = parse_schema("class Student isa Person and not Professor endclass")
        model = brute_force_find_model(schema, "Student", max_size=1)
        assert model is not None
        assert is_model(model, schema)
        assert model.class_ext("Student")

    def test_direct_contradiction(self):
        schema = parse_schema("""
            class Student isa Person and not Professor endclass
            class TA isa Student and Professor endclass
        """)
        assert not brute_force_satisfiable(schema, "TA", max_size=2)
        assert brute_force_satisfiable(schema, "Student", max_size=2)

    def test_budget_guard(self):
        classes = [ClassDef(f"C{i}") for i in range(30)]
        with pytest.raises(BruteForceBudget):
            brute_force_satisfiable(Schema(classes), "C0", max_size=3,
                                    work_limit=10)


class TestCardinalityInteraction:
    def test_mandatory_attribute_needs_filler(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), Lit("D") & ~Lit("C"))]),
        ])
        model = brute_force_find_model(schema, "C", max_size=2)
        assert model is not None
        assert model.class_ext("D")

    def test_self_loop_ratio_conflict(self):
        # att must have exactly 1 outgoing and exactly 3 incoming links per
        # instance, and both ends must be C: globally #edges = |C| and
        # #edges = 3|C| — unsatisfiable in finite models.  This is the kind
        # of interaction only the linear phase (not local propagation) sees.
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "C"),
                                      Attr(inv("a"), Card(3, 3), "C")]),
        ])
        assert not brute_force_satisfiable(schema, "C", max_size=3)

    def test_self_loop_balanced_is_satisfiable(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "C"),
                                      Attr(inv("a"), Card(1, 1), "C")]),
        ])
        model = brute_force_find_model(schema, "C", max_size=2)
        assert model is not None

    def test_attribute_zero_card_conflict(self):
        # C forces exactly one a-link, D forbids any; C ∧ D unsatisfiable,
        # via cardinalities only (the paper's negation-free disjointness
        # trick from Theorem 4.2's proof idea).
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1))]),
            ClassDef("D", attributes=[Attr("a", Card(0, 0))]),
            ClassDef("E", isa=Lit("C") & Lit("D")),
        ])
        assert not brute_force_satisfiable(schema, "E", max_size=2)
        assert brute_force_satisfiable(schema, "C", max_size=2)


class TestRelations:
    def test_participation_forces_tuples(self):
        schema = Schema(
            [ClassDef("C", participates=[Part("R", "u", Card(1, 2))])],
            [RelationDef("R", ("u", "v"))])
        model = brute_force_find_model(schema, "C", max_size=2)
        assert model is not None
        assert model.relation_ext("R")

    def test_role_clause_types_enforced(self):
        schema = Schema(
            [ClassDef("C", isa=~Lit("D"),
                      participates=[Part("R", "u", Card(1, 1))])],
            [RelationDef("R", ("u", "v"), [
                RoleClause(RoleLiteral("u", "D")),
            ])])
        # Every tuple's u-component must be in D; C is disjoint from D yet
        # must participate in role u: unsatisfiable.
        assert not brute_force_satisfiable(schema, "C", max_size=2)

    def test_ternary_relation(self):
        schema = Schema(
            [ClassDef("C", participates=[Part("R", "a", Card(1, 1))])],
            [RelationDef("R", ("a", "b", "c"))])
        model = brute_force_find_model(schema, "C", max_size=2)
        assert model is not None
        tup = next(iter(model.relation_ext("R")))
        assert tup.roles() == {"a", "b", "c"}
