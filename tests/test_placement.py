"""Unit tests for defined-class placement."""

import pytest

from repro.core.errors import ReasoningError
from repro.core.formulas import Lit
from repro.parser.parser import parse_formula, parse_schema
from repro.reasoner.placement import place_formula
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.paper_schemas import figure2_schema


@pytest.fixture(scope="module")
def university():
    return Reasoner(parse_schema("""
        class Person endclass
        class Student isa Person and not Professor endclass
        class Professor isa Person endclass
        class Grad_Student isa Student endclass
    """))


class TestPlacement:
    def test_conjunction_lands_between(self, university):
        placement = place_formula(
            university, parse_formula("Person and not Professor"))
        assert placement.satisfiable
        # CAR isa parts are necessary conditions only: Student ⊑ F but a
        # non-professor person need not be a student, so F sits strictly
        # between Person and Student.
        assert placement.parents == ("Person",)
        assert placement.children == ("Student",)
        assert placement.equivalents == ()

    def test_fresh_intersection(self, university):
        placement = place_formula(
            university, parse_formula("Student and not Grad_Student"))
        assert placement.parents == ("Student",)
        assert placement.children == ()

    def test_superclass_formula(self, university):
        placement = place_formula(university, parse_formula("Person"))
        assert "Person" in placement.equivalents
        # Most general children: Student and Professor (not Grad_Student,
        # which sits below Student).
        assert set(placement.children) == {"Professor", "Student"}

    def test_union_covers_children(self, university):
        placement = place_formula(
            university, parse_formula("Student or Professor"))
        assert set(placement.children) == {"Professor", "Student"}
        assert placement.parents == ("Person",)

    def test_unsatisfiable_formula(self, university):
        placement = place_formula(
            university, parse_formula("Student and Professor"))
        assert not placement.satisfiable
        assert "unsatisfiable" in str(placement)

    def test_top_formula(self, university):
        from repro.core.formulas import TOP

        placement = place_formula(university, TOP)
        assert placement.satisfiable
        assert placement.parents == ()  # nothing above top
        assert "Person" in placement.children

    def test_unknown_symbol_rejected(self, university):
        with pytest.raises(ReasoningError):
            place_formula(university, Lit("Martian"))

    def test_figure2_definition_roundtrip(self):
        reasoner = Reasoner(figure2_schema())
        placement = place_formula(
            reasoner, parse_formula("Person and not Professor"))
        # In Figure 2 this is exactly what Student's isa says, but Student
        # additionally requires enrolments — so it is a child or equivalent,
        # never a parent.
        assert "Student" not in placement.parents
        assert ("Student" in placement.equivalents
                or "Student" in placement.children)
        assert "Person" in placement.parents or "Person" in placement.equivalents

    def test_rendering(self, university):
        text = str(place_formula(university, parse_formula("Person")))
        assert "parents" in text and "children" in text
