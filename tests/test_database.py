"""Unit tests for the incremental instance store."""

import pytest

from repro.core.errors import SemanticsError
from repro.parser.parser import parse_schema
from repro.semantics.database import Database, IntegrityError


def university_schema():
    return parse_schema("""
        class Person endclass
        class Student isa Person and not Professor
            participates in Enrollment[enrolls] : (0, 2)
        endclass
        class Professor isa Person endclass
        class Course
            isa not Person
            attributes taught_by : (1, 1) Professor
            participates in Enrollment[enrolled_in] : (1, 3)
        endclass
        relation Enrollment(enrolled_in, enrolls)
            constraints (enrolled_in : Course); (enrolls : Student)
        endrelation
    """)


@pytest.fixture
def db():
    return Database(university_schema())


class TestMutations:
    def test_insert_and_contains(self, db):
        db.insert("alice", "Person")
        assert "alice" in db
        assert len(db) == 1

    def test_unknown_class_rejected(self, db):
        db.insert("x")
        with pytest.raises(SemanticsError):
            db.add_to_class("x", "Martian")

    def test_attribute_needs_known_objects(self, db):
        db.insert("c1")
        with pytest.raises(SemanticsError):
            db.set_attribute("taught_by", "c1", "ghost")

    def test_unknown_attribute_rejected(self, db):
        db.insert("a")
        db.insert("b")
        with pytest.raises(SemanticsError):
            db.set_attribute("nope", "a", "b")

    def test_tuple_role_checking(self, db):
        db.insert("c1")
        db.insert("s1")
        with pytest.raises(SemanticsError):
            db.add_tuple("Enrollment", enrolled_in="c1")  # missing role
        db.add_tuple("Enrollment", enrolled_in="c1", enrolls="s1")

    def test_delete_cascades(self, db):
        db.insert("p", "Person", "Professor")
        db.insert("c")
        db.set_attribute("taught_by", "c", "p")
        db.delete("p")
        assert "p" not in db
        assert not db.snapshot().attribute_ext("taught_by")


class TestValidation:
    def test_empty_database_consistent(self, db):
        assert db.is_consistent()

    def test_isa_violation_detected(self, db):
        db.insert("s", "Student")  # Student without Person
        assert not db.is_consistent()
        db.add_to_class("s", "Person")
        assert db.is_consistent()

    def test_course_needs_teacher(self, db):
        db.insert("c", "Course")
        db.insert("s1", "Person", "Student")
        db.add_tuple("Enrollment", enrolled_in="c", enrolls="s1")
        assert not db.is_consistent()  # missing taught_by (1,1)
        db.insert("p", "Person", "Professor")
        db.set_attribute("taught_by", "c", "p")
        assert db.is_consistent()

    def test_participation_upper_bound(self, db):
        db.insert("p", "Person", "Professor")
        db.insert("c", "Course")
        db.set_attribute("taught_by", "c", "p")
        students = []
        for i in range(3):
            name = f"s{i}"
            db.insert(name, "Person", "Student")
            students.append(name)
            db.add_tuple("Enrollment", enrolled_in="c", enrolls=name)
        assert db.is_consistent()
        # A student may enroll at most twice; course holds at most 3.
        db.insert("s9", "Person", "Student")
        db.add_tuple("Enrollment", enrolled_in="c", enrolls="s9")
        assert not db.is_consistent()


class TestTransactions:
    def test_commit_on_success(self, db):
        with db.transaction():
            db.insert("alice", "Person", "Student")
        assert "alice" in db

    def test_rollback_on_violation(self, db):
        with pytest.raises(IntegrityError) as excinfo:
            with db.transaction():
                db.insert("bob", "Student")  # not a Person: isa violation
        assert "bob" not in db
        assert excinfo.value.violations

    def test_rollback_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("x", "Person")
                raise RuntimeError("boom")
        assert "x" not in db

    def test_no_nesting(self, db):
        with pytest.raises(SemanticsError):
            with db.transaction():
                with db.transaction():
                    pass

    def test_multi_step_transaction(self, db):
        with db.transaction():
            db.insert("p", "Person", "Professor")
            db.insert("c", "Course")
            db.set_attribute("taught_by", "c", "p")
            db.insert("s", "Person", "Student")
            db.add_tuple("Enrollment", enrolled_in="c", enrolls="s")
        assert db.is_consistent()
        assert len(db) == 3


class TestTypeInference:
    def test_implied_classes(self, db):
        db.insert("g")
        db.add_to_class("g", "Student")
        # Every supported compound containing Student contains Person.
        assert "Person" in db.implied_classes("g")

    def test_admissible_classes(self, db):
        db.insert("s", "Person", "Student")
        admissible = db.admissible_classes("s")
        assert "Professor" not in admissible  # disjoint from Student

    def test_unsatisfiable_combination_has_no_completion(self, db):
        db.insert("weird", "Person", "Student")
        db.add_to_class("weird", "Professor")
        assert db.implied_classes("weird") == frozenset()

    def test_classes_of(self, db):
        db.insert("a", "Person")
        assert db.classes_of("a") == {"Person"}
