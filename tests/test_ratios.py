"""Unit tests for population-ratio analysis."""

from fractions import Fraction

import pytest

from repro.core.errors import ReasoningError
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import cardinality_chain_schema
from repro.workloads.paper_schemas import figure2_schema


class TestFixedRatios:
    def test_chain_forces_exact_doubling(self):
        reasoner = Reasoner(cardinality_chain_schema(2, fan_out=2))
        bounds = reasoner.population_ratio("L1", "L0")
        assert bounds.fixed() == Fraction(2)
        bounds = reasoner.population_ratio("L2", "L0")
        assert bounds.fixed() == Fraction(4)

    def test_inverse_direction(self):
        reasoner = Reasoner(cardinality_chain_schema(1, fan_out=3))
        bounds = reasoner.population_ratio("L0", "L1")
        assert bounds.fixed() == Fraction(1, 3)

    def test_one_to_five(self):
        reasoner = Reasoner(parse_schema("""
            class C isa not D attributes a : (1, 1) D endclass
            class D attributes (inv a) : (5, 5) C endclass
        """))
        bounds = reasoner.population_ratio("C", "D")
        assert bounds.fixed() == Fraction(5)


class TestRangeRatios:
    def test_interval_ratio(self):
        # Each C points at 1..3 Ds, each D absorbs exactly one link:
        # |D| between |C| and 3|C|.
        reasoner = Reasoner(parse_schema("""
            class C isa not D attributes a : (1, 3) D endclass
            class D attributes (inv a) : (1, 1) C endclass
        """))
        bounds = reasoner.population_ratio("D", "C")
        assert bounds.lower == Fraction(1)
        assert bounds.upper == Fraction(3)
        assert bounds.fixed() is None

    def test_unbounded_above(self):
        reasoner = Reasoner(parse_schema("""
            class C endclass
            class D endclass
        """))
        bounds = reasoner.population_ratio("D", "C")
        assert bounds.lower == 0
        assert bounds.upper is None
        assert "∞" in str(bounds)

    def test_figure2_courses_vs_professors(self):
        reasoner = Reasoner(figure2_schema())
        bounds = reasoner.population_ratio("Course", "Professor")
        # Every professor teaches 1-2 courses and every course has exactly
        # one teacher, so |Course| >= |Professor|; grad students may teach
        # arbitrarily many further courses.
        assert bounds.lower >= 1
        assert bounds.upper is None

    def test_figure2_students_per_course(self):
        reasoner = Reasoner(figure2_schema())
        bounds = reasoner.population_ratio("Student", "Course")
        # Each course enrolls >= 5 students, each student sits in <= 6
        # courses: at least 5/6 students per course in every model.
        assert bounds.lower >= Fraction(5, 6)


class TestDegenerateCases:
    def test_unsatisfiable_numerator_is_zero(self):
        reasoner = Reasoner(parse_schema("""
            class Bad isa Good and not Good endclass
            class Good endclass
        """))
        bounds = reasoner.population_ratio("Bad", "Good")
        assert bounds.fixed() == 0

    def test_unsatisfiable_denominator_rejected(self):
        reasoner = Reasoner(parse_schema("""
            class Bad isa Good and not Good endclass
            class Good endclass
        """))
        with pytest.raises(ReasoningError):
            reasoner.population_ratio("Good", "Bad")

    def test_unknown_class_rejected(self):
        reasoner = Reasoner(parse_schema("class A endclass"))
        with pytest.raises(ReasoningError):
            reasoner.population_ratio("A", "Nope")

    def test_self_ratio_is_one(self):
        reasoner = Reasoner(parse_schema("class A endclass"))
        assert reasoner.population_ratio("A", "A").fixed() == 1

    def test_subclass_ratio_bounds(self):
        reasoner = Reasoner(parse_schema("""
            class Person endclass
            class Student isa Person endclass
        """))
        bounds = reasoner.population_ratio("Student", "Person")
        assert bounds.lower == 0
        assert bounds.upper == 1  # Student ⊆ Person in every model
