"""The observability subsystem: tracer bus, wiring, and typed stats.

Covers the event/metric bus itself (spans, counters, gauges, the versioned
JSON-lines export), its wiring through every pipeline layer (expansion
counters, LP metrics, session cache gauges), the ambient-tracer mechanism,
the ``EngineConfig.trace`` switch, and the typed stats dataclasses with
their deprecated dict-compat shim.
"""

import json

import pytest

from repro.engine.config import EngineConfig
from repro.engine.session import SchemaSession
from repro.engine.stats import (
    STATS_SCHEMA_VERSION,
    PipelineStats,
    SessionStats,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
    as_tracer,
    current_tracer,
    use_tracer,
)
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner

ATTR_SOURCE = """
class Person isa Top endclass
class Employee isa Person and not Student
  attributes salary : (1, 1) Top
endclass
class Student isa Person endclass
class Top endclass
"""

CARD_SOURCE = """
class C isa not D attributes a : (1, 2) D endclass
class D endclass
"""


class TestTracerBus:
    def test_spans_record_duration_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.name == "inner" and inner.parent == "outer"
        assert outer.name == "outer" and outer.parent is None
        assert inner.duration >= 0 and outer.duration >= inner.duration
        assert tracer.span_count("inner") == 1
        assert tracer.span_seconds("outer") == outer.duration

    def test_counters_accumulate_and_gauges_sample(self):
        tracer = Tracer()
        tracer.add("hits")
        tracer.add("hits", 4)
        tracer.gauge("size", 2)
        tracer.gauge("size", 7)
        assert tracer.counter("hits") == 5
        assert tracer.counter("never") == 0
        assert tracer.gauges["size"] == 7

    def test_clear_resets_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.add("c")
        tracer.clear()
        assert tracer.spans == [] and tracer.counters == {}

    def test_snapshot_is_json_able(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.add("c", 2)
        snapshot = tracer.snapshot()
        assert snapshot["trace_schema"] == TRACE_SCHEMA_VERSION
        json.dumps(snapshot)  # must not raise


class TestTraceJsonlSchema:
    """Snapshot test pinning the versioned JSON-lines trace format."""

    def test_schema_version_is_pinned(self):
        # Bumping TRACE_SCHEMA_VERSION must be a conscious act: consumers
        # (CI artifacts, the benchmark recorder) match on it.
        assert TRACE_SCHEMA_VERSION == 1

    def test_line_shapes(self):
        tracer = Tracer()
        with tracer.span("pipeline.demo"):
            tracer.add("demo.counter", 3)
        tracer.gauge("demo.gauge", 1.5)
        lines = [json.loads(line) for line in tracer.jsonl_lines()]
        header, span, counter, gauge = lines
        assert header == {"type": "header",
                          "trace_schema": TRACE_SCHEMA_VERSION,
                          "generator": "repro"}
        assert span["type"] == "span" and span["name"] == "pipeline.demo"
        assert set(span) == {"type", "name", "start_s", "duration_s",
                             "parent"}
        assert counter == {"type": "counter", "name": "demo.counter",
                           "value": 3}
        assert gauge == {"type": "gauge", "name": "demo.gauge", "value": 1.5}

    def test_write_jsonl_to_path(self, tmp_path):
        tracer = Tracer()
        tracer.add("c")
        target = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(target))
        lines = target.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "header"


class TestNullTracer:
    def test_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_all_operations_are_noops(self):
        with NULL_TRACER.span("anything"):
            NULL_TRACER.add("c", 5)
            NULL_TRACER.gauge("g", 1)
        assert NULL_TRACER.counter("c") == 0
        assert NULL_TRACER.span_count("anything") == 0
        assert NULL_TRACER.snapshot()["spans"] == []

    def test_span_reuses_one_context_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes_the_ambient(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_as_tracer_resolution(self):
        tracer = Tracer()
        assert as_tracer(tracer) is tracer
        assert as_tracer(False) is NULL_TRACER
        assert as_tracer(None) is NULL_TRACER
        assert isinstance(as_tracer(True), Tracer)
        with use_tracer(tracer):
            # False defers to the ambient tracer.
            assert as_tracer(False) is tracer

    def test_pipeline_picks_up_ambient_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            Reasoner(parse_schema(ATTR_SOURCE)).is_satisfiable("Employee")
        assert tracer.span_count("pipeline.support") == 1
        assert tracer.counter("expansion.compound_classes") > 0


class TestConfigTraceField:
    def test_trace_excluded_from_equality_and_hash(self):
        plain = EngineConfig()
        traced = EngineConfig(trace=True)
        assert plain == traced
        assert hash(plain) == hash(traced)

    def test_invalid_trace_rejected(self):
        from repro.core.errors import ReasoningError

        with pytest.raises(ReasoningError):
            EngineConfig(trace="yes")

    def test_tracer_resolution(self):
        shared = Tracer()
        assert EngineConfig(trace=shared).tracer() is shared
        assert EngineConfig().tracer() is NULL_TRACER
        assert isinstance(EngineConfig(trace=True).tracer(), Tracer)

    def test_as_dict_renders_trace_as_bool(self):
        assert EngineConfig(trace=Tracer()).as_dict()["trace"] is True
        assert EngineConfig().as_dict()["trace"] is False


class TestExpansionCounters:
    def test_pruning_and_memo_counters(self):
        tracer = Tracer()
        reasoner = Reasoner(parse_schema(ATTR_SOURCE), tracer=tracer)
        reasoner.expansion
        examined = tracer.counter("expansion.candidates_examined")
        pruned = tracer.counter("expansion.candidates_pruned")
        classes = tracer.counter("expansion.compound_classes")
        assert classes == 5
        # The full Cartesian space per attribute is |classes|²; binding
        # endpoint pruning must account for every skipped candidate.
        assert examined > 0
        assert examined + pruned == classes ** 2
        memo = (tracer.counter("expansion.memo_hits")
                + tracer.counter("expansion.memo_misses"))
        assert memo > 0

    def test_dpll_counters_on_clustered_schema(self):
        from repro.workloads.generators import clustered_schema

        tracer = Tracer()
        config = EngineConfig(strategy="strategic")
        reasoner = Reasoner(clustered_schema(2, 3, seed=0), config=config,
                            tracer=tracer)
        reasoner.expansion
        assert tracer.counter("expansion.dpll_branches") > 0
        assert tracer.counter("expansion.compound_classes") > 0

    def test_hierarchy_closed_form_counter(self):
        tracer = Tracer()
        Reasoner(parse_schema(ATTR_SOURCE), tracer=tracer).expansion
        assert tracer.counter("expansion.hierarchy_closed_form") == 1


class TestLpMetrics:
    def test_exact_backend_counts_pivots(self):
        tracer = Tracer()
        config = EngineConfig(lp_backend="exact")
        reasoner = Reasoner(parse_schema(CARD_SOURCE), config=config,
                            tracer=tracer)
        reasoner.support
        assert tracer.counter("lp.rounds") >= 1
        assert tracer.counter("lp.exact_solves") >= 1
        assert tracer.counter("lp.pivots") > 0

    def test_float_unavailable_falls_back_to_exact(self, monkeypatch):
        from repro.expansion.expansion import build_expansion
        from repro.linear import backends
        from repro.linear.support import acceptable_support

        monkeypatch.setattr(backends, "solve_float_groups",
                            lambda groups, rows: None)
        tracer = Tracer()
        expansion = build_expansion(parse_schema(CARD_SOURCE))
        result = acceptable_support(expansion, backend="float-fallback",
                                    tracer=tracer)
        assert result.backend_used == "exact"
        assert tracer.counter("lp.float_exact_fallbacks") >= 1
        assert tracer.counter("lp.float_solves") == 0
        assert tracer.counter("lp.pivots") > 0

    def test_degenerate_floats_detected_and_refused(self, monkeypatch):
        from repro.expansion.expansion import build_expansion
        from repro.linear import backends
        from repro.linear.support import acceptable_support

        # Every value sits inside the open ambiguity band (1e-9, 1e-6):
        # too close to zero to classify, so the exact core must take over.
        monkeypatch.setattr(
            backends, "solve_float_groups",
            lambda groups, rows: [1e-7] * len(groups))
        tracer = Tracer()
        expansion = build_expansion(parse_schema(CARD_SOURCE))
        result = acceptable_support(expansion, backend="float-fallback",
                                    tracer=tracer)
        assert result.backend_used == "exact"
        assert tracer.counter("lp.degenerate_detections") >= 1
        assert tracer.counter("lp.float_exact_fallbacks") >= 1

    def test_support_pin_counters(self):
        tracer = Tracer()
        # C requires 1..2 links to D but C and D are disjoint is fine;
        # an unsatisfiable class produces acceptability/propagation pins.
        source = """
        class A isa not B attributes a : (1, 2) B endclass
        class B isa not A and not B endclass
        """
        reasoner = Reasoner(parse_schema(source), tracer=tracer)
        reasoner.support
        pinned = sum(tracer.counter(f"support.pins_{phase}")
                     for phase in ("acceptability", "propagation", "linear"))
        assert pinned == len(reasoner.support.pin_log)
        assert pinned > 0


class TestSessionObservability:
    def test_cache_counters_and_gauge(self):
        session = SchemaSession(EngineConfig(trace=True))
        session.satisfiable(ATTR_SOURCE, "Employee")
        session.satisfiable(ATTR_SOURCE, "Student")
        tracer = session.last_trace()
        assert tracer is not None and tracer.enabled
        assert tracer.counter("session.cache_misses") == 1
        assert tracer.counter("session.cache_hits") == 1
        assert tracer.gauges["session.cache_size"] == 1

    def test_eviction_counter(self):
        session = SchemaSession(EngineConfig(trace=True,
                                             session_cache_limit=1))
        session.satisfiable(ATTR_SOURCE, "Employee")
        session.satisfiable(CARD_SOURCE, "C")
        assert session.last_trace().counter("session.cache_evictions") == 1

    def test_last_trace_none_when_disabled(self):
        assert SchemaSession().last_trace() is None

    def test_shared_tracer_instance(self):
        shared = Tracer()
        session = SchemaSession(EngineConfig(trace=shared))
        session.satisfiable(ATTR_SOURCE, "Employee")
        assert session.last_trace() is shared
        assert shared.counter("session.cache_misses") == 1


class TestTypedStats:
    def test_pipeline_stats_payload(self):
        stats = Reasoner(parse_schema(ATTR_SOURCE)).stats()
        assert isinstance(stats, PipelineStats)
        assert stats.classes == 4
        assert stats.schema_version == STATS_SCHEMA_VERSION
        payload = stats.to_json()
        assert payload["stats_schema"] == STATS_SCHEMA_VERSION
        assert payload["classes"] == 4
        assert any(key.startswith("time_") for key in payload)
        json.dumps(payload)  # must not raise

    def test_session_stats_payload(self):
        session = SchemaSession()
        session.satisfiable(ATTR_SOURCE, "Employee")
        session.satisfiable(ATTR_SOURCE, "Student")
        info = session.cache_info()
        assert isinstance(info, SessionStats)
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert info.hit_rate == 0.5
        assert info.to_json()["hit_rate"] == 0.5

    def test_dict_style_access_warns_but_works(self):
        stats = Reasoner(parse_schema(ATTR_SOURCE)).stats()
        with pytest.deprecated_call(match="dict-style"):
            assert stats["classes"] == 4
        with pytest.deprecated_call(match="dict-style"):
            assert "time_support" in stats
        with pytest.deprecated_call(match="dict-style"):
            assert stats["time_support"] == stats.timings["support"]
        with pytest.deprecated_call():
            assert "bogus" not in stats
        with pytest.deprecated_call():
            with pytest.raises(KeyError):
                stats["bogus"]

    def test_session_cache_info_alias(self):
        from repro.engine.session import SessionCacheInfo

        assert SessionCacheInfo is SessionStats


class TestNearZeroDisabledCost:
    def test_reasoner_defaults_to_null_tracer(self):
        reasoner = Reasoner(parse_schema(ATTR_SOURCE))
        assert reasoner.tracer is NULL_TRACER
        reasoner.is_satisfiable("Employee")
        assert reasoner.tracer.snapshot()["counters"] == {}

    def test_null_tracer_is_shared_not_allocated(self):
        first = Reasoner(parse_schema(ATTR_SOURCE))
        second = Reasoner(parse_schema(CARD_SOURCE))
        assert first.tracer is second.tracer is NULL_TRACER

    def test_verdicts_identical_with_and_without_tracing(self):
        schema = parse_schema(CARD_SOURCE)
        traced = Reasoner(schema, tracer=Tracer())
        plain = Reasoner(schema)
        for name in sorted(schema.class_symbols):
            assert traced.is_satisfiable(name) == plain.is_satisfiable(name)
