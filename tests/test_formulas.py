"""Unit tests for class-literals, clauses, and CNF formulae."""

import pytest

from repro.core.errors import SchemaError
from repro.core.formulas import (
    TOP,
    Clause,
    Formula,
    Lit,
    as_clause,
    as_formula,
    conjunction,
    disjunction,
)


class TestLit:
    def test_positive_default(self):
        assert Lit("Person").positive

    def test_invert(self):
        lit = ~Lit("Person")
        assert not lit.positive
        assert ~lit == Lit("Person")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Lit("")

    def test_satisfied_by_positive(self):
        assert Lit("A").satisfied_by({"A", "B"})
        assert not Lit("A").satisfied_by({"B"})

    def test_satisfied_by_negative(self):
        assert (~Lit("A")).satisfied_by(set())
        assert not (~Lit("A")).satisfied_by({"A"})

    def test_str(self):
        assert str(Lit("A")) == "A"
        assert str(~Lit("A")) == "not A"


class TestClause:
    def test_or_operator_builds_clause(self):
        clause = Lit("A") | Lit("B")
        assert isinstance(clause, Clause)
        assert len(clause) == 2

    def test_deduplication(self):
        clause = Lit("A") | Lit("A") | Lit("B")
        assert len(clause) == 2

    def test_canonical_order_makes_equal(self):
        assert (Lit("A") | Lit("B")) == (Lit("B") | Lit("A"))

    def test_tautology_detection(self):
        assert (Lit("A") | ~Lit("A")).is_tautology()
        assert not (Lit("A") | ~Lit("B")).is_tautology()

    def test_empty_clause_is_false(self):
        clause = Clause(())
        assert not clause.satisfied_by({"A"})
        assert str(clause) == "false"

    def test_satisfied_any_literal(self):
        clause = Lit("A") | ~Lit("B")
        assert clause.satisfied_by({"A", "B"})   # A true
        assert clause.satisfied_by(set())        # not B true
        assert not clause.satisfied_by({"B"})

    def test_classes(self):
        assert (Lit("A") | ~Lit("B")).classes() == {"A", "B"}

    def test_non_literal_rejected(self):
        with pytest.raises(SchemaError):
            Clause(("A",))


class TestFormula:
    def test_and_operator_builds_formula(self):
        formula = Lit("A") & Lit("B")
        assert isinstance(formula, Formula)
        assert len(formula) == 2

    def test_mixed_cnf(self):
        formula = (Lit("A") | Lit("B")) & ~Lit("C")
        assert len(formula) == 2

    def test_top_satisfied_by_anything(self):
        assert TOP.satisfied_by(set())
        assert TOP.satisfied_by({"A", "B"})

    def test_clause_deduplication(self):
        formula = Lit("A") & Lit("A")
        assert len(formula) == 1

    def test_satisfied_needs_all_clauses(self):
        formula = Lit("A") & (Lit("B") | Lit("C"))
        assert formula.satisfied_by({"A", "B"})
        assert formula.satisfied_by({"A", "C"})
        assert not formula.satisfied_by({"A"})
        assert not formula.satisfied_by({"B", "C"})

    def test_positive_negative_classes(self):
        formula = (Lit("A") | ~Lit("B")) & Lit("C")
        assert formula.positive_classes() == {"A", "C"}
        assert formula.negative_classes() == {"B"}

    def test_union_free(self):
        assert (Lit("A") & Lit("B")).is_union_free()
        assert not ((Lit("A") | Lit("B")) & Lit("C")).is_union_free()

    def test_negation_free(self):
        assert ((Lit("A") | Lit("B")) & Lit("C")).is_negation_free()
        assert (Lit("A") & Lit("B")).is_negation_free()
        assert not (Lit("A") & ~Lit("B")).is_negation_free()

    def test_trivially_true(self):
        assert TOP.is_trivially_true()
        assert Formula(((Lit("A") | ~Lit("A")),)).is_trivially_true()
        assert not as_formula("A").is_trivially_true()

    def test_str_forms(self):
        assert str(TOP) == "true"
        assert str(as_formula("A")) == "A"
        rendered = str((Lit("A") | Lit("B")) & ~Lit("C"))
        assert "or" in rendered and "and" in rendered


class TestCoercions:
    def test_as_clause_from_str(self):
        assert as_clause("A") == Clause((Lit("A"),))

    def test_as_formula_from_str(self):
        assert as_formula("A") == Formula((Clause((Lit("A"),)),))

    def test_as_formula_idempotent(self):
        formula = Lit("A") & Lit("B")
        assert as_formula(formula) is formula

    def test_as_formula_rejects_junk(self):
        with pytest.raises(SchemaError):
            as_formula(42)

    def test_conjunction_empty_is_top(self):
        assert conjunction([]) == TOP

    def test_conjunction_merges(self):
        formula = conjunction(["A", Lit("B") | Lit("C")])
        assert len(formula) == 2

    def test_disjunction(self):
        clause = disjunction(["A", ~Lit("B")])
        assert clause == (Lit("A") | ~Lit("B"))

    def test_disjunction_rejects_junk(self):
        with pytest.raises(SchemaError):
            disjunction([1])


class TestRealizationSemantics:
    """The truth assignment Φ_C̄ of Section 3.1 is satisfied_by."""

    def test_compound_class_realizes(self):
        # C̄ = {Student, Person} realizes "Person and not Professor".
        isa = Lit("Person") & ~Lit("Professor")
        assert isa.satisfied_by(frozenset({"Student", "Person"}))
        assert not isa.satisfied_by(frozenset({"Student", "Person", "Professor"}))

    def test_empty_compound_class(self):
        # The empty compound class realizes purely negative formulae.
        assert (~Lit("Person")).satisfied_by(frozenset())
        assert not as_formula("Person").satisfied_by(frozenset())
