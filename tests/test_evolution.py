"""Unit tests for schema-evolution analysis."""


from repro.parser.parser import parse_schema
from repro.reasoner.evolution import compare_schemas

BASE = """
class Person endclass
class Student isa Person and not Professor
    attributes advisor : (0, 1) Professor
endclass
class Professor isa Person endclass
"""


class TestCompareSchemas:
    def test_identical_schemas_compatible(self):
        old = parse_schema(BASE)
        new = parse_schema(BASE)
        report = compare_schemas(old, new)
        assert report.is_backward_compatible
        assert "no derived facts changed" in str(report)

    def test_added_and_removed_classes(self):
        old = parse_schema(BASE)
        new = parse_schema(BASE + "class Course endclass")
        report = compare_schemas(old, new)
        assert report.added_classes == ("Course",)
        assert report.is_backward_compatible
        reverse = compare_schemas(new, old)
        assert reverse.removed_classes == ("Course",)

    def test_newly_unsatisfiable_class_detected(self):
        old = parse_schema(BASE + "class TA isa Student endclass")
        new = parse_schema(BASE + "class TA isa Student and Professor endclass")
        report = compare_schemas(old, new)
        assert "TA" in report.newly_unsatisfiable
        assert not report.is_backward_compatible

    def test_newly_satisfiable_class_detected(self):
        old = parse_schema(BASE + "class TA isa Student and Professor endclass")
        new = parse_schema(BASE + "class TA isa Student endclass")
        report = compare_schemas(old, new)
        assert "TA" in report.newly_satisfiable

    def test_lost_subsumption_breaks_compatibility(self):
        old = parse_schema(BASE)
        new = parse_schema(BASE.replace("isa Person and not Professor",
                                        "isa not Professor"))
        report = compare_schemas(old, new)
        assert ("Student", "Person") in report.lost_subsumptions
        assert not report.is_backward_compatible

    def test_gained_subsumption_is_compatible(self):
        old = parse_schema(BASE + "class Tutor endclass")
        new = parse_schema(BASE + "class Tutor isa Student endclass")
        report = compare_schemas(old, new)
        assert ("Tutor", "Student") in report.gained_subsumptions
        assert report.is_backward_compatible

    def test_lost_disjointness_detected(self):
        old = parse_schema(BASE)
        new = parse_schema(BASE.replace("isa Person and not Professor",
                                        "isa Person"))
        report = compare_schemas(old, new)
        assert ("Professor", "Student") in report.lost_disjointness or \
            ("Student", "Professor") in report.lost_disjointness
        assert not report.is_backward_compatible

    def test_changed_attribute_bounds_reported(self):
        old = parse_schema(BASE)
        new = parse_schema(BASE.replace("advisor : (0, 1)", "advisor : (1, 1)"))
        report = compare_schemas(old, new)
        changed = {(name, ref) for name, ref, _, _ in
                   report.changed_attribute_bounds}
        assert ("Student", "advisor") in changed

    def test_report_rendering(self):
        old = parse_schema(BASE + "class TA isa Student endclass")
        new = parse_schema(BASE + "class TA isa Student and Professor endclass")
        text = str(compare_schemas(old, new))
        assert "NOT backward compatible" in text
        assert "newly unsatisfiable: TA" in text
