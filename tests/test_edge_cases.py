"""Edge-case tests sweeping the corners of several modules."""

import pytest

from repro.core.cardinality import Card
from repro.core.errors import ParseError
from repro.core.formulas import Formula, Lit, TOP
from repro.core.schema import Attr, ClassDef, Schema
from repro.parser.parser import parse_schema
from repro.reasoner.satisfiability import Reasoner


class TestParserDiagnostics:
    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_schema("class C\n  isa and\nendclass")
        assert excinfo.value.line == 2
        assert excinfo.value.column > 0

    def test_error_message_names_expectation(self):
        with pytest.raises(ParseError) as excinfo:
            parse_schema("class C isa A endclas")
        assert "endclass" in str(excinfo.value) or "expected" in str(excinfo.value)

    def test_reserved_word_as_class_name(self):
        with pytest.raises(ParseError):
            parse_schema("class class endclass")

    def test_empty_source_is_empty_schema(self):
        schema = parse_schema("   -- nothing here\n")
        assert not schema.class_definitions
        assert not schema.relation_definitions


class TestDegenerateSchemas:
    def test_schema_with_no_definitions(self):
        reasoner = Reasoner(Schema([]))
        assert reasoner.check_coherence().is_coherent
        assert reasoner.satisfiable_classes() == []

    def test_class_mentioned_only_negatively(self):
        reasoner = Reasoner(parse_schema("class A isa not Ghost endclass"))
        assert reasoner.is_satisfiable("A")
        assert reasoner.is_satisfiable("Ghost")

    def test_zero_zero_attribute(self):
        # (0, 0): the attribute is forbidden for C, fine for others.
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(0, 0))]),
            ClassDef("D", attributes=[Attr("a", Card(1, 1), "D")]),
        ])
        reasoner = Reasoner(schema)
        assert reasoner.is_satisfiable("C")
        assert reasoner.is_satisfiable("D")
        # C ∧ D merges (0,0) with (1,1): empty interval.
        assert not reasoner.is_formula_satisfiable(Lit("C") & Lit("D"))

    def test_tautological_isa(self):
        reasoner = Reasoner(parse_schema("class A isa B or not B endclass"))
        assert reasoner.is_satisfiable("A")

    def test_formula_top_always_satisfiable(self):
        reasoner = Reasoner(Schema([ClassDef("A")]))
        assert reasoner.is_formula_satisfiable(TOP)

    def test_empty_clause_formula_unsatisfiable(self):
        from repro.core.formulas import Clause

        reasoner = Reasoner(Schema([ClassDef("A")]))
        falsum = Formula((Clause(()),))
        assert not reasoner.is_formula_satisfiable(falsum)

    def test_self_referential_attribute_types(self):
        # C's attribute points at C itself with loose cards: fine.
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(0, 2), "C")]),
        ])
        assert Reasoner(schema).is_satisfiable("C")


class TestSupportIntrospection:
    def test_pin_events_accessible(self):
        from repro.expansion.expansion import build_expansion
        from repro.linear.support import acceptable_support

        schema = parse_schema("""
            class Sup attributes x : (2, 2) T endclass
            class Sub isa Sup attributes x : (0, 1) T endclass
            class T endclass
        """)
        result = acceptable_support(build_expansion(schema))
        pinned = [event for event in result.pin_log]
        assert pinned
        assert all(event.phase in ("propagation", "acceptability", "linear")
                   for event in pinned)

    def test_backend_recorded(self):
        from repro.expansion.expansion import build_expansion
        from repro.linear.support import acceptable_support

        schema = parse_schema("class A isa B endclass")
        result = acceptable_support(build_expansion(schema), backend="exact")
        assert result.backend_used in ("exact", "propagation")


class TestReasonerGuards:
    def test_fresh_class_name_avoids_collisions(self):
        schema = parse_schema("class __Query endclass")
        reasoner = Reasoner(schema)
        fresh = reasoner.fresh_class_name()
        assert fresh not in schema.class_symbols

    def test_formula_satisfiability_cache(self):
        schema = parse_schema("""
            class A endclass
            class B endclass
        """)
        reasoner = Reasoner(schema)
        formula = Lit("A") & Lit("B")
        first = reasoner.is_formula_satisfiable(formula)
        second = reasoner.is_formula_satisfiable(formula)
        assert first == second == True  # noqa: E712 — explicit tri-check

    def test_stats_after_queries(self):
        reasoner = Reasoner(parse_schema("class A isa B endclass"))
        reasoner.is_satisfiable("A")
        stats = reasoner.stats()
        assert stats.supported >= 1


class TestTuringTrace:
    def test_configuration_rendering(self):
        from repro.reductions.turing import parity_machine

        outcome = parity_machine().run("10", time=5, space=3)
        text = str(outcome.trace[0])
        assert "even" in text and "[" in text

    def test_halted_flag(self):
        from repro.reductions.turing import parity_machine, never_accepts

        done = parity_machine().run("0", time=10, space=2)
        assert done.halted
        spinning = never_accepts().run("0", time=3, space=1)
        assert not spinning.halted
