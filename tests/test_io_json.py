"""Unit tests for JSON serialization of schemas and interpretations."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.errors import SchemaError, SemanticsError
from repro.core.io_json import (
    interpretation_from_dict,
    interpretation_to_dict,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.semantics.interpretation import Interpretation, LabeledTuple
from repro.workloads.paper_schemas import figure1_schema, figure2_schema

from tests.strategies import rich_schemas


class TestSchemaRoundTrip:
    def test_figure1(self):
        schema = figure1_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_figure2(self):
        schema = figure2_schema()
        assert schema_from_dict(schema_to_dict(schema)) == schema

    def test_json_string_round_trip(self):
        schema = figure2_schema()
        text = schema_to_json(schema)
        json.loads(text)  # valid JSON
        assert schema_from_json(text) == schema

    def test_format_tag_checked(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"format": "something-else"})

    def test_dict_is_json_safe(self):
        # No tuples/frozensets may leak into the payload.
        payload = schema_to_dict(figure2_schema())
        json.dumps(payload)

    def test_bad_cardinality_rejected(self):
        data = schema_to_dict(figure2_schema())
        data["classes"][0]["attributes"][0]["card"] = [1]
        with pytest.raises(SchemaError):
            schema_from_dict(data)


class TestSchemaRoundTripProperty:
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rich_schemas())
    def test_generated_schemas(self, schema):
        assert schema_from_dict(schema_to_dict(schema)) == schema


class TestInterpretationRoundTrip:
    def interpretation(self):
        return Interpretation(
            ["a", "b", "c"],
            classes={"C": {"a", "b"}, "D": {"c"}},
            attributes={"att": {("a", "b"), ("b", "c")}},
            relations={"R": {LabeledTuple({"u": "a", "v": "c"})}},
        )

    def test_round_trip(self):
        interp = self.interpretation()
        rebuilt = interpretation_from_dict(interpretation_to_dict(interp))
        assert rebuilt.universe == interp.universe
        assert rebuilt.class_ext("C") == interp.class_ext("C")
        assert rebuilt.attribute_ext("att") == interp.attribute_ext("att")
        assert rebuilt.relation_ext("R") == interp.relation_ext("R")

    def test_json_safe(self):
        json.dumps(interpretation_to_dict(self.interpretation()))

    def test_non_scalar_objects_rejected(self):
        interp = Interpretation([("tuple", "object")])
        with pytest.raises(SemanticsError):
            interpretation_to_dict(interp)

    def test_format_tag_checked(self):
        with pytest.raises(SemanticsError):
            interpretation_from_dict({"format": "nope", "universe": [1]})

    def test_synthesized_model_round_trips(self):
        from repro.parser.parser import parse_schema
        from repro.reasoner.satisfiability import Reasoner
        from repro.semantics.checker import is_model
        from repro.synthesis.builder import synthesize_model

        schema = parse_schema("""
            class C isa not D attributes a : (1, 2) D endclass
            class D endclass
        """)
        report = synthesize_model(Reasoner(schema), target="C")
        payload = interpretation_to_dict(report.interpretation)
        rebuilt = interpretation_from_dict(payload)
        assert is_model(rebuilt, schema)
