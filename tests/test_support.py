"""Unit tests for Ψ_S construction and the maximal-acceptable-support solver."""

import pytest

from repro.core.cardinality import Card
from repro.core.formulas import Lit
from repro.core.schema import Attr, ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema, inv
from repro.expansion.expansion import build_expansion
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.parser.parser import parse_schema


def support_of(schema: Schema, backend: str = "auto"):
    return acceptable_support(build_expansion(schema), backend=backend)


def satisfiable(schema: Schema, name: str, backend: str = "auto") -> bool:
    result = support_of(schema, backend)
    return any(name in members for members in result.supported_compound_classes())


class TestSystemConstruction:
    def test_counts_figure2(self):
        from repro.workloads.paper_schemas import figure2_schema

        system = build_system(build_expansion(figure2_schema()))
        assert system.n_unknowns() == 1290
        assert system.n_constraints() == 242
        assert system.size() == system.n_unknowns() + system.n_nonzeros()

    def test_no_constraints_without_cards(self):
        schema = parse_schema("class A isa B endclass")
        system = build_system(build_expansion(schema))
        assert system.n_constraints() == 0

    def test_endpoints_of(self):
        schema = Schema([
            ClassDef("A", attributes=[Attr("x", Card(1, 1), "B")]),
            ClassDef("B"),
        ])
        system = build_system(build_expansion(schema))
        compound_attr_indices = [
            i for i, unknown in enumerate(system.unknowns)
            if not isinstance(unknown, frozenset)
        ]
        assert compound_attr_indices
        for index in compound_attr_indices:
            endpoints = system.endpoints_of(index)
            assert len(endpoints) == 2


class TestSupportBasics:
    def test_unconstrained_schema_fully_supported(self):
        schema = parse_schema("""
            class A isa B endclass
            class B endclass
        """)
        result = support_of(schema)
        assert len(result.support) == result.system.n_unknowns()

    def test_isa_contradiction_unsupported(self):
        schema = parse_schema("""
            class Student isa Person and not Professor endclass
            class TA isa Student and Professor endclass
        """)
        assert not satisfiable(schema, "TA")
        assert satisfiable(schema, "Student")

    def test_mandatory_attribute_keeps_class_alive(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "D")]),
            ClassDef("D"),
        ])
        assert satisfiable(schema, "C")

    def test_mandatory_attribute_with_empty_filler_kills_class(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), Lit("D") & ~Lit("D"))]),
            ClassDef("D"),
        ])
        assert not satisfiable(schema, "C")
        assert satisfiable(schema, "D")

    def test_self_loop_ratio_conflict(self):
        # The finite-model subtlety: exactly 1 outgoing but exactly 3
        # incoming a-links per C instance, all within C.  Only the linear
        # phase detects this (|a| = |C| and |a| = 3|C| simultaneously).
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "C"),
                                      Attr(inv("a"), Card(3, 3), "C")]),
        ])
        assert not satisfiable(schema, "C")

    def test_self_loop_balanced(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "C"),
                                      Attr(inv("a"), Card(1, 1), "C")]),
        ])
        assert satisfiable(schema, "C")

    def test_empty_merged_interval_kills_compound(self):
        schema = Schema([
            ClassDef("A", attributes=[Attr("a", Card(2, 3), "X")]),
            ClassDef("B", attributes=[Attr("a", Card(0, 1), "X")]),
            ClassDef("E", isa=Lit("A") & Lit("B")),
            ClassDef("X"),
        ])
        assert not satisfiable(schema, "E")
        assert satisfiable(schema, "A")


class TestParticipationSupport:
    def test_participation_needs_partner_classes(self):
        schema = Schema(
            [ClassDef("C", isa=~Lit("D"),
                      participates=[Part("R", "u", Card(1, 1))])],
            [RelationDef("R", ("u", "v"),
                         [RoleClause(RoleLiteral("u", "D"))])])
        assert not satisfiable(schema, "C")

    def test_participation_ratio(self):
        # Every C is in exactly 2 tuples at u; every D in exactly 1 at v:
        # |R| = 2|C| = |D| — satisfiable by taking twice as many Ds.
        schema = Schema(
            [ClassDef("C", participates=[Part("R", "u", Card(2, 2))]),
             ClassDef("D", isa=~Lit("C"),
                      participates=[Part("R", "v", Card(1, 1))])],
            [RelationDef("R", ("u", "v"), [
                RoleClause(RoleLiteral("u", "C")),
                RoleClause(RoleLiteral("v", "D")),
            ])])
        assert satisfiable(schema, "C")
        assert satisfiable(schema, "D")

    def test_figure2_supported(self):
        from repro.workloads.paper_schemas import figure2_schema

        result = support_of(figure2_schema())
        names = {"Person", "Professor", "Student", "Grad_Student",
                 "Course", "Adv_Course"}
        supported_names = set()
        for members in result.supported_compound_classes():
            supported_names.update(members)
        assert names <= supported_names


class TestBackends:
    def small_schemas(self):
        yield Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 1), "C"),
                                      Attr(inv("a"), Card(3, 3), "C")]),
        ])
        yield Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 2), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(2, 2), "C")]),
        ])
        yield parse_schema("""
            class Student isa Person and not Professor endclass
            class TA isa Student and Professor endclass
        """)

    def test_exact_and_float_agree(self):
        for schema in self.small_schemas():
            exact = support_of(schema, backend="exact")
            floaty = support_of(schema, backend="float-fallback")
            assert exact.support == floaty.support

    def test_bad_backend_rejected(self):
        from repro.core.errors import LinearSystemError

        with pytest.raises(LinearSystemError):
            support_of(Schema([ClassDef("A")]), backend="bogus")


class TestWitness:
    def test_integer_witness_scales(self):
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 2), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(2, 2), "C")]),
        ])
        result = support_of(schema, backend="exact")
        witness = result.integer_solution(scale=3)
        assert all(isinstance(v, int) and v >= 0 for v in witness.values())
        positive = {i for i, v in witness.items() if v > 0}
        # The witness concentrates interchangeable compound attributes on a
        # representative, so it is positive on a subset of the support —
        # but on *every* supported compound-class unknown.
        assert positive <= set(result.support)
        for index in result.support:
            if isinstance(result.system.unknowns[index], frozenset):
                assert index in positive

    def test_witness_satisfies_constraints(self):
        from fractions import Fraction

        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 2), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(2, 2), "C")]),
        ])
        result = support_of(schema, backend="exact")
        for constraint in result.system.constraints:
            total = sum(
                (coeff * result.solution[var] for var, coeff in
                 constraint.coefficients), Fraction(0))
            assert total <= 0, constraint.origin

    def test_scale_must_be_positive(self):
        from repro.core.errors import LinearSystemError

        result = support_of(Schema([ClassDef("A")]))
        with pytest.raises(LinearSystemError):
            result.integer_solution(scale=0)


class TestMinimizedWitness:
    def test_minimized_is_valid_and_small(self):
        from fractions import Fraction

        from repro.linear.support import minimize_witness

        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(1, 2), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(2, 2), "C")]),
        ])
        result = support_of(schema, backend="exact")
        minimized = minimize_witness(result)
        assert minimized is not None
        # Valid: satisfies every disequation.
        for constraint in result.system.constraints:
            total = sum((coeff * minimized[var]
                         for var, coeff in constraint.coefficients),
                        Fraction(0))
            assert total <= 0, constraint.origin
        # Positive on every supported compound class.
        for index in result.support:
            if isinstance(result.system.unknowns[index], frozenset):
                assert minimized[index] >= 1
        # No larger than the max-support witness in total mass.
        assert (sum(minimized.values())
                <= sum(result.solution.values()) + Fraction(1, 10 ** 6))

    def test_minimized_shrinks_reasoner_witness(self):
        from repro.reasoner.satisfiability import Reasoner
        from repro.workloads.paper_schemas import figure2_schema

        reasoner = Reasoner(figure2_schema())
        counts = reasoner.witness_counts()
        total = sum(v for k, v in counts.items() if isinstance(k, frozenset))
        # The unminimized witness used to require >1000 objects here.
        assert 0 < total <= 300
