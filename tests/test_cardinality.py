"""Unit tests for cardinality intervals."""

import pytest

from repro.core.cardinality import ANY, AT_LEAST_ONE, AT_MOST_ONE, EXACTLY_ONE, INFINITY, Card
from repro.core.errors import SchemaError


class TestConstruction:
    def test_simple_interval(self):
        card = Card(2, 5)
        assert card.lower == 2
        assert card.upper == 5
        assert not card.unbounded

    def test_unbounded_interval(self):
        card = Card(3)
        assert card.upper is INFINITY
        assert card.unbounded

    def test_negative_lower_rejected(self):
        with pytest.raises(SchemaError):
            Card(-1, 2)

    def test_negative_upper_rejected(self):
        with pytest.raises(SchemaError):
            Card(0, -2)

    def test_non_int_lower_rejected(self):
        with pytest.raises(SchemaError):
            Card("1", 2)

    def test_bool_rejected(self):
        with pytest.raises(SchemaError):
            Card(True, 2)

    def test_non_int_upper_rejected(self):
        with pytest.raises(SchemaError):
            Card(0, 2.5)

    def test_empty_interval_representable(self):
        assert Card(3, 1).is_empty()

    def test_declared_empty_interval_rejected(self):
        with pytest.raises(SchemaError):
            Card(3, 1).validate_declared()

    def test_declared_valid_returns_self(self):
        card = Card(1, 2)
        assert card.validate_declared() is card


class TestContains:
    def test_inside(self):
        assert Card(1, 3).contains(2)

    def test_boundaries(self):
        card = Card(1, 3)
        assert card.contains(1)
        assert card.contains(3)

    def test_outside(self):
        card = Card(1, 3)
        assert not card.contains(0)
        assert not card.contains(4)

    def test_unbounded_contains_large(self):
        assert Card(2).contains(10 ** 9)

    def test_unbounded_respects_lower(self):
        assert not Card(2).contains(1)

    def test_empty_contains_nothing(self):
        card = Card(3, 1)
        for count in range(6):
            assert not card.contains(count)


class TestIntersect:
    def test_overlapping(self):
        assert Card(1, 5).intersect(Card(3, 8)) == Card(3, 5)

    def test_disjoint_gives_empty(self):
        assert Card(0, 1).intersect(Card(3, 4)).is_empty()

    def test_with_unbounded(self):
        assert Card(2).intersect(Card(0, 7)) == Card(2, 7)

    def test_both_unbounded(self):
        merged = Card(2).intersect(Card(5))
        assert merged == Card(5)
        assert merged.unbounded

    def test_commutative(self):
        a, b = Card(1, 6), Card(4, 9)
        assert a.intersect(b) == b.intersect(a)

    def test_matches_paper_umax_vmin(self):
        # Definition 3.1: u_max = max of lower bounds, v_min = min of uppers.
        specs = [Card(1, 6), Card(2, 3)]
        merged = specs[0].intersect(specs[1])
        assert merged.lower == max(1, 2)
        assert merged.upper == min(6, 3)


class TestWidenAndRefines:
    def test_widen_hull(self):
        assert Card(1, 2).widen(Card(4, 6)) == Card(1, 6)

    def test_widen_with_unbounded(self):
        assert Card(1, 2).widen(Card(0)).unbounded

    def test_refines_subinterval(self):
        assert Card(2, 3).refines(Card(1, 6))

    def test_refines_reflexive(self):
        assert Card(1, 4).refines(Card(1, 4))

    def test_not_refines_wider(self):
        assert not Card(0, 9).refines(Card(1, 6))

    def test_unbounded_never_refines_bounded(self):
        assert not Card(1).refines(Card(1, 100))

    def test_anything_refines_unbounded_with_lower(self):
        assert Card(5, 7).refines(Card(2))

    def test_figure2_grad_student_refinement(self):
        # Grad_Student refines Student's Enrollment[enrolls] (1,6) to (2,3).
        assert Card(2, 3).refines(Card(1, 6))


class TestRenderingAndConstants:
    def test_str_bounded(self):
        assert str(Card(1, 2)) == "(1, 2)"

    def test_str_unbounded(self):
        assert str(Card(0)) == "(0, *)"

    def test_constants(self):
        assert ANY == Card(0)
        assert EXACTLY_ONE == Card(1, 1)
        assert AT_MOST_ONE == Card(0, 1)
        assert AT_LEAST_ONE == Card(1)

    def test_hashable(self):
        assert len({Card(1, 2), Card(1, 2), Card(1, 3)}) == 2
