"""Tests for the query service: routing, admission, caching, budgets,
the error→HTTP table, lifecycle, and the session thread-safety fix.

Most tests drive :meth:`ReproService.dispatch` directly — the application
logic is socket-free by design — with a smaller set of real-HTTP
round-trips over an ephemeral port and one subprocess test for the
SIGTERM drain path of ``repro serve``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core import errors as core_errors
from repro.core.errors import (
    BudgetExceeded,
    CarError,
    LinearSystemError,
    ParseError,
    ReasoningError,
    SchemaError,
    RegistryError,
    RegistryNotFound,
    RegistryQuotaError,
    RegistrySizeError,
    SemanticsError,
    SynthesisError,
)
from repro.engine.config import EngineConfig
from repro.engine.session import SchemaSession
from repro.service.admission import AdmissionController, AdmissionRejected
from repro.service.app import ReproService, ServiceConfig
from repro.service.cache import ResultCache
from repro.service.http import HTTP_STATUS_BY_EXIT, status_for_exit_code
from tests.wire import check_envelope, unwrap, unwrap_error

GOOD_SCHEMA = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""

DISJOINT_SCHEMA = "class A isa not B endclass class B endclass"


def _dispatch(service, method, path, body=None, headers=None):
    raw = b"" if body is None else json.dumps(body).encode()
    response = service.dispatch(method, path, headers or {}, raw)
    # every dispatch in the suite validates the one v1 envelope schema
    check_envelope(response.payload, status=response.status)
    return response


@pytest.fixture
def service():
    svc = ReproService(ServiceConfig(port=0))
    yield svc
    svc.drain(grace=1.0)


# ----------------------------------------------------------------------
# Routing and request validation (socket-free)
# ----------------------------------------------------------------------
class TestRouting:
    def test_unknown_path_is_404(self, service):
        response = _dispatch(service, "GET", "/nope")
        assert response.status == 404
        assert response.payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405_with_allow(self, service):
        response = _dispatch(service, "GET", "/v1/satisfiable")
        assert response.status == 405
        assert ("Allow", "POST") in response.headers

    def test_query_string_is_ignored_for_routing(self, service):
        response = _dispatch(service, "GET", "/healthz?verbose=1")
        assert response.status == 200

    def test_invalid_json_body_is_400(self, service):
        response = service.dispatch("POST", "/v1/satisfiable", {}, b"{oops")
        assert response.status == 400

    def test_non_object_body_is_400(self, service):
        response = service.dispatch("POST", "/v1/satisfiable", {}, b"[1]")
        assert response.status == 400

    def test_missing_schema_key_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"formula": "A"})
        assert response.status == 422
        assert response.payload["error"]["code"] == "parse_error"

    def test_missing_formula_key_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA})
        assert response.status == 422

    def test_schema_parse_error_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": "class endclass", "formula": "A"})
        assert response.status == 422
        assert response.payload["error"]["sysexit"] == 65

    def test_unknown_class_is_400(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA, "class": "Nope"})
        assert response.status == 400
        assert response.payload["error"]["sysexit"] == 64

    def test_oversized_body_is_413(self):
        svc = ReproService(ServiceConfig(port=0, max_body_bytes=64))
        response = _dispatch(svc, "POST", "/v1/satisfiable",
                             {"schema": "x" * 100, "formula": "A"})
        assert response.status == 413
        assert response.payload["error"]["code"] == "payload_too_large"
        assert response.payload["error"]["sysexit"] == 77

    def test_every_response_carries_a_request_id(self, service):
        seen = set()
        for method, path, body in (
                ("GET", "/healthz", None),
                ("GET", "/metrics", None),
                ("POST", "/v1/satisfiable",
                 {"schema": DISJOINT_SCHEMA, "formula": "A"}),
                ("GET", "/nope", None)):
            response = _dispatch(service, method, path, body)
            assert response.payload["request_id"]
            seen.add(response.payload["request_id"])
        assert len(seen) == 4  # ids are fresh per request

    def test_bad_timeout_header_is_400(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA, "formula": "A"},
                             headers={"X-Repro-Timeout-Ms": "soon"})
        assert response.status == 400

    def test_nonpositive_steps_header_is_400(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA, "formula": "A"},
                             headers={"X-Repro-Max-Steps": "0"})
        assert response.status == 400


class TestSatisfiable:
    def test_verdict_true(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA,
                              "formula": "A and not B"})
        assert response.status == 200
        data = unwrap(response.payload)
        assert data["verdict"] is True
        assert data["cache"] == "miss"

    def test_verdict_false(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA,
                              "formula": "A and B"})
        assert response.status == 200
        assert response.payload["data"]["verdict"] is False

    def test_class_key_matches_cli_satisfiable(self, service, tmp_path):
        path = tmp_path / "schema.car"
        path.write_text(GOOD_SCHEMA)
        for name in ("Person", "Student", "Professor"):
            cli_exit = main(["satisfiable", str(path), name])
            response = _dispatch(service, "POST", "/v1/satisfiable",
                                 {"schema": GOOD_SCHEMA, "class": name})
            assert response.status == 200
            assert response.payload["data"]["verdict"] is (cli_exit == 0)

    def test_repeat_query_hits_the_result_cache(self, service):
        body = {"schema": DISJOINT_SCHEMA, "formula": "A"}
        first = _dispatch(service, "POST", "/v1/satisfiable", body)
        second = _dispatch(service, "POST", "/v1/satisfiable", body)
        assert first.payload["data"]["cache"] == "miss"
        assert second.payload["data"]["cache"] == "hit"
        assert (second.payload["data"]["verdict"]
                == first.payload["data"]["verdict"])
        assert service.cache.stats().hits == 1

    def test_reordered_schema_shares_a_cache_entry(self, service):
        reordered = "class B endclass class A isa not B endclass"
        first = _dispatch(service, "POST", "/v1/satisfiable",
                          {"schema": DISJOINT_SCHEMA, "formula": "A"})
        second = _dispatch(service, "POST", "/v1/satisfiable",
                           {"schema": reordered, "formula": "A"})
        assert second.payload["data"]["cache"] == "hit"
        assert (first.payload["data"]["schema_fingerprint"]
                == second.payload["data"]["schema_fingerprint"])

    def test_errors_are_not_cached(self, service):
        body = {"schema": DISJOINT_SCHEMA, "class": "Nope"}
        for _ in range(2):
            response = _dispatch(service, "POST", "/v1/satisfiable", body)
            assert response.status == 400
        assert service.cache.stats().size == 0


class TestClassify:
    def test_subsumptions_match_cli(self, service, tmp_path):
        response = _dispatch(service, "POST", "/v1/classify",
                             {"schema": GOOD_SCHEMA})
        assert response.status == 200
        assert ["Student", "Person"] in \
            response.payload["data"]["subsumptions"]

    def test_parse_error_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/classify",
                             {"schema": "class endclass"})
        assert response.status == 422


class TestBatch:
    def test_batch_outcomes_in_order(self, service):
        response = _dispatch(service, "POST", "/v1/batch", {"queries": [
            {"schema": DISJOINT_SCHEMA, "formula": "A"},
            {"schema": DISJOINT_SCHEMA, "formula": "A and B"},
            {"schema": "class C isa not C endclass", "formula": "C"},
        ]})
        assert response.status == 200
        assert response.payload["data"]["summary"] == {
            "total": 3, "ok": 3, "timed_out": 0, "failed": 0}
        verdicts = [o["verdict"]
                    for o in response.payload["data"]["outcomes"]]
        assert verdicts == [True, False, False]

    def test_bad_query_is_isolated_not_fatal(self, service):
        response = _dispatch(service, "POST", "/v1/batch", {"queries": [
            {"schema": "class endclass", "formula": "A"},
            {"schema": DISJOINT_SCHEMA, "formula": "A"},
        ]})
        assert response.status == 200
        assert response.payload["data"]["summary"]["failed"] == 1
        assert response.payload["data"]["summary"]["ok"] == 1

    def test_missing_queries_key_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/batch", {"batch": []})
        assert response.status == 422

    def test_bad_mode_is_422(self, service):
        response = _dispatch(service, "POST", "/v1/batch",
                             {"queries": [], "mode": "warp"})
        assert response.status == 422

    def test_oversized_batch_is_413(self):
        svc = ReproService(ServiceConfig(port=0, max_batch_queries=2))
        response = _dispatch(svc, "POST", "/v1/batch", {"queries": [
            {"schema": DISJOINT_SCHEMA, "formula": "A"}] * 3})
        assert response.status == 413


class TestIntrospection:
    def test_healthz(self, service):
        response = _dispatch(service, "GET", "/healthz")
        assert response.status == 200
        assert response.payload["data"]["status"] == "ok"

    def test_readyz_flips_on_drain(self, service):
        service._ready.set()
        assert _dispatch(service, "GET", "/readyz").status == 200
        service._draining.set()
        response = _dispatch(service, "GET", "/readyz")
        assert response.status == 503
        assert response.payload["error"]["code"] == "draining"

    def test_post_while_draining_is_503_with_retry_after(self, service):
        service._draining.set()
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             {"schema": DISJOINT_SCHEMA, "formula": "A"})
        assert response.status == 503
        assert ("Retry-After", "1") in response.headers

    def test_metrics_exposes_every_subsystem(self, service):
        _dispatch(service, "POST", "/v1/satisfiable",
                  {"schema": DISJOINT_SCHEMA, "formula": "A"})
        response = _dispatch(service, "GET", "/metrics")
        assert response.status == 200
        data = unwrap(response.payload)
        assert data["admission"]["admitted"] == 1
        assert data["result_cache"]["misses"] == 1
        assert data["session"]["misses"] == 1
        assert data["counters"]["service.requests"] >= 1
        assert data["counters"]["session.cache_misses"] == 1
        assert data["latency"]["count"] >= 1
        assert data["latency"]["p99_ms"] >= data["latency"]["p50_ms"]

    def test_version_reports_every_schema_version(self, service):
        response = _dispatch(service, "GET", "/v1/version")
        assert response.status == 200
        data = unwrap(response.payload)
        assert data["api_version"] == 1
        assert {"artifact_schema_version", "trace_schema_version",
                "stats_schema_version", "lp_backend"} <= set(data)

    def test_version_reports_backend_identity(self, service):
        """Clients audit the solver in use via the version envelope."""
        data = unwrap(_dispatch(service, "GET", "/v1/version").payload)
        backend = data["lp_backend"]
        assert backend["spec"] == "auto"
        assert backend["name"] == "auto"
        capabilities = backend["capabilities"]
        assert capabilities["closed_form"] is True
        assert capabilities["sparse"] is True
        assert set(capabilities) == {"arithmetic", "sparse", "closed_form",
                                     "degeneracy"}


# ----------------------------------------------------------------------
# Budgets: headers, clamping, 504 with partial stats
# ----------------------------------------------------------------------
def _exptime_query():
    from repro.parser.printer import render_schema
    from repro.reductions import machine_to_schema, parity_machine

    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    return {"schema": render_schema(reduction.schema),
            "formula": str(reduction.target)}


class TestBudgets:
    def test_header_clamped_by_server_cap(self):
        svc = ReproService(ServiceConfig(port=0, max_timeout_ms=100))
        deadline, steps = svc._budget_from({"X-Repro-Timeout-Ms": "60000"})
        assert deadline == 0.1 and steps is None

    def test_server_default_applies_without_header(self):
        svc = ReproService(ServiceConfig(port=0, default_timeout_ms=250,
                                         default_max_steps=10))
        deadline, steps = svc._budget_from({})
        assert deadline == 0.25 and steps == 10

    def test_step_budget_trips_504(self, service):
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             _exptime_query(),
                             headers={"X-Repro-Max-Steps": "5"})
        assert response.status == 504
        error = unwrap_error(response.payload)
        assert error["sysexit"] == 75
        assert error["steps"] >= 1

    def test_deadline_trips_504_fast_with_partial_stats(self, service):
        start = time.perf_counter()
        response = _dispatch(service, "POST", "/v1/satisfiable",
                             _exptime_query(),
                             headers={"X-Repro-Timeout-Ms": "50"})
        wall = time.perf_counter() - start
        assert response.status == 504
        error = unwrap_error(response.payload)
        assert error["code"] == "budget_exceeded"
        assert error["duration_s"] > 0
        assert wall < 2.0

    def test_classify_honors_the_budget(self, service):
        response = _dispatch(service, "POST", "/v1/classify",
                             _exptime_query(),
                             headers={"X-Repro-Timeout-Ms": "50"})
        assert response.status == 504

    def test_admission_queue_wait_is_charged_to_the_budget(self):
        """A request that waited ~its whole X-Repro-Timeout-Ms in the
        admission queue must not restart with a full budget: the wait is
        subtracted, so here it trips 504 immediately after admission."""
        svc = ReproService(ServiceConfig(port=0, max_inflight=1,
                                         queue_depth=4,
                                         queue_timeout_s=10.0))
        svc.admission.acquire()  # hold the only slot
        result = {}

        def queued():
            result["response"] = _dispatch(
                svc, "POST", "/v1/satisfiable",
                {"schema": DISJOINT_SCHEMA, "formula": "A"},
                headers={"X-Repro-Timeout-Ms": "100"})

        thread = threading.Thread(target=queued)
        thread.start()
        time.sleep(0.4)  # well past the 100ms the client budgeted
        svc.admission.release()
        thread.join(timeout=10)
        response = result["response"]
        assert response.status == 504
        error = unwrap_error(response.payload)
        assert error["code"] == "budget_exceeded"
        assert "admission queue" in error["message"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=2, max_queue=0)
        controller.acquire()
        controller.acquire()
        with pytest.raises(AdmissionRejected) as info:
            controller.acquire()
        assert info.value.reason == "queue_full"
        assert info.value.retry_after >= 1
        controller.release()
        controller.acquire()  # a freed slot admits again

    def test_queued_request_gets_the_freed_slot(self):
        controller = AdmissionController(max_inflight=1, max_queue=1,
                                         queue_timeout=5.0)
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        controller.release()
        thread.join(timeout=5.0)
        assert admitted.is_set()

    def test_queue_wait_times_out(self):
        controller = AdmissionController(max_inflight=1, max_queue=1,
                                         queue_timeout=0.05)
        controller.acquire()
        with pytest.raises(AdmissionRejected) as info:
            controller.acquire()
        assert info.value.reason == "timeout"

    def test_stats_snapshot(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.acquire()
        with pytest.raises(AdmissionRejected):
            controller.acquire()
        stats = controller.stats()
        assert stats.admitted == 1
        assert stats.rejected == 1
        assert stats.inflight == 1
        assert stats.peak_inflight == 1
        controller.release()
        assert controller.wait_idle(timeout=1.0)

    def test_dispatch_returns_429_when_saturated(self):
        svc = ReproService(ServiceConfig(port=0, max_inflight=1,
                                         queue_depth=0))
        svc.admission.acquire()  # simulate a stuck in-flight request
        try:
            response = _dispatch(svc, "POST", "/v1/satisfiable",
                                 {"schema": DISJOINT_SCHEMA,
                                  "formula": "A"})
        finally:
            svc.admission.release()
        assert response.status == 429
        assert any(name == "Retry-After" for name, _ in response.headers)
        # GET endpoints bypass admission: health stays observable under load
        assert _dispatch(svc, "GET", "/healthz").status == 200


# ----------------------------------------------------------------------
# The result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(limit=2)
        cache.put("f1", "A", True)
        cache.put("f2", "A", False)
        assert cache.get("f1", "A") is True   # f1 now most recent
        cache.put("f3", "A", True)            # evicts f2
        assert cache.get("f2", "A") is None
        assert cache.get("f1", "A") is True
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2
        assert stats.hits == 2 and stats.misses == 1

    def test_false_verdicts_are_cached(self):
        cache = ResultCache()
        cache.put("f", "A and B", False)
        assert cache.get("f", "A and B") is False

    def test_concurrent_access_is_safe(self):
        cache = ResultCache(limit=8)
        failures = []

        def hammer(seed):
            try:
                for i in range(300):
                    key = f"fp{(seed + i) % 16}"
                    cache.put(key, "A", True)
                    cache.get(key, "A")
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(cache) <= 8


# ----------------------------------------------------------------------
# The error table: CLI exit codes and HTTP statuses cannot drift
# ----------------------------------------------------------------------
#: (error class, stable sysexit, HTTP status) — one row per exit code of
#: the core/errors.py hierarchy, pinning both renderings of the table.
ERROR_TABLE = [
    (ParseError, 65, 422),
    (RegistryError, 65, 422),
    (RegistryNotFound, 67, 404),
    (RegistryQuotaError, 69, 429),
    (RegistrySizeError, 77, 413),
    (SchemaError, 65, 422),
    (SemanticsError, 65, 422),
    (ReasoningError, 64, 400),
    (BudgetExceeded, 75, 504),
    (SynthesisError, 73, 500),
    (LinearSystemError, 70, 500),
    (CarError, 70, 500),
]


class TestErrorTable:
    def test_every_error_class_is_covered(self):
        covered = {cls for cls, _, _ in ERROR_TABLE}
        public = {getattr(core_errors, name) for name in core_errors.__all__}
        assert public == covered

    @pytest.mark.parametrize("error_class,exit_code,http_status",
                             ERROR_TABLE)
    def test_cli_exit_and_service_status_agree(
            self, error_class, exit_code, http_status, tmp_path,
            monkeypatch, capsys):
        assert error_class.exit_code == exit_code
        assert status_for_exit_code(error_class.exit_code) == http_status

        # The CLI renders the same table as a process exit code: raise the
        # error from inside a handler and assert the mapped exit status.
        def explode(self, schema):
            raise error_class("synthetic failure")

        monkeypatch.setattr(SchemaSession, "reasoner", explode)
        path = tmp_path / "schema.car"
        path.write_text(DISJOINT_SCHEMA)
        assert main(["satisfiable", str(path), "A"]) == exit_code
        assert "synthetic failure" in capsys.readouterr().err

    def test_every_mapped_exit_code_has_a_status(self):
        for _, exit_code, http_status in ERROR_TABLE:
            assert HTTP_STATUS_BY_EXIT[exit_code] == http_status
        assert status_for_exit_code(99) == 500  # unknown codes degrade


# ----------------------------------------------------------------------
# SchemaSession: context manager + concurrent LRU (satellites)
# ----------------------------------------------------------------------
class TestSessionContextManager:
    def test_with_block_closes_the_executor(self):
        with SchemaSession() as session:
            outcomes = session.run_batch(
                [{"schema": DISJOINT_SCHEMA, "formula": "A"}], jobs=1)
            assert outcomes[0].verdict is True
            assert session._executor is not None
        assert session._executor is None

    def test_enter_returns_the_session(self):
        session = SchemaSession()
        with session as entered:
            assert entered is session


class TestSessionThreadSafety:
    def test_concurrent_lru_access_never_crashes(self):
        """Regression: unlocked get/move_to_end racing popitem KeyErrors.

        A tiny LRU bound plus more schemas than slots maximizes eviction
        pressure while many threads look up and insert concurrently.
        """
        session = SchemaSession(EngineConfig(session_cache_limit=2))
        schemas = [
            f"class C{i} isa not D{i} endclass class D{i} endclass"
            for i in range(8)
        ]
        failures = []
        rounds = 40

        def hammer(seed):
            try:
                for i in range(rounds):
                    schema = schemas[(seed * 7 + i) % len(schemas)]
                    session.reasoner(schema)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        info = session.cache_info()
        assert info.hits + info.misses == 8 * rounds
        assert info.size <= 2

    def test_concurrent_queries_agree_with_serial(self):
        from repro.parser.parser import parse_formula

        session = SchemaSession()
        formulas = [parse_formula(text) for text in (
            "A", "B", "A and B", "A and not B", "not A and B")]
        serial = [SchemaSession().check_many(DISJOINT_SCHEMA, [f])[0]
                  for f in formulas]
        results: dict[int, bool] = {}

        def query(index):
            results[index] = session.check_many(
                DISJOINT_SCHEMA, [formulas[index]])[0]

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(len(formulas))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [results[i] for i in range(len(formulas))] == serial


# ----------------------------------------------------------------------
# Real HTTP round-trips over an ephemeral port
# ----------------------------------------------------------------------
def _http(base, method, path, body=None, headers=None, timeout=30):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base + path, data=data,
                                     headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="class")
def live_service():
    with ReproService(ServiceConfig(port=0, max_inflight=4)) as svc:
        yield svc, f"http://{svc.host}:{svc.port}"


class TestLiveHttp:
    def test_health_and_ready(self, live_service):
        _, base = live_service
        assert _http(base, "GET", "/healthz")[0] == 200
        assert _http(base, "GET", "/readyz")[0] == 200

    def test_request_id_header_matches_body(self, live_service):
        _, base = live_service
        with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
            payload = json.loads(resp.read())
            assert (resp.headers["X-Repro-Request-Id"]
                    == payload["request_id"])

    def test_concurrent_satisfiable_matches_serial_cli(self, live_service):
        _, base = live_service
        cases = [("A", True), ("B", True), ("A and B", False),
                 ("A and not B", True), ("not A and B", True)]
        results: dict[str, tuple[int, dict]] = {}

        def ask(formula):
            results[formula] = _http(
                base, "POST", "/v1/satisfiable",
                {"schema": DISJOINT_SCHEMA, "formula": formula})

        threads = [threading.Thread(target=ask, args=(f,))
                   for f, _ in cases for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for formula, expected in cases:
            status, payload = results[formula]
            assert status == 200
            assert unwrap(payload, status=status)["verdict"] is expected

    def test_exptime_504_does_not_disturb_other_requests(self,
                                                         live_service):
        _, base = live_service
        hard = _exptime_query()
        outcome: dict = {}

        def slow():
            outcome["hard"] = _http(base, "POST", "/v1/satisfiable", hard,
                                    headers={"X-Repro-Timeout-Ms": "50"})

        thread = threading.Thread(target=slow)
        start = time.perf_counter()
        thread.start()
        easy_status, easy_payload = _http(
            base, "POST", "/v1/satisfiable",
            {"schema": DISJOINT_SCHEMA, "formula": "A"})
        thread.join(timeout=10)
        wall = time.perf_counter() - start
        assert easy_status == 200
        assert unwrap(easy_payload)["verdict"] is True
        status, payload = outcome["hard"]
        assert status == 504
        assert unwrap_error(payload, status=status)["sysexit"] == 75
        assert wall < 5.0

    def test_saturated_service_returns_429_not_a_crash(self, live_service):
        svc, base = live_service
        # An uncached formula: warm hits would legitimately bypass
        # admission via the event-loop fast path and answer 200.
        cold = {"schema": DISJOINT_SCHEMA, "formula": "B and (A or not A)"}
        # Hold every slot so the next POST overflows the (empty) queue.
        for _ in range(svc.config.max_inflight):
            svc.admission.acquire()
        # Fill the wait queue too, via a zero-patience controller state:
        # queue_depth waiters would block, so shrink the window instead.
        try:
            saved = svc.admission.max_queue, svc.admission.queue_timeout
            svc.admission.max_queue = 0
            status, payload = _http(base, "POST", "/v1/satisfiable", cold)
        finally:
            svc.admission.max_queue, svc.admission.queue_timeout = saved
            for _ in range(svc.config.max_inflight):
                svc.admission.release()
        assert status == 429
        error = unwrap_error(payload, status=status)
        assert error["code"] == "admission_rejected"
        assert error["retry_after_ms"] >= 1000
        # and the service still answers once slots free up
        status, payload = _http(base, "POST", "/v1/satisfiable",
                                {"schema": DISJOINT_SCHEMA, "formula": "A"})
        assert status == 200

    def test_batch_round_trip(self, live_service):
        _, base = live_service
        status, payload = _http(base, "POST", "/v1/batch", {"queries": [
            {"schema": DISJOINT_SCHEMA, "formula": "A"},
            {"schema": DISJOINT_SCHEMA, "formula": "A and B"},
        ]})
        assert status == 200
        assert unwrap(payload, status=status)["summary"]["ok"] == 2

    def test_metrics_round_trip(self, live_service):
        _, base = live_service
        status, payload = _http(base, "GET", "/metrics")
        assert status == 200
        data = unwrap(payload, status=status)
        assert {"admission", "result_cache", "session", "counters",
                "gauges", "uptime_s", "latency"} <= set(data)
        assert data["counters"]["service.connections_opened"] >= 1

    def test_warm_hit_takes_the_event_loop_fast_path(self, live_service):
        svc, base = live_service
        body = {"schema": DISJOINT_SCHEMA, "formula": "not A and not B"}
        before = svc.tracer.counters.get("service.fast_path_hits", 0)
        first = _http(base, "POST", "/v1/satisfiable", body)
        assert unwrap(first[1])["cache"] == "miss"
        second = _http(base, "POST", "/v1/satisfiable", body)
        assert unwrap(second[1])["cache"] == "hit"
        after = svc.tracer.counters.get("service.fast_path_hits", 0)
        assert after == before + 1


# ----------------------------------------------------------------------
# The serve subcommand: startup banner and graceful SIGTERM drain
# ----------------------------------------------------------------------
class TestServeCommand:
    def test_sigterm_drains_and_exits_zero(self):
        src = str((os.path.dirname(os.path.dirname(__file__))) + "/src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            base = f"http://{match.group(1)}:{match.group(2)}"
            status, payload = _http(base, "POST", "/v1/satisfiable",
                                    {"schema": DISJOINT_SCHEMA,
                                     "formula": "A"})
            assert status == 200
            assert unwrap(payload, status=status)["verdict"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
            assert "shutdown complete" in proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

    def test_serve_is_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "serve" in capsys.readouterr().out
