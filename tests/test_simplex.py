"""Unit tests for the exact rational simplex, cross-checked against scipy."""

import random
from fractions import Fraction

import pytest

from repro.core.errors import LinearSystemError
from repro.linear.simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, solve_lp


class TestBasicSolves:
    def test_trivial_maximum(self):
        # max x s.t. x ≤ 5
        result = solve_lp([1], [[1]], [5])
        assert result.status == OPTIMAL
        assert result.objective == 5
        assert result.solution == (Fraction(5),)

    def test_two_variable_vertex(self):
        # max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6  → vertex (8/5, 6/5).
        result = solve_lp([1, 1], [[1, 2], [3, 1]], [4, 6])
        assert result.status == OPTIMAL
        assert result.objective == Fraction(14, 5)
        assert result.solution == (Fraction(8, 5), Fraction(6, 5))

    def test_minimization(self):
        # min x + y s.t. -x - y ≤ -2 (i.e. x + y ≥ 2).
        result = solve_lp([1, 1], [[-1, -1]], [-2], maximize=False)
        assert result.status == OPTIMAL
        assert result.objective == 2

    def test_unbounded(self):
        result = solve_lp([1], [[-1]], [0])
        assert result.status == UNBOUNDED

    def test_infeasible(self):
        # x ≤ -1 with x ≥ 0.
        result = solve_lp([1], [[1]], [-1])
        assert result.status == INFEASIBLE

    def test_degenerate_zero_objective(self):
        result = solve_lp([0, 0], [[1, 1]], [3])
        assert result.status == OPTIMAL
        assert result.objective == 0

    def test_equality_via_two_inequalities(self):
        # x = 2y through x - 2y ≤ 0 and 2y - x ≤ 0, maximize x with x ≤ 10.
        result = solve_lp([1, 0], [[1, -2], [-1, 2], [1, 0]], [0, 0, 10])
        assert result.status == OPTIMAL
        assert result.solution[0] == 10
        assert result.solution[1] == 5

    def test_fractional_data(self):
        result = solve_lp([Fraction(1, 3)], [[Fraction(2, 7)]], [Fraction(1, 2)])
        assert result.status == OPTIMAL
        assert result.solution[0] == Fraction(7, 4)

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(LinearSystemError):
            solve_lp([1, 1], [[1]], [1])

    def test_rhs_length_mismatch_rejected(self):
        with pytest.raises(LinearSystemError):
            solve_lp([1], [[1]], [1, 2])


class TestHomogeneousSystems:
    """The shape Ψ_S produces: A x ≤ 0, feasible at the origin."""

    def test_origin_always_feasible(self):
        result = solve_lp([0, 0], [[1, -1], [-1, 1]], [0, 0])
        assert result.status == OPTIMAL

    def test_ratio_conflict_forces_zero(self):
        # x = y and x = 3y (cone form) plus box x ≤ 1: only x = y = 0.
        rows = [[1, -1], [-1, 1], [1, -3], [-1, 3], [1, 0], [0, 1]]
        rhs = [0, 0, 0, 0, 1, 1]
        result = solve_lp([1, 1], rows, rhs)
        assert result.status == OPTIMAL
        assert result.objective == 0

    def test_consistent_ratio_scales(self):
        # x = 2y with x ≤ 1: optimum x = 1, y = 1/2.
        rows = [[1, -2], [-1, 2], [1, 0]]
        result = solve_lp([1, 1], rows, [0, 0, 1])
        assert result.status == OPTIMAL
        assert result.solution == (Fraction(1), Fraction(1, 2))


class TestAgainstScipy:
    """Randomized differential test against scipy's HiGHS solver."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_bounded_lps(self, seed):
        scipy_linprog = pytest.importorskip("scipy.optimize").linprog
        rng = random.Random(seed)
        n = rng.randint(1, 5)
        m = rng.randint(1, 6)
        c = [rng.randint(-4, 4) for _ in range(n)]
        a_ub = [[rng.randint(-3, 3) for _ in range(n)] for _ in range(m)]
        b_ub = [rng.randint(-2, 6) for _ in range(m)]
        # Add a box to keep the problem bounded.
        for j in range(n):
            row = [0] * n
            row[j] = 1
            a_ub.append(row)
            b_ub.append(10)

        exact = solve_lp(c, a_ub, b_ub, maximize=True)
        reference = scipy_linprog([-v for v in c], A_ub=a_ub, b_ub=b_ub,
                                  bounds=[(0, None)] * n, method="highs")
        if exact.status == INFEASIBLE:
            assert not reference.success
        else:
            assert exact.status == OPTIMAL
            assert reference.success
            assert abs(float(exact.objective) + reference.fun) < 1e-6
