"""Unit tests for participation bounds and role-constraint implication."""

import pytest

from repro.core.cardinality import Card, INFINITY
from repro.core.errors import ReasoningError
from repro.core.formulas import Lit
from repro.parser.parser import parse_schema
from repro.reasoner.implication import (
    implied_participation_bounds,
    implied_role_constraint,
)
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.paper_schemas import figure2_schema


@pytest.fixture(scope="module")
def figure2_reasoner():
    return Reasoner(figure2_schema())


class TestImpliedParticipationBounds:
    def test_figure2_student_enrolment(self, figure2_reasoner):
        bounds = implied_participation_bounds(
            figure2_reasoner, "Student", "Enrollment", "enrolls")
        assert bounds == Card(1, 6)

    def test_figure2_grad_student_refinement(self, figure2_reasoner):
        bounds = implied_participation_bounds(
            figure2_reasoner, "Grad_Student", "Enrollment", "enrolls")
        assert bounds == Card(2, 3)

    def test_figure2_adv_course(self, figure2_reasoner):
        bounds = implied_participation_bounds(
            figure2_reasoner, "Adv_Course", "Enrollment", "enrolled_in")
        assert bounds == Card(5, 20)

    def test_unconstrained_role(self, figure2_reasoner):
        # Person participation in Exam[of] is unconstrained but possible.
        bounds = implied_participation_bounds(
            figure2_reasoner, "Student", "Exam", "of")
        assert bounds == Card(0, INFINITY)

    def test_impossible_participation_is_zero(self):
        reasoner = Reasoner(parse_schema("""
            class C isa not D endclass
            class D endclass
            relation R(u, v) constraints (u : D) endrelation
        """))
        bounds = implied_participation_bounds(reasoner, "C", "R", "u")
        assert bounds == Card(0, 0)

    def test_unknown_role_rejected(self, figure2_reasoner):
        with pytest.raises(ReasoningError):
            implied_participation_bounds(
                figure2_reasoner, "Student", "Enrollment", "nope")

    def test_unsatisfiable_class_returns_none(self):
        reasoner = Reasoner(parse_schema("""
            class Bad isa Good and not Good endclass
            relation R(u) endrelation
        """))
        assert implied_participation_bounds(reasoner, "Bad", "R", "u") is None


class TestImpliedRoleConstraint:
    def test_declared_constraint_implied(self, figure2_reasoner):
        assert implied_role_constraint(
            figure2_reasoner, "Enrollment", "enrolls", Lit("Student"))

    def test_derived_constraint(self, figure2_reasoner):
        # Every enroller is a Student, hence a Person and not a Professor.
        assert implied_role_constraint(
            figure2_reasoner, "Enrollment", "enrolls",
            Lit("Person") & ~Lit("Professor"))

    def test_non_implied_constraint(self, figure2_reasoner):
        assert not implied_role_constraint(
            figure2_reasoner, "Enrollment", "enrolls", Lit("Grad_Student"))

    def test_disjunctive_clause_propagation(self):
        # Tuples must satisfy (u : A) ∨ (v : B); neither side alone follows.
        reasoner = Reasoner(parse_schema("""
            class A endclass
            class B endclass
            relation R(u, v)
                constraints (u : A) or (v : B)
            endrelation
        """))
        assert not implied_role_constraint(reasoner, "R", "u", Lit("A"))
        assert not implied_role_constraint(reasoner, "R", "v", Lit("B"))

    def test_unknown_symbol_rejected(self, figure2_reasoner):
        with pytest.raises(ReasoningError):
            implied_role_constraint(
                figure2_reasoner, "Enrollment", "enrolls", Lit("Martian"))

    def test_unknown_role_rejected(self, figure2_reasoner):
        with pytest.raises(ReasoningError):
            implied_role_constraint(
                figure2_reasoner, "Enrollment", "nope", Lit("Student"))
