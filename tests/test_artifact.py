"""Precompiled pipeline artifacts: snapshot, disk cache, failure modes.

Three layers of coverage:

* the :class:`~repro.engine.artifact.CompiledSchema` snapshot itself —
  pickle round-trips, rehydration skips Phase 1, verdict equivalence
  against a freshly built pipeline (the differential acceptance bar);
* the :class:`~repro.engine.artifact.ArtifactCache` — hit/miss/stale
  counters, atomic writes, and the failure modes that must degrade to a
  rebuild (corrupt file, truncated pickle, version mismatch, config
  mismatch, concurrent writer racing a reader) — never a wrong verdict,
  never a crash;
* the integration surfaces — session miss path, executor payload
  shipping, ``repro compile`` and the ``--artifact-dir`` /
  ``--no-artifact-cache`` flags.
"""

import json
import pickle
import threading

import pytest

from repro.cli import main
from repro.engine import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCache,
    CompiledSchema,
    EngineConfig,
    Pipeline,
    SchemaSession,
    config_fingerprint,
    schema_fingerprint,
)
from repro.engine.artifact import default_artifact_dir
from repro.parser.parser import parse_schema
from repro.parser.printer import render_schema
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import adversarial_schema, random_schema

SCHEMA = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""


def fresh_cache(tmp_path, **config_kwargs):
    config = EngineConfig(artifact_dir=str(tmp_path / "cache"),
                          **config_kwargs)
    return config, ArtifactCache.from_config(config)


def compile_schema(source, config):
    return Pipeline(parse_schema(source), config).compile()


class TestCompiledSchema:
    def test_snapshot_fields_and_version(self, tmp_path):
        config, _ = fresh_cache(tmp_path)
        artifact = compile_schema(SCHEMA, config)
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION
        assert artifact.fingerprint == schema_fingerprint(SCHEMA)
        assert artifact.config_fingerprint == config_fingerprint(config)
        assert artifact.system.n_unknowns() > 0
        assert artifact.summary()["classes"] == 3

    def test_pickle_round_trip(self, tmp_path):
        config, _ = fresh_cache(tmp_path)
        artifact = compile_schema(SCHEMA, config)
        clone = pickle.loads(pickle.dumps(artifact))
        assert clone.fingerprint == artifact.fingerprint
        assert clone.system.size() == artifact.system.size()
        assert clone.expansion.compound_classes == \
            artifact.expansion.compound_classes

    def test_rehydrated_pipeline_skips_phase_one(self, tmp_path):
        config, _ = fresh_cache(tmp_path)
        artifact = compile_schema(SCHEMA, config)
        pipeline = Pipeline.from_artifact(artifact)
        assert pipeline.built_stages() == ("tables", "expansion", "system")
        # Only the support stage should run on first query.
        pipeline.support
        assert set(pipeline.timer.readings()) == {"support"}

    def test_trace_is_stripped_from_stored_config(self, tmp_path):
        from repro.obs.tracer import Tracer

        config, _ = fresh_cache(tmp_path, trace=Tracer())
        artifact = compile_schema(SCHEMA, config)
        assert artifact.config.trace is False
        pickle.dumps(artifact)  # a live tracer here would fail to pickle

    def test_config_fingerprint_tracks_enumeration_knobs_only(self):
        base = EngineConfig()
        assert config_fingerprint(base) == config_fingerprint(
            base.replace(lp_backend="exact", use_propagation=False,
                         merge_columns=False, session_cache_limit=5))
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(strategy="naive"))
        assert config_fingerprint(base) != config_fingerprint(
            base.replace(size_limit=100))

    def test_from_artifact_rejects_mismatched_config(self, tmp_path):
        from repro.core.errors import ReasoningError

        config, _ = fresh_cache(tmp_path)
        artifact = compile_schema(SCHEMA, config)
        with pytest.raises(ReasoningError):
            Pipeline.from_artifact(artifact, config.replace(strategy="naive"))
        with pytest.raises(ReasoningError):
            Pipeline.from_artifact("not an artifact")


class TestDifferentialEquivalence:
    """Artifact-rehydrated pipelines answer exactly like fresh ones."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schema_verdicts_identical(self, tmp_path, seed):
        config, cache = fresh_cache(tmp_path)
        schema = random_schema(6, seed=seed)
        fresh = Reasoner(schema, config=config)
        cache.store(fresh.pipeline.compile())
        loaded = cache.load(schema_fingerprint(schema), config)
        assert loaded is not None
        rehydrated = Reasoner.from_pipeline(Pipeline.from_artifact(loaded))
        for name in sorted(schema.class_symbols):
            assert (fresh.is_satisfiable(name)
                    == rehydrated.is_satisfiable(name)), name

    def test_formula_queries_including_augmented_path(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        schema = adversarial_schema(10, seed=3)
        fresh = Reasoner(schema, config=config)
        cache.store(fresh.pipeline.compile())
        loaded = cache.load(schema_fingerprint(schema), config)
        rehydrated = Reasoner.from_pipeline(Pipeline.from_artifact(loaded))
        names = sorted(schema.class_symbols)
        # Conjunctions across classes exercise the cross-cluster
        # (augmented) machinery on top of the rehydrated stages.
        from repro.parser.parser import parse_formula

        formulas = [names[0], f"{names[0]} and {names[1]}",
                    f"{names[0]} and not {names[-1]}"]
        for source in formulas:
            formula = parse_formula(source)
            assert (fresh.is_formula_satisfiable(formula)
                    == rehydrated.is_formula_satisfiable(formula)), source

    def test_stats_sizes_identical(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        fresh = Reasoner(parse_schema(SCHEMA), config=config)
        cache.store(fresh.pipeline.compile())
        loaded = cache.load(schema_fingerprint(SCHEMA), config)
        rehydrated = Reasoner.from_pipeline(Pipeline.from_artifact(loaded))
        a, b = fresh.stats(), rehydrated.stats()
        assert (a.compound_classes, a.psi_unknowns, a.psi_constraints,
                a.supported) == (b.compound_classes, b.psi_unknowns,
                                 b.psi_constraints, b.supported)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        assert cache.load(fingerprint, config) is None
        assert cache.store(compile_schema(SCHEMA, config)) is True
        assert cache.load(fingerprint, config) is not None

    def test_counters(self, tmp_path):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        cache = ArtifactCache.from_config(config, tracer=tracer)
        fingerprint = schema_fingerprint(SCHEMA)
        cache.load(fingerprint, config)
        cache.store(compile_schema(SCHEMA, config))
        cache.load(fingerprint, config)
        assert tracer.counter("artifact.miss") == 1
        assert tracer.counter("artifact.save") == 1
        assert tracer.counter("artifact.hit") == 1
        assert tracer.counter("artifact.load") == 1

    def test_corrupted_file_falls_back_to_rebuild(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        cache.store(compile_schema(SCHEMA, config))
        path = cache.path_for(fingerprint, config_fingerprint(config))
        path.write_bytes(b"this is not a pickle")
        assert cache.load(fingerprint, config) is None
        assert not path.exists()  # the corrupt entry was discarded

    def test_truncated_pickle_falls_back_to_rebuild(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        cache.store(compile_schema(SCHEMA, config))
        path = cache.path_for(fingerprint, config_fingerprint(config))
        path.write_bytes(path.read_bytes()[:40])
        assert cache.load(fingerprint, config) is None

    def test_version_mismatch_is_stale(self, tmp_path, monkeypatch):
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        artifact = compile_schema(SCHEMA, config)
        cache.store(artifact)
        # A future engine bumps the version: the old file must read as
        # stale, not load into the new engine.
        monkeypatch.setattr("repro.engine.artifact.ARTIFACT_SCHEMA_VERSION",
                            ARTIFACT_SCHEMA_VERSION + 1)
        assert cache.load(fingerprint, config) is None
        # And the bumped-version engine writes alongside without clashing.
        path_new = cache.path_for(fingerprint, config_fingerprint(config))
        assert f".v{ARTIFACT_SCHEMA_VERSION + 1}." in path_new.name

    def test_config_mismatch_is_a_miss(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        cache.store(compile_schema(SCHEMA, config))
        naive = config.replace(strategy="naive")
        # Different enumeration knobs key a different file — no crossload.
        assert cache.load(fingerprint, naive) is None
        assert cache.load(fingerprint, config) is not None

    def test_wrong_fingerprint_inside_file_is_stale(self, tmp_path):
        config, cache = fresh_cache(tmp_path)
        artifact = compile_schema(SCHEMA, config)
        other = schema_fingerprint("class Z endclass")
        # Simulate a renamed/misplaced file: content disagrees with key.
        path = cache.path_for(other, config_fingerprint(config))
        cache.directory.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(artifact))
        assert cache.load(other, config) is None

    def test_concurrent_writer_racing_readers(self, tmp_path):
        """Readers hammering the key while a writer stores repeatedly see
        either a miss or a complete artifact — never an exception."""
        config, cache = fresh_cache(tmp_path)
        fingerprint = schema_fingerprint(SCHEMA)
        artifact = compile_schema(SCHEMA, config)
        failures: list = []
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                cache.store(artifact)

        def reader():
            for _ in range(300):
                try:
                    loaded = cache.load(fingerprint, config)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    failures.append(exc)
                    return
                if loaded is not None \
                        and loaded.fingerprint != fingerprint:
                    failures.append("wrong artifact")
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)]
        for thread in threads[1:]:
            thread.start()
        threads[0].start()
        for thread in threads[1:]:
            thread.join()
        stop.set()
        threads[0].join()
        assert not failures

    def test_store_failure_is_quiet(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "blocked"))
        cache = ArtifactCache.from_config(config)
        (tmp_path / "blocked").write_text("a file, not a directory")
        assert cache.store(compile_schema(SCHEMA, config)) is False

    def test_from_config_disabled_by_default(self):
        assert ArtifactCache.from_config(EngineConfig()) is None

    def test_default_artifact_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", "/tmp/somewhere")
        assert default_artifact_dir() == "/tmp/somewhere"
        monkeypatch.delenv("REPRO_ARTIFACT_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_artifact_dir() == "/tmp/xdg/repro"


class TestSessionIntegration:
    def test_miss_persists_and_second_session_rehydrates(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"),
                              trace=True)
        with SchemaSession(config) as session:
            assert session.satisfiable(SCHEMA, "Student") is True
            counters = session.last_trace().counters
            assert counters.get("artifact.save") == 1
            assert counters.get("artifact.hit") is None
        with SchemaSession(EngineConfig(
                artifact_dir=str(tmp_path / "cache"),
                trace=True)) as session:
            assert session.satisfiable(SCHEMA, "Student") is True
            counters = session.last_trace().counters
            assert counters.get("artifact.hit") == 1
            # Rehydration pre-populates Phase 1/2; no expansion span ran.
            assert session.last_trace().span_count("pipeline.expansion") == 0

    def test_lazy_reasoner_does_not_persist_until_system_builds(
            self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"),
                              trace=True)
        with SchemaSession(config) as session:
            session.reasoner(SCHEMA)  # lazy: no stage built yet
            assert session.last_trace().counter("artifact.save") == 0

    def test_peek_compiled(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        fingerprint = schema_fingerprint(SCHEMA)
        with SchemaSession(config) as session:
            assert session.peek_compiled(fingerprint) is None  # not cached
            session.reasoner(SCHEMA)
            assert session.peek_compiled(fingerprint) is None  # still lazy
            session.satisfiable(SCHEMA, "Student")
            snapshot = session.peek_compiled(fingerprint)
            assert isinstance(snapshot, CompiledSchema)
            assert snapshot.fingerprint == fingerprint

    def test_augmented_queries_do_not_pollute_the_cache(self, tmp_path):
        """Cross-cluster formula queries build augmented pipelines; only
        the base schema's snapshot may be persisted."""
        from repro.parser.parser import parse_formula

        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        schema = adversarial_schema(10, seed=1)
        names = sorted(schema.class_symbols)
        with SchemaSession(config) as session:
            session.check_many(render_schema(schema),
                               [parse_formula(f"{names[0]} and {names[1]}")])
        cache_dir = tmp_path / "cache"
        stored = list(cache_dir.glob("*.pkl"))
        assert len(stored) == 1
        assert stored[0].name.startswith(schema_fingerprint(schema))

    def test_run_batch_modes_agree_with_artifacts_enabled(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        queries = []
        for index in range(3):
            schema = adversarial_schema(9, seed=index)
            queries.append({"schema": render_schema(schema),
                            "formula": sorted(schema.class_symbols)[0]})
        with SchemaSession(config) as session:
            serial = session.run_batch(queries, jobs=1, mode="serial")
            threaded = session.run_batch(queries, jobs=2, mode="thread")
            processed = session.run_batch(queries, jobs=2, mode="process")
        assert ([o.verdict for o in serial]
                == [o.verdict for o in threaded]
                == [o.verdict for o in processed])
        assert all(o.ok for o in serial + threaded + processed)

    def test_executor_ships_warm_artifact_to_payload(self, tmp_path):
        from repro.engine.executor import BatchExecutor

        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        fingerprint = schema_fingerprint(SCHEMA)
        with SchemaSession(config) as session:
            session.satisfiable(SCHEMA, "Student")  # warm the pipeline
            executor = BatchExecutor(config, jobs=2, mode="process")
            payloads = executor._shard(
                [{"schema": SCHEMA, "formula": "Student"}], {}, None, None,
                True, session)
            assert len(payloads) == 1
            assert isinstance(payloads[0].artifact, CompiledSchema)
            assert payloads[0].artifact.fingerprint == fingerprint
            # Serial destinations never pay the compile/pickle cost.
            serial = BatchExecutor(config, jobs=1, mode="serial")
            payloads = serial._shard(
                [{"schema": SCHEMA, "formula": "Student"}], {}, None, None,
                True, session)
            assert payloads[0].artifact is None

    def test_corrupt_cache_entry_never_changes_session_verdict(
            self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path / "cache"))
        fingerprint = schema_fingerprint(SCHEMA)
        with SchemaSession(config) as session:
            expected = session.satisfiable(SCHEMA, "Student")
        cache = ArtifactCache.from_config(config)
        path = cache.path_for(fingerprint, config_fingerprint(config))
        path.write_bytes(b"\x80garbage")
        with SchemaSession(config) as session:
            assert session.satisfiable(SCHEMA, "Student") == expected


class TestCompileCommand:
    @pytest.fixture
    def schemas_file(self, tmp_path):
        schema_path = tmp_path / "one.car"
        schema_path.write_text(SCHEMA)
        lines = [json.dumps({"schema": "class C isa not C endclass"}),
                 json.dumps({"path": str(schema_path)})]
        path = tmp_path / "schemas.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_compile_builds_then_caches(self, schemas_file, tmp_path,
                                        capsys):
        art_dir = str(tmp_path / "cache")
        assert main(["compile", schemas_file,
                     "--artifact-dir", art_dir]) == 0
        first = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines()]
        assert [r["status"] for r in first] == ["built", "built"]
        assert main(["compile", schemas_file,
                     "--artifact-dir", art_dir]) == 0
        second = [json.loads(line) for line
                  in capsys.readouterr().out.splitlines()]
        assert [r["status"] for r in second] == ["cached", "cached"]

    def test_compile_force_rebuilds(self, schemas_file, tmp_path, capsys):
        art_dir = str(tmp_path / "cache")
        assert main(["compile", schemas_file,
                     "--artifact-dir", art_dir]) == 0
        capsys.readouterr()
        assert main(["compile", schemas_file, "--force",
                     "--artifact-dir", art_dir]) == 0
        forced = [json.loads(line) for line
                  in capsys.readouterr().out.splitlines()]
        assert [r["status"] for r in forced] == ["built", "built"]

    def test_compile_json_summary(self, schemas_file, tmp_path, capsys):
        assert main(["compile", schemas_file, "--json",
                     "--artifact-dir", str(tmp_path / "cache")]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["built"] == 2
        assert document["summary"]["failed"] == 0

    def test_compile_reports_bad_lines(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "class Broken isa endclass"}\n'
                        '{"schema": "class OK endclass"}\n')
        code = main(["compile", str(path),
                     "--artifact-dir", str(tmp_path / "cache")])
        assert code == 65
        results = [json.loads(line) for line
                   in capsys.readouterr().out.splitlines()]
        assert results[0]["status"] == "failed"
        assert results[1]["status"] == "built"

    def test_compile_requires_a_cache(self, schemas_file, capsys):
        assert main(["compile", schemas_file, "--no-artifact-cache"]) == 2
        assert "artifact cache" in capsys.readouterr().err

    def test_satisfiable_uses_precompiled_artifact(self, tmp_path, capsys):
        schema_path = tmp_path / "s.car"
        schema_path.write_text(SCHEMA)
        listing = tmp_path / "schemas.jsonl"
        listing.write_text(json.dumps({"path": str(schema_path)}) + "\n")
        art_dir = str(tmp_path / "cache")
        assert main(["compile", str(listing),
                     "--artifact-dir", art_dir]) == 0
        capsys.readouterr()
        assert main(["satisfiable", str(schema_path), "Student",
                     "--artifact-dir", art_dir, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "artifact.hit = 1" in captured.err

    def test_no_artifact_cache_flag_stays_cold(self, tmp_path, capsys):
        schema_path = tmp_path / "s.car"
        schema_path.write_text(SCHEMA)
        for _ in range(2):
            assert main(["satisfiable", str(schema_path), "Student",
                         "--no-artifact-cache", "--profile"]) == 0
            captured = capsys.readouterr()
            assert "artifact." not in captured.err
