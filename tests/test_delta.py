"""Diff-aware incremental revalidation (PR 7's tentpole machinery).

The contract under test: for ANY pair of schema versions, a pipeline
produced by :meth:`Pipeline.recompile_from` — reusing untouched clusters'
expansion rows, compound classes, and ``Ψ_S`` block supports from the
previous version's :class:`CompiledSchema` — must be *observationally
identical* to a cold build of the new version: the same compound classes,
the same maximal support, the same satisfiability verdict for every class
symbol.  The differential suites below drive that across randomized
single-definition edits (add / remove / rewrite a class, tighten an
attribute cardinality, touch a relation) on the workload generators.
"""

import random

import pytest

from repro.core.cardinality import Card
from repro.core.errors import ReasoningError
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import (Attr, ClassDef, Part, RelationDef,
                               RoleClause, RoleLiteral, Schema)
from repro.engine import (EngineConfig, Pipeline, SchemaDelta,
                          SchemaSession, schema_fingerprint)
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import (cardinality_chain_schema,
                                        clustered_schema, random_schema)

CONFIG = EngineConfig()


def compiled(schema, config=CONFIG):
    """A cold pipeline with Phase 2 solved, plus its artifact."""
    pipeline = Pipeline(schema, config)
    _ = pipeline.support
    return pipeline, pipeline.compile()


def support_set(pipeline):
    """The maximal support as a set of unknown *objects* (index-free)."""
    result = pipeline.support
    return {pipeline.system.unknowns[i] for i in result.support}


def assert_equivalent(delta_pipeline, new_schema, config=CONFIG):
    """The observational-identity oracle: delta rebuild == cold rebuild."""
    fresh = Pipeline(new_schema, config)
    assert set(delta_pipeline.expansion.compound_classes) == \
        set(fresh.expansion.compound_classes)
    assert set(delta_pipeline.expansion.compound_attributes) == \
        set(fresh.expansion.compound_attributes)
    assert set(delta_pipeline.expansion.compound_relations) == \
        set(fresh.expansion.compound_relations)
    assert support_set(delta_pipeline) == support_set(fresh)
    delta_reasoner = Reasoner.from_pipeline(delta_pipeline)
    fresh_reasoner = Reasoner.from_pipeline(fresh)
    for name in sorted(new_schema.class_symbols):
        assert delta_reasoner.is_satisfiable(name) == \
            fresh_reasoner.is_satisfiable(name), name


def revalidated(old, new, config=CONFIG):
    """old → compile → delta → recompile_from, returning the pipeline."""
    _, artifact = compiled(old, config)
    delta = SchemaDelta.between(old, new)
    return Pipeline.recompile_from(artifact, delta, config)


# ----------------------------------------------------------------------
# Randomized single-definition edits
# ----------------------------------------------------------------------
def edit_rewrite_isa(schema, rng):
    """Replace one class's isa-formula with a random new one."""
    defs = list(schema.class_definitions)
    target = rng.choice(defs)
    names = sorted(schema.class_symbols)
    clauses = tuple(
        Clause(tuple(Lit(name, positive=rng.random() < 0.7)
                     for name in rng.sample(names, rng.randint(1, 2))))
        for _ in range(rng.randint(1, 2)))
    replaced = ClassDef(target.name, Formula(clauses), target.attributes,
                        target.participates)
    return Schema([replaced if d.name == target.name else d for d in defs],
                  list(schema.relation_definitions))


def edit_add_class(schema, rng):
    """Append a fresh class whose isa references an existing one."""
    anchor = rng.choice(sorted(schema.class_symbols))
    extra = ClassDef(f"Fresh{rng.randint(0, 999)}",
                     Formula((Clause((Lit(anchor),)),)))
    return Schema(list(schema.class_definitions) + [extra],
                  list(schema.relation_definitions))


def edit_remove_class(schema, rng):
    """Drop one class definition (dangling references stay legal: a
    merely-mentioned symbol gets a trivial definition)."""
    defs = list(schema.class_definitions)
    target = rng.choice(defs)
    return Schema([d for d in defs if d.name != target.name],
                  list(schema.relation_definitions))


def edit_tighten_card(schema, rng):
    """Tighten one attribute cardinality to an exact count."""
    defs = list(schema.class_definitions)
    carriers = [d for d in defs if d.attributes]
    if not carriers:
        return edit_rewrite_isa(schema, rng)
    target = rng.choice(carriers)
    spec = rng.choice(target.attributes)
    tightened = tuple(
        Attr(s.ref, Card(1, 1), s.filler) if s is spec else s
        for s in target.attributes)
    replaced = ClassDef(target.name, target.isa, tightened,
                        target.participates)
    return Schema([replaced if d.name == target.name else d for d in defs],
                  list(schema.relation_definitions))


EDITS = [edit_rewrite_isa, edit_add_class, edit_remove_class,
         edit_tighten_card]


class TestDifferentialRandomizedEdits:
    """recompile_from == cold rebuild, across generators × edits × seeds."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("edit", EDITS)
    def test_random_schema(self, seed, edit):
        rng = random.Random(seed)
        old = random_schema(7, seed=seed)
        new = edit(old, rng)
        assert_equivalent(revalidated(old, new), new)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("edit", EDITS)
    def test_clustered_schema(self, seed, edit):
        rng = random.Random(seed)
        old = clustered_schema(4, 3, seed=seed)
        new = edit(old, rng)
        assert_equivalent(revalidated(old, new), new)

    @pytest.mark.parametrize("seed", range(3))
    def test_cardinality_chain(self, seed):
        rng = random.Random(seed)
        old = cardinality_chain_schema(4, fan_out=2)
        new = edit_tighten_card(old, rng)
        assert_equivalent(revalidated(old, new), new)

class TestSparseBackendDelta:
    """The sparse exact backend threads through ``restrict_to`` delta
    re-solving: revalidation under ``lp_backend="exact-sparse"`` must match
    a cold rebuild for every edit kind, and match the dense-exact verdicts."""

    SPARSE = EngineConfig(lp_backend="exact-sparse")

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("edit", EDITS)
    def test_random_schema_edits(self, seed, edit):
        rng = random.Random(seed)
        old = random_schema(7, seed=seed)
        new = edit(old, rng)
        assert_equivalent(revalidated(old, new, self.SPARSE), new,
                          self.SPARSE)

    @pytest.mark.parametrize("seed", range(2))
    @pytest.mark.parametrize("edit", EDITS)
    def test_clustered_schema_edits(self, seed, edit):
        rng = random.Random(seed)
        old = clustered_schema(4, 3, seed=seed)
        new = edit(old, rng)
        assert_equivalent(revalidated(old, new, self.SPARSE), new,
                          self.SPARSE)

    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_delta_matches_dense_delta(self, seed):
        rng = random.Random(seed)
        old = clustered_schema(3, 3, seed=seed)
        new = edit_tighten_card(old, rng)
        dense = revalidated(old, new, EngineConfig(lp_backend="exact"))
        sparse = revalidated(old, new, self.SPARSE)
        assert support_set(dense) == support_set(sparse)


class TestChainedEdits:
    @pytest.mark.parametrize("seed", range(4))
    def test_chained_edits_carry_the_artifact_forward(self, seed):
        """v1 → v2 → v3 → v4, each revalidated from its predecessor's
        artifact — reuse must not accumulate drift."""
        rng = random.Random(seed)
        schema = clustered_schema(3, 3, seed=seed)
        pipeline, artifact = compiled(schema)
        for _ in range(3):
            new = rng.choice(EDITS)(schema, rng)
            delta = SchemaDelta.between(schema, new)
            pipeline = Pipeline.recompile_from(artifact, delta, CONFIG)
            assert_equivalent(pipeline, new)
            artifact = pipeline.compile()
            schema = new


class TestRelationEdits:
    """Relation-touching edits: the subtle cases (a changed relation can
    flip compound-relation consistency without moving any cluster)."""

    def base(self):
        return Schema(
            [ClassDef("Student"), ClassDef("Course"),
             ClassDef("Grad", isa="Student",
                      participates=[Part("Enr", "who", Card(1, 2))]),
             ClassDef("Loner")],
            [RelationDef("Enr", ("who", "what"), [
                RoleClause(RoleLiteral("who", "Student")),
                RoleClause(RoleLiteral("what", "Course")),
            ])])

    def test_changed_role_clause_is_not_missed(self):
        old = self.base()
        new = Schema(list(old.class_definitions), [
            RelationDef("Enr", ("who", "what"), [
                RoleClause(RoleLiteral("who", "Grad")),
                RoleClause(RoleLiteral("what", "Course")),
            ])])
        delta = SchemaDelta.between(old, new)
        assert delta.changed_relations == {"Enr"}
        assert {"Student", "Course", "Grad"} <= delta.dirty_classes()
        assert_equivalent(revalidated(old, new), new)

    def test_added_and_removed_relation(self):
        old = self.base()
        extra = RelationDef("Mentors", ("mentor", "mentee"), [
            RoleClause(RoleLiteral("mentor", "Grad"))])
        added = Schema(list(old.class_definitions),
                       list(old.relation_definitions) + [extra])
        assert_equivalent(revalidated(old, added), added)
        removed = Schema(
            [ClassDef(c.name, c.isa, c.attributes)
             for c in old.class_definitions], [])
        assert_equivalent(revalidated(old, removed), removed)

    def test_participation_edit_dirties_the_participant(self):
        old = self.base()
        defs = [ClassDef("Grad", Formula((Clause((Lit("Student"),)),)),
                         participates=[Part("Enr", "who", Card(2, 2))])
                if d.name == "Grad" else d
                for d in old.class_definitions]
        new = Schema(defs, list(old.relation_definitions))
        delta = SchemaDelta.between(old, new)
        assert "Grad" in delta.dirty_classes()
        assert_equivalent(revalidated(old, new), new)


# ----------------------------------------------------------------------
# Reuse accounting and guard rails
# ----------------------------------------------------------------------
class TestReuseAccounting:
    def test_single_cluster_edit_reuses_the_rest(self):
        old = clustered_schema(8, 4, seed=7)
        target = old.definition("K0_3")
        new_isa = Formula(tuple(target.isa.clauses)
                          + (Clause((Lit("K0_1"),)),))
        defs = [ClassDef(d.name, new_isa, d.attributes, d.participates)
                if d.name == "K0_3" else d
                for d in old.class_definitions]
        new = Schema(defs, [])
        pipeline = revalidated(old, new)
        assert_equivalent(pipeline, new)
        stats = pipeline.delta_stats
        assert stats["mode"] == "delta"
        assert stats["clusters_rebuilt"] == 1
        assert stats["clusters_reused"] == stats["clusters_total"] - 1
        assert stats["compounds_reused"] > 0
        assert stats["support_blocks_reused"] > 0

    def test_empty_delta_short_circuits(self):
        schema = clustered_schema(3, 3, seed=1)
        _, artifact = compiled(schema)
        pipeline = Pipeline.recompile_from(
            artifact, SchemaDelta.between(schema, schema), CONFIG)
        assert pipeline.delta_stats["mode"] == "unchanged"
        # the stored verdicts rehydrate: no Phase-2 recomputation needed
        assert "support" in pipeline._artifacts
        assert support_set(pipeline) == support_set(Pipeline(schema,
                                                             CONFIG))

    def test_naive_strategy_falls_back_to_fresh(self):
        config = EngineConfig(strategy="naive")
        old = clustered_schema(2, 2, seed=0)
        new = edit_add_class(old, random.Random(0))
        pipeline, artifact = compiled(old, config)
        delta = SchemaDelta.between(old, new)
        rebuilt = Pipeline.recompile_from(artifact, delta, config)
        assert rebuilt.delta_stats["mode"] == "fresh"
        assert_equivalent(rebuilt, new, config)

    def test_config_mismatch_is_refused(self):
        old = clustered_schema(2, 2, seed=0)
        _, artifact = compiled(old)
        delta = SchemaDelta.between(old, edit_add_class(
            old, random.Random(1)))
        with pytest.raises(ReasoningError):
            Pipeline.recompile_from(artifact, delta,
                                    EngineConfig(strategy="naive"))

    def test_wrong_old_schema_is_refused(self):
        schema_a = clustered_schema(2, 2, seed=0)
        schema_b = clustered_schema(2, 2, seed=5)
        _, artifact = compiled(schema_a)
        delta = SchemaDelta.between(schema_b, edit_add_class(
            schema_b, random.Random(1)))
        with pytest.raises(ReasoningError):
            Pipeline.recompile_from(artifact, delta, CONFIG)


class TestSchemaDelta:
    def test_between_classifies_every_edit_kind(self):
        old = Schema([ClassDef("A"), ClassDef("B"), ClassDef("Gone")],
                     [RelationDef("R", ("u",)), RelationDef("Dead", ("u",))])
        new = Schema(
            [ClassDef("A", isa="B"), ClassDef("B"), ClassDef("New")],
            [RelationDef("R", ("u", "v")), RelationDef("Born", ("u",))])
        delta = SchemaDelta.between(old, new)
        assert delta.added_classes == {"New"}
        assert delta.removed_classes == {"Gone"}
        assert delta.changed_classes == {"A"}
        assert delta.added_relations == {"Born"}
        assert delta.removed_relations == {"Dead"}
        assert delta.changed_relations == {"R"}
        assert delta.touched_relations() == {"R", "Dead", "Born"}
        assert not delta.is_empty()
        assert SchemaDelta.between(old, old).is_empty()

    def test_reordering_definitions_is_no_edit(self):
        defs = [ClassDef("A", isa="B"), ClassDef("B"), ClassDef("C")]
        old = Schema(defs)
        new = Schema(list(reversed(defs)))
        assert SchemaDelta.between(old, new).is_empty()
        assert schema_fingerprint(old) == schema_fingerprint(new)


# ----------------------------------------------------------------------
# SchemaSession.update / invalidate
# ----------------------------------------------------------------------
class TestSessionUpdate:
    def edited(self, schema, seed=3):
        return edit_rewrite_isa(schema, random.Random(seed))

    def test_update_reports_delta_reuse(self):
        old = clustered_schema(5, 3, seed=2)
        new = self.edited(old)
        session = SchemaSession()
        _ = session.reasoner(old).pipeline.support
        reasoner, report = session.update(old, new)
        assert report.mode == "delta"
        assert report.clusters_reused > 0
        assert report.fingerprint_old == schema_fingerprint(old)
        assert report.fingerprint_new == schema_fingerprint(new)
        assert report.duration_s > 0
        assert new in session
        fresh = Pipeline(new, session.config)
        assert support_set(reasoner.pipeline) == support_set(fresh)

    def test_update_accepts_a_fingerprint_for_old(self):
        old = clustered_schema(3, 3, seed=4)
        new = self.edited(old)
        session = SchemaSession()
        _ = session.reasoner(old).pipeline.support
        _, report = session.update(schema_fingerprint(old), new)
        assert report.mode == "delta"

    def test_update_without_previous_is_fresh(self):
        session = SchemaSession()
        _, report = session.update(None, "class A isa B endclass "
                                         "class B endclass")
        assert report.mode == "fresh"

    def test_update_persists_verdict_bearing_artifacts(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path))
        old = clustered_schema(3, 3, seed=5)
        new = self.edited(old)
        session = SchemaSession(config)
        _ = session.reasoner(old).pipeline.support
        session.update(old, new)
        artifact = session.artifact_cache.load(
            schema_fingerprint(new), config)
        assert artifact is not None
        assert artifact.support is not None
        # a second session rehydrates Phase 2 from the stored verdicts
        other = SchemaSession(config)
        rehydrated = other.reasoner(new).pipeline
        assert "support" in rehydrated._artifacts

    def test_unchanged_update_skips_phase2(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path))
        schema = clustered_schema(3, 3, seed=6)
        session = SchemaSession(config)
        _ = session.reasoner(schema).pipeline.support
        _, report = session.update(schema, schema)
        assert report.mode == "unchanged"

    def test_invalidate_drops_peek_snapshot(self):
        session = SchemaSession()
        schema = "class A endclass"
        _ = session.reasoner(schema).pipeline.support
        fingerprint = schema_fingerprint(schema)
        assert session.peek_compiled(fingerprint) is not None
        session.invalidate(schema)
        assert session.peek_compiled(fingerprint) is None

    def test_invalidate_disarms_the_persist_hook(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path))
        session = SchemaSession(config)
        schema = "class A isa B endclass class B endclass"
        reasoner = session.reasoner(schema)
        session.invalidate(schema, drop_artifacts=True)
        # the popped pipeline builds later — it must NOT store a snapshot
        _ = reasoner.pipeline.support
        assert session.artifact_cache.load(
            schema_fingerprint(schema), config) is None

    def test_invalidate_drop_artifacts_unlinks_the_snapshot(self,
                                                            tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path))
        session = SchemaSession(config)
        schema = "class A isa B endclass class B endclass"
        _ = session.reasoner(schema).pipeline.support
        fingerprint = schema_fingerprint(schema)
        assert session.artifact_cache.load(fingerprint, config) is not None
        session.invalidate(schema, drop_artifacts=True)
        assert session.artifact_cache.load(fingerprint, config) is None

    def test_invalidate_without_flag_keeps_the_snapshot(self, tmp_path):
        config = EngineConfig(artifact_dir=str(tmp_path))
        session = SchemaSession(config)
        schema = "class A isa B endclass class B endclass"
        _ = session.reasoner(schema).pipeline.support
        fingerprint = schema_fingerprint(schema)
        session.invalidate(schema)
        assert session.artifact_cache.load(fingerprint, config) is not None
