"""Unit tests for schema definitions and the Schema container."""

import pytest

from repro.core.cardinality import ANY, Card
from repro.core.errors import SchemaError
from repro.core.formulas import Lit, TOP
from repro.core.schema import (
    Attr,
    AttrRef,
    ClassDef,
    Part,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)


class TestAttrRef:
    def test_direct(self):
        ref = AttrRef("teaches")
        assert not ref.inverse
        assert str(ref) == "teaches"

    def test_inverse_helper(self):
        ref = inv("teaches")
        assert ref.inverse
        assert str(ref) == "(inv teaches)"

    def test_flipped(self):
        assert AttrRef("a").flipped() == inv("a")
        assert inv("a").flipped() == AttrRef("a")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttrRef("")


class TestAttributeSpec:
    def test_defaults(self):
        spec = Attr("name")
        assert spec.card == ANY
        assert spec.filler == TOP

    def test_string_ref_coerced(self):
        assert Attr("name").ref == AttrRef("name")

    def test_filler_coerced(self):
        assert Attr("name", Card(1, 1), "String").filler.satisfied_by({"String"})

    def test_empty_card_rejected(self):
        with pytest.raises(SchemaError):
            Attr("name", Card(3, 1))

    def test_non_card_rejected(self):
        with pytest.raises(SchemaError):
            Attr("name", (1, 1))


class TestParticipationSpec:
    def test_fields(self):
        spec = Part("Enrollment", "enrolls", Card(1, 6))
        assert (spec.relation, spec.role) == ("Enrollment", "enrolls")

    def test_empty_card_rejected(self):
        with pytest.raises(SchemaError):
            Part("R", "u", Card(2, 1))


class TestClassDef:
    def test_minimal(self):
        cdef = ClassDef("Person")
        assert cdef.isa == TOP
        assert not cdef.attributes

    def test_duplicate_attr_ref_rejected(self):
        with pytest.raises(SchemaError):
            ClassDef("C", attributes=[Attr("a"), Attr("a")])

    def test_direct_and_inverse_of_same_attribute_allowed(self):
        cdef = ClassDef("C", attributes=[Attr("a"), Attr(inv("a"))])
        assert len(cdef.attributes) == 2

    def test_duplicate_participation_rejected(self):
        with pytest.raises(SchemaError):
            ClassDef("C", participates=[Part("R", "u", Card(0, 1)),
                                        Part("R", "u", Card(1, 2))])

    def test_mentioned_classes(self):
        cdef = ClassDef("C", isa=Lit("A") & ~Lit("B"),
                        attributes=[Attr("x", ANY, "D")])
        assert cdef.mentioned_classes() == {"A", "B", "D"}

    def test_replace(self):
        cdef = ClassDef("C", isa="A")
        replaced = cdef.replace(isa="B")
        assert replaced.name == "C"
        assert replaced.isa.satisfied_by({"B"})
        assert cdef.isa.satisfied_by({"A"})


class TestRelationDef:
    def test_roles_must_be_distinct(self):
        with pytest.raises(SchemaError):
            RelationDef("R", ("u", "u"))

    def test_at_least_one_role(self):
        with pytest.raises(SchemaError):
            RelationDef("R", ())

    def test_constraint_roles_must_be_declared(self):
        with pytest.raises(SchemaError):
            RelationDef("R", ("u",), [RoleClause(RoleLiteral("v", "A"))])

    def test_role_clause_duplicate_role_rejected(self):
        with pytest.raises(SchemaError):
            RoleClause(RoleLiteral("u", "A"), RoleLiteral("u", "B"))

    def test_bare_role_literal_promoted(self):
        rdef = RelationDef("R", ("u",), [RoleLiteral("u", "A")])
        assert len(rdef.constraints) == 1

    def test_arity(self):
        assert RelationDef("R", ("a", "b", "c")).arity == 3

    def test_mentioned_classes(self):
        rdef = RelationDef("R", ("u", "v"), [
            RoleClause(RoleLiteral("u", Lit("A") | ~Lit("B"))),
        ])
        assert rdef.mentioned_classes() == {"A", "B"}


class TestSchema:
    def test_duplicate_class_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("A"), ClassDef("A")])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([], [RelationDef("R", ("u",)), RelationDef("R", ("u",))])

    def test_participation_needs_defined_relation(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("C", participates=[Part("R", "u", Card(0, 1))])])

    def test_participation_needs_declared_role(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("C", participates=[Part("R", "bad", Card(0, 1))])],
                   [RelationDef("R", ("u",))])

    def test_mentioned_only_classes_in_alphabet(self):
        schema = Schema([ClassDef("C", isa=Lit("Mentioned"))])
        assert "Mentioned" in schema.class_symbols
        assert schema.definition("Mentioned").isa == TOP

    def test_unknown_class_raises(self):
        schema = Schema([ClassDef("C")])
        with pytest.raises(SchemaError):
            schema.definition("Nope")

    def test_alphabet_partition_class_vs_relation(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("X")], [RelationDef("X", ("u",))])

    def test_alphabet_partition_class_vs_attribute(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("C", attributes=[Attr("C")])])

    def test_alphabet_partition_attribute_vs_relation(self):
        with pytest.raises(SchemaError):
            Schema([ClassDef("C", attributes=[Attr("R")])],
                   [RelationDef("R", ("u",))])

    def test_union_free_detection(self):
        union_free = Schema([ClassDef("C", isa=Lit("A") & Lit("B"))])
        assert union_free.is_union_free()
        not_union_free = Schema([ClassDef("C", isa=Lit("A") | Lit("B"))])
        assert not not_union_free.is_union_free()

    def test_union_free_checks_role_clauses(self):
        schema = Schema([], [RelationDef("R", ("u", "v"), [
            RoleClause(RoleLiteral("u", "A"), RoleLiteral("v", "B")),
        ])])
        assert not schema.is_union_free()

    def test_negation_free_detection(self):
        assert Schema([ClassDef("C", isa="A")]).is_negation_free()
        assert not Schema([ClassDef("C", isa=~Lit("A"))]).is_negation_free()

    def test_max_arity(self):
        schema = Schema([], [RelationDef("R", ("a", "b")),
                             RelationDef("S", ("a", "b", "c"))])
        assert schema.max_arity() == 3
        assert Schema([]).max_arity() == 0

    def test_with_class_replaces(self):
        schema = Schema([ClassDef("C", isa="A")])
        updated = schema.with_class(ClassDef("C", isa="B"))
        assert updated.definition("C").isa.satisfied_by({"B"})
        # Original untouched.
        assert schema.definition("C").isa.satisfied_by({"A"})

    def test_without_class(self):
        schema = Schema([ClassDef("C"), ClassDef("D")])
        trimmed = schema.without_class("C")
        assert "C" not in {c.name for c in trimmed.class_definitions}
        assert "D" in {c.name for c in trimmed.class_definitions}

    def test_attribute_refs(self):
        schema = Schema([ClassDef("C", attributes=[Attr("a"), Attr(inv("b"))])])
        assert schema.attribute_refs() == {AttrRef("a"), inv("b")}
        assert schema.attribute_symbols == {"a", "b"}

    def test_syntactic_size_monotone(self):
        small = Schema([ClassDef("C", isa="A")])
        large = Schema([ClassDef("C", isa="A"),
                        ClassDef("D", isa=Lit("A") | Lit("B"),
                                 attributes=[Attr("x", Card(1, 2), "C")])])
        assert large.syntactic_size() > small.syntactic_size()

    def test_equality(self):
        a = Schema([ClassDef("C", isa="A")])
        b = Schema([ClassDef("C", isa="A")])
        assert a == b
        assert a != Schema([ClassDef("C", isa="B")])
