"""Integration tests over the catalog workload: the whole pipeline on a
second realistic domain."""

import pytest

from repro.core.cardinality import Card
from repro.core.schema import AttrRef, inv
from repro.parser.parser import parse_schema
from repro.parser.printer import render_schema
from repro.reasoner.implication import (
    classify,
    implied_attribute_bounds,
    implied_attribute_filler,
    implied_disjoint,
    implied_role_constraint,
    implied_subsumption,
)
from repro.reasoner.satisfiability import Reasoner
from repro.reasoner.transform import reify_nonbinary_relations
from repro.semantics.checker import is_model
from repro.synthesis.builder import synthesize_model
from repro.workloads.catalog_schema import catalog_schema
from repro.core.formulas import Lit


@pytest.fixture(scope="module")
def reasoner():
    return Reasoner(catalog_schema())


class TestCoherence:
    def test_every_class_satisfiable(self, reasoner):
        report = reasoner.check_coherence()
        assert report.is_coherent, report

    def test_round_trip(self):
        schema = catalog_schema()
        assert parse_schema(render_schema(schema)) == schema


class TestDerivedFacts:
    def test_hierarchy(self, reasoner):
        assert implied_subsumption(reasoner, "Bulky_Product", "Product")
        assert implied_subsumption(reasoner, "Business_Customer", "Party")

    def test_disjointness_propagates(self, reasoner):
        assert implied_disjoint(reasoner, "Business_Customer",
                                "Retail_Customer")
        assert implied_disjoint(reasoner, "Bulky_Product", "Digital_Product")
        assert implied_disjoint(reasoner, "Customer", "Product")

    def test_inverse_bounds(self, reasoner):
        assert implied_attribute_bounds(
            reasoner, "Product", inv("supplies")) == Card(1, 3)

    def test_bulky_shipping_refinement(self, reasoner):
        # Bulky products ship in crates only; physical products in general
        # may also use envelopes.
        assert implied_attribute_filler(
            reasoner, "Bulky_Product", AttrRef("shipped_in"), Lit("Crate"))
        assert not implied_attribute_filler(
            reasoner, "Physical_Product", AttrRef("shipped_in"), Lit("Crate"))

    def test_role_constraints(self, reasoner):
        assert implied_role_constraint(
            reasoner, "Order_Line", "buyer", Lit("Customer"))
        assert implied_role_constraint(
            reasoner, "Order_Line", "buyer", Lit("Party"))
        assert not implied_role_constraint(
            reasoner, "Order_Line", "item", Lit("Physical_Product"))

    def test_classification_has_no_surprises(self, reasoner):
        result = classify(reasoner)
        assert not result.unsatisfiable
        assert ("Bulky_Product", "Physical_Product") in result.subsumptions
        assert ("Instant_Slot", "Shipment_Slot") in result.subsumptions


class TestPipelines:
    def test_reification_rejects_disjunctive_role_clause(self):
        # Order_Line carries a disjunctive role-clause, so Theorem 4.5's
        # precondition fails and reification must refuse loudly.
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            reify_nonbinary_relations(catalog_schema())

    def test_reification_of_simplified_catalog(self, reasoner):
        # Dropping the conditional-typing clause makes Order_Line reifiable;
        # verdicts on all classes must be preserved.
        from repro.core.schema import RelationDef

        schema = catalog_schema()
        rdef = schema.relation("Order_Line")
        simplified = schema.with_relation(RelationDef(
            "Order_Line", rdef.roles,
            [c for c in rdef.constraints if len(c) == 1]))
        result = reify_nonbinary_relations(simplified)
        assert result.was_changed()
        before = Reasoner(simplified)
        after = Reasoner(result.schema)
        for name in sorted(simplified.class_symbols):
            assert (before.is_satisfiable(name)
                    == after.is_satisfiable(name)), name

    @pytest.mark.slow
    def test_synthesize_catalog_database(self, reasoner):
        report = synthesize_model(reasoner, target="Bulky_Product")
        interp = report.interpretation
        assert is_model(interp, catalog_schema())
        assert interp.class_ext("Bulky_Product")
        # Every product has 1-3 suppliers in the synthesized state.
        for product in interp.class_ext("Product"):
            count = interp.attr_link_count(inv("supplies"), product)
            assert 1 <= count <= 3
