"""Unit tests for unsatisfiability explanations."""

import pytest

from repro.core.errors import ReasoningError
from repro.parser.parser import parse_schema
from repro.reasoner.explain import explain_unsatisfiability
from repro.reasoner.satisfiability import Reasoner


class TestPhase1:
    def test_isa_contradiction(self):
        reasoner = Reasoner(parse_schema("""
            class Student isa Person and not Professor endclass
            class TA isa Student and Professor endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "TA")
        assert explanation.phase == 1
        assert explanation.class_name == "TA"
        text = str(explanation)
        assert "Student" in text and "Professor" in text

    def test_direct_self_contradiction(self):
        reasoner = Reasoner(parse_schema("class A isa not A endclass"))
        explanation = explain_unsatisfiability(reasoner, "A")
        assert explanation.phase == 1

    def test_forced_memberships_listed(self):
        reasoner = Reasoner(parse_schema("""
            class A isa B endclass
            class B isa C and not C endclass
            class C endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "A")
        assert explanation.phase == 1
        assert any("B" in d for d in explanation.details)


class TestPhase2:
    def test_empty_merged_interval(self):
        reasoner = Reasoner(parse_schema("""
            class Sup attributes x : (2, 2) T endclass
            class Sub isa Sup attributes x : (0, 1) T endclass
            class T endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "Sub")
        assert explanation.phase == 2
        assert any("empty" in d for d in explanation.details)

    def test_global_counting_conflict(self):
        reasoner = Reasoner(parse_schema("""
            class C
                attributes a : (1, 1) C;
                           (inv a) : (3, 3) C
            endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "C")
        assert explanation.phase == 2
        assert "finite database state" in explanation.headline

    def test_missing_partner(self):
        reasoner = Reasoner(parse_schema("""
            class C attributes a : (1, 1) Ghost and not Ghost endclass
            class Ghost endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "C")
        assert explanation.phase == 2
        assert any("partner" in d for d in explanation.details)


class TestGuards:
    def test_satisfiable_class_rejected(self):
        reasoner = Reasoner(parse_schema("class A endclass"))
        with pytest.raises(ReasoningError):
            explain_unsatisfiability(reasoner, "A")

    def test_detail_cap(self):
        # Many compounds die for the same reason; the explanation dedups.
        reasoner = Reasoner(parse_schema("""
            class Sup attributes x : (2, 2) T endclass
            class Sub isa Sup attributes x : (0, 1) T endclass
            class T endclass
            class U endclass
            class V endclass
        """))
        explanation = explain_unsatisfiability(reasoner, "Sub", max_details=2)
        assert len(explanation.details) <= 2
