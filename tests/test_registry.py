"""The multi-tenant schema registry: quotas, versioning, HTTP, CLI."""

import json
import threading

import pytest

from repro.core.errors import (RegistryError, RegistryNotFound,
                               RegistryQuotaError, RegistrySizeError)
from repro.engine import EngineConfig, SchemaSession
from repro.registry import RegistryConfig, SchemaRegistry
from repro.service.app import ReproService, ServiceConfig
from repro.service.http import status_for_exit_code
from tests.wire import check_envelope, unwrap

SCHEMA_V1 = "class A isa B endclass class B endclass"
SCHEMA_V2 = "class A isa B and C endclass class B endclass class C endclass"
SCHEMA_V3 = "class A isa not A endclass"


@pytest.fixture()
def registry():
    return SchemaRegistry(SchemaSession(), RegistryConfig(
        max_schemas_per_tenant=3, max_versions_per_schema=3,
        max_schema_source_bytes=10_000, max_total_source_bytes=50_000))


# ----------------------------------------------------------------------
# Core registry behavior
# ----------------------------------------------------------------------
class TestPut:
    def test_versions_are_monotonic(self, registry):
        v1, r1 = registry.put("inv", SCHEMA_V1)
        v2, r2 = registry.put("inv", SCHEMA_V2)
        assert (v1.version, v2.version) == (1, 2)
        assert r1.mode == "fresh"
        assert r2.mode == "delta"
        assert v2.revalidation["mode"] == "delta"

    def test_identical_source_is_deduplicated(self, registry):
        v1, _ = registry.put("inv", SCHEMA_V1)
        v2, report = registry.put("inv", SCHEMA_V1)
        assert v2.version == v1.version
        assert report.mode == "unchanged"
        assert len(registry.versions("inv")) == 1

    def test_reordered_source_is_the_same_version(self, registry):
        registry.put("inv", SCHEMA_V1)
        _, report = registry.put(
            "inv", "class B endclass class A isa B endclass")
        assert report.mode == "unchanged"

    def test_put_rejects_bad_names(self, registry):
        for bad in ("", "a@b", "a/b", "x" * 200, 7):
            with pytest.raises(RegistryError):
                registry.put(bad, SCHEMA_V1)
        with pytest.raises(RegistryError):
            registry.put("ok", SCHEMA_V1, tenant="bad tenant")
        with pytest.raises(RegistryError):
            registry.put("ok", "   ")

    def test_tenants_are_isolated(self, registry):
        registry.put("inv", SCHEMA_V1, tenant="acme")
        registry.put("inv", SCHEMA_V3, tenant="globex")
        assert registry.get("inv", tenant="acme").source == SCHEMA_V1
        assert registry.get("inv", tenant="globex").source == SCHEMA_V3
        with pytest.raises(RegistryNotFound):
            registry.get("inv")


class TestQuotas:
    def test_schema_count_quota(self, registry):
        for i in range(3):
            registry.put(f"s{i}", SCHEMA_V1)
        with pytest.raises(RegistryQuotaError):
            registry.put("s3", SCHEMA_V1)
        # revising an existing name is not a new schema
        registry.put("s0", SCHEMA_V2)

    def test_source_size_quota(self, registry):
        with pytest.raises(RegistrySizeError):
            registry.put("big", "class A endclass " + " " * 20_000)

    def test_total_size_quota(self):
        registry = SchemaRegistry(SchemaSession(), RegistryConfig(
            max_schema_source_bytes=10_000, max_total_source_bytes=25_000))
        padded = SCHEMA_V1 + " " * 9_900
        with pytest.raises(RegistrySizeError):
            for i in range(4):
                registry.put(f"s{i}", padded + f" class X{i} endclass")

    def test_inflight_quota(self, registry):
        registry._inflight["default"] = \
            registry.config.max_inflight_revalidations
        try:
            with pytest.raises(RegistryQuotaError):
                registry.put("inv", SCHEMA_V1)
        finally:
            registry._inflight.clear()
        registry.put("inv", SCHEMA_V1)

    def test_inflight_slot_is_released_on_failure(self, registry):
        with pytest.raises(Exception):
            registry.put("inv", "class A isa endclass")  # parse error
        assert registry._inflight["default"] == 0


class TestVersionHistory:
    def test_pruning_keeps_depth(self, registry):
        sources = [SCHEMA_V1, SCHEMA_V2, SCHEMA_V3,
                   "class D endclass", "class E endclass"]
        for source in sources:
            registry.put("inv", source)
        versions = [v.version for v in registry.versions("inv")]
        assert versions == [3, 4, 5]

    def test_pinned_versions_survive_pruning(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.pin("inv", 1)
        for source in (SCHEMA_V2, SCHEMA_V3, "class D endclass"):
            registry.put("inv", source)
        versions = registry.versions("inv")
        assert versions[0].version == 1 and versions[0].pinned

    def test_all_pinned_blocks_the_put(self, registry):
        for source in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3):
            version, _ = registry.put("inv", source)
            registry.pin("inv", version.version)
        with pytest.raises(RegistryQuotaError):
            registry.put("inv", "class D endclass")
        # the refused put must not have appended
        assert [v.version for v in registry.versions("inv")] == [1, 2, 3]

    def test_unpin(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.pin("inv", 1)
        assert registry.get("inv", version=1).pinned
        registry.pin("inv", 1, pinned=False)
        assert not registry.get("inv", version=1).pinned

    def test_pin_missing_version(self, registry):
        registry.put("inv", SCHEMA_V1)
        with pytest.raises(RegistryNotFound):
            registry.pin("inv", 9)


class TestResolveAndReads:
    def test_resolve_shapes(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.put("inv", SCHEMA_V2)
        assert registry.resolve("inv").version == 2
        assert registry.resolve("inv@latest").version == 2
        assert registry.resolve("inv@1").version == 1
        assert registry.resolve("inv@1").ref == "inv@1"

    def test_resolve_rejects_malformed_refs(self, registry):
        registry.put("inv", SCHEMA_V1)
        for bad in ("inv@x", "inv@0", "inv@-1", "", None):
            with pytest.raises(RegistryError):
                registry.resolve(bad)
        with pytest.raises(RegistryNotFound):
            registry.resolve("inv@9")
        with pytest.raises(RegistryNotFound):
            registry.resolve("ghost")

    def test_reasoner_answers_through_the_session(self, registry):
        registry.put("inv", SCHEMA_V2)
        assert registry.reasoner("inv@1").is_satisfiable("A")
        assert "inv" in registry
        assert len(registry) == 1

    def test_list_and_stats(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.put("inv", SCHEMA_V2)
        registry.put("cat", SCHEMA_V3)
        rows = registry.list()
        assert [row["name"] for row in rows] == ["cat", "inv"]
        assert rows[1]["versions"] == 2
        stats = registry.stats()
        assert stats["schemas"] == 2
        assert stats["versions"] == 3
        assert stats["tenants"]["default"]["source_bytes"] > 0


class TestDelete:
    def test_delete_whole_schema(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.put("inv", SCHEMA_V2)
        assert registry.delete("inv") == 2
        with pytest.raises(RegistryNotFound):
            registry.get("inv")

    def test_delete_one_version(self, registry):
        registry.put("inv", SCHEMA_V1)
        registry.put("inv", SCHEMA_V2)
        assert registry.delete("inv", version=1) == 1
        assert [v.version for v in registry.versions("inv")] == [2]
        with pytest.raises(RegistryNotFound):
            registry.delete("inv", version=1)

    def test_delete_missing(self, registry):
        with pytest.raises(RegistryNotFound):
            registry.delete("ghost")

    def test_delete_invalidates_the_session(self, registry):
        registry.put("inv", SCHEMA_V1)
        assert SCHEMA_V1 in registry.session
        registry.delete("inv")
        assert SCHEMA_V1 not in registry.session


class TestConcurrency:
    def test_concurrent_puts_stay_monotonic(self):
        registry = SchemaRegistry(SchemaSession(), RegistryConfig(
            max_versions_per_schema=64, max_inflight_revalidations=16))
        failures = []

        def put(i):
            try:
                registry.put("inv", f"class A isa B endclass "
                                    f"class B endclass class X{i} endclass")
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=put, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        versions = [v.version for v in registry.versions("inv")]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
@pytest.fixture()
def service():
    return ReproService(ServiceConfig(registry=RegistryConfig(
        max_schemas_per_tenant=2, max_versions_per_schema=3)))


def call(service, method, path, body=None, headers=None):
    raw = json.dumps(body).encode() if body is not None else b""
    response = service.dispatch(method, path, headers or {}, raw)
    # registry routes speak the same v1 envelope as every other endpoint
    check_envelope(response.payload, status=response.status)
    return response


def data_of(response):
    return unwrap(response.payload, status=response.status)


class TestRegistryEndpoints:
    def test_put_get_versions_list(self, service):
        response = call(service, "PUT", "/v1/schemas/inv",
                        {"schema": SCHEMA_V1})
        assert response.status == 201
        assert data_of(response)["schema"]["ref"] == "inv@1"
        assert data_of(response)["revalidation"]["mode"] == "fresh"
        response = call(service, "PUT", "/v1/schemas/inv",
                        {"schema": SCHEMA_V2})
        assert response.status == 201
        assert data_of(response)["revalidation"]["mode"] == "delta"
        response = call(service, "GET", "/v1/schemas/inv")
        assert response.status == 200
        assert data_of(response)["schema"]["version"] == 2
        response = call(service, "GET", "/v1/schemas/inv/versions")
        assert [v["version"] for v in data_of(response)["versions"]] == [1, 2]
        response = call(service, "GET", "/v1/schemas")
        assert [s["name"] for s in data_of(response)["schemas"]] == ["inv"]

    def test_get_by_version_query_parameter(self, service):
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V1})
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V2})
        response = call(service, "GET", "/v1/schemas/inv?version=1")
        assert response.status == 200
        assert data_of(response)["schema"]["ref"] == "inv@1"
        response = call(service, "GET", "/v1/schemas/inv?version=9")
        assert response.status == 404
        assert response.payload["error"]["sysexit"] == 67
        response = call(service, "GET", "/v1/schemas/inv?version=zero")
        assert response.status == 422
        response = call(service, "GET", "/v1/schemas/inv?version=0")
        assert response.status == 422

    def test_unchanged_put_is_200(self, service):
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V1})
        response = call(service, "PUT", "/v1/schemas/inv",
                        {"schema": SCHEMA_V1})
        assert response.status == 200
        assert data_of(response)["revalidation"]["mode"] == "unchanged"

    def test_query_by_schema_ref(self, service):
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V2})
        response = call(service, "POST", "/v1/satisfiable",
                        {"schema_ref": "inv@1", "class": "A"})
        assert response.status == 200 and data_of(response)["verdict"]
        response = call(service, "POST", "/v1/classify",
                        {"schema_ref": "inv"})
        assert response.status == 200
        assert ["A", "B"] in data_of(response)["subsumptions"]
        response = call(service, "POST", "/v1/batch", {"queries": [
            {"schema_ref": "inv", "formula": "A"},
            {"schema": SCHEMA_V3, "formula": "A"}]})
        assert response.status == 200
        assert data_of(response)["summary"]["ok"] == 2

    def test_missing_ref_is_404(self, service):
        response = call(service, "POST", "/v1/satisfiable",
                        {"schema_ref": "ghost", "class": "A"})
        assert response.status == 404
        assert response.payload["error"]["sysexit"] == 67
        response = call(service, "GET", "/v1/schemas/ghost")
        assert response.status == 404
        response = call(service, "GET", "/v1/schemas/ghost/versions")
        assert response.status == 404

    def test_quota_breach_is_429_with_retry_after(self, service):
        call(service, "PUT", "/v1/schemas/a", {"schema": SCHEMA_V1})
        call(service, "PUT", "/v1/schemas/b", {"schema": SCHEMA_V1})
        response = call(service, "PUT", "/v1/schemas/c",
                        {"schema": SCHEMA_V1})
        assert response.status == 429
        assert response.payload["error"]["sysexit"] == 69
        assert dict(response.headers).get("Retry-After") == "1"

    def test_size_breach_is_413(self):
        service = ReproService(ServiceConfig(registry=RegistryConfig(
            max_schema_source_bytes=64)))
        response = call(service, "PUT", "/v1/schemas/big",
                        {"schema": SCHEMA_V1 + " " * 200})
        assert response.status == 413
        assert response.payload["error"]["sysexit"] == 77

    def test_tenant_header_scopes_every_route(self, service):
        acme = {"X-Repro-Tenant": "acme"}
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V1}, acme)
        response = call(service, "GET", "/v1/schemas/inv", headers=acme)
        assert data_of(response)["schema"]["tenant"] == "acme"
        assert call(service, "GET", "/v1/schemas/inv").status == 404
        response = call(service, "POST", "/v1/satisfiable",
                        {"schema_ref": "inv", "class": "A"}, acme)
        assert response.status == 200

    def test_pin_and_delete_routes(self, service):
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V1})
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V2})
        response = call(service, "POST", "/v1/schemas/inv/pin",
                        {"version": 1})
        assert response.status == 200
        assert data_of(response)["schema"]["pinned"]
        response = call(service, "POST", "/v1/schemas/inv/pin",
                        {"version": "x"})
        assert response.status == 422
        response = call(service, "DELETE", "/v1/schemas/inv",
                        {"version": 2})
        assert response.status == 200
        assert data_of(response)["removed_versions"] == 1
        response = call(service, "DELETE", "/v1/schemas/inv")
        assert data_of(response)["removed_versions"] == 1

    def test_method_and_route_misses(self, service):
        assert call(service, "PATCH", "/v1/schemas/inv").status == 405
        assert call(service, "PUT", "/v1/schemas").status == 405
        assert call(service, "GET",
                    "/v1/schemas/a/b/c").status == 404
        response = call(service, "PUT", "/v1/schemas/bad@name",
                        {"schema": SCHEMA_V1})
        assert response.status == 422

    def test_metrics_exposes_registry_and_reuse_counters(self, service):
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V1})
        call(service, "PUT", "/v1/schemas/inv", {"schema": SCHEMA_V2})
        response = call(service, "GET", "/metrics")
        payload = data_of(response)
        assert payload["registry"]["schemas"] == 1
        assert payload["registry"]["tenants"]["default"]["versions"] == 2
        assert payload["counters"]["registry.put"] == 2
        assert "registry.rebuilt" in payload["counters"]


# ----------------------------------------------------------------------
# Typed registry errors: sysexits ↔ HTTP (pinned rows)
# ----------------------------------------------------------------------
class TestRegistryErrorCodes:
    @pytest.mark.parametrize("error_class,exit_code,status", [
        (RegistryError, 65, 422),
        (RegistryNotFound, 67, 404),
        (RegistryQuotaError, 69, 429),
        (RegistrySizeError, 77, 413),
    ])
    def test_exit_codes_and_statuses(self, error_class, exit_code, status):
        assert error_class.exit_code == exit_code
        assert status_for_exit_code(exit_code) == status

    def test_hierarchy(self):
        assert issubclass(RegistrySizeError, RegistryQuotaError)
        assert issubclass(RegistryQuotaError, RegistryError)
        assert issubclass(RegistryNotFound, RegistryError)


# ----------------------------------------------------------------------
# The CLI client, end to end against a live server
# ----------------------------------------------------------------------
class TestRegistryCli:
    @pytest.fixture()
    def live(self):
        service = ReproService(
            ServiceConfig(port=0), EngineConfig(artifact_dir=None))
        host, port = service.start()
        yield f"http://{host}:{port}"
        service.drain(grace=2.0)

    def test_put_check_list_delete_roundtrip(self, live, tmp_path,
                                             capsys):
        from repro.cli import main

        path = tmp_path / "schema.car"
        path.write_text(SCHEMA_V1)
        assert main(["registry", "put", "inv", str(path),
                     "--url", live]) == 0
        path.write_text(SCHEMA_V2)
        assert main(["registry", "put", "inv", str(path),
                     "--url", live, "--json"]) == 0
        out = capsys.readouterr().out
        assert '"mode": "delta"' in out
        assert main(["registry", "list", "--url", live]) == 0
        assert "latest=v2" in capsys.readouterr().out
        assert main(["registry", "check", "inv@2", "--class-name", "A",
                     "--url", live]) == 0
        assert main(["registry", "check", "inv@2", "--formula",
                     "A and not B", "--url", live]) == 1
        assert main(["registry", "get", "inv", "--version", "1",
                     "--url", live]) == 0
        assert '"version": 1' in capsys.readouterr().out
        assert main(["registry", "delete", "inv", "--version", "1",
                     "--url", live]) == 0
        assert main(["registry", "get", "inv", "--version", "1",
                     "--url", live]) == 67
        assert main(["registry", "check", "ghost", "--class-name", "A",
                     "--url", live]) == 67

    def test_unreachable_server_exits_69(self, capsys):
        from repro.cli import main

        assert main(["registry", "list",
                     "--url", "http://127.0.0.1:9"]) == 69
