"""Spawn-context pickling: the executor's payloads must survive spawn.

The process pool uses whatever start method the platform defaults to —
``fork`` on Linux, ``spawn`` on macOS and Windows.  Under ``spawn`` the
child starts from a fresh interpreter and everything crossing the
boundary is pickled: the worker function by qualified name, its argument,
and its return value.  These tests round-trip the three types that
actually cross — :class:`~repro.engine.artifact.CompiledSchema`,
:class:`~repro.engine.executor.QueryOutcome`, and
:class:`~repro.engine.config.EngineConfig` — through a real
``spawn``-context pool, so a field that silently became unpicklable
(a lock, a tracer, a lambda) fails here instead of on someone's laptop.
"""

import multiprocessing

import pytest

from repro.engine import EngineConfig, Pipeline
from repro.engine.artifact import _spawn_echo
from repro.engine.executor import QueryError, QueryOutcome
from repro.engine.stats import PipelineStats
from repro.parser.parser import parse_schema

SCHEMA = """
class Person endclass
class Student isa Person and not Professor endclass
class Professor isa Person endclass
"""


@pytest.fixture(scope="module")
def spawn_pool():
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("spawn")
    try:
        pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
    except (OSError, ValueError) as exc:  # pragma: no cover - sandboxes
        pytest.skip(f"cannot create a spawn-context pool: {exc}")
    with pool:
        # One warm-up round trip so per-test timings exclude interpreter
        # startup (and so an unusable pool skips instead of failing).
        try:
            pool.submit(_spawn_echo, 1).result(timeout=120)
        except Exception as exc:  # pragma: no cover - sandboxes
            pytest.skip(f"spawn-context pool is unusable here: {exc}")
        yield pool


def spawn_round_trip(pool, value):
    return pool.submit(_spawn_echo, value).result(timeout=120)


def test_compiled_schema_round_trips_under_spawn(spawn_pool):
    artifact = Pipeline(parse_schema(SCHEMA), EngineConfig()).compile()
    clone = spawn_round_trip(spawn_pool, artifact)
    assert clone.fingerprint == artifact.fingerprint
    assert clone.config_fingerprint == artifact.config_fingerprint
    assert clone.system.size() == artifact.system.size()
    # The clone is a working snapshot, not just structurally equal bytes:
    # a rehydrated pipeline must reach a support verdict.
    pipeline = Pipeline.from_artifact(clone)
    assert pipeline.support.support is not None


def test_query_outcome_round_trips_under_spawn(spawn_pool):
    outcome = QueryOutcome(
        index=3, verdict=None,
        error=QueryError("BudgetExceeded", "deadline", 75, steps=12),
        duration=0.5, steps=12,
        stats=PipelineStats(classes=2, schema_size=4, compound_classes=3,
                            expansion_size=9, psi_unknowns=3,
                            psi_constraints=2, psi_size=7, lp_rounds=1,
                            supported=3, timings={"support": 0.1}),
        schema_fingerprint="ff" * 32)
    clone = spawn_round_trip(spawn_pool, outcome)
    assert clone == outcome
    assert clone.timed_out and clone.error.exit_code == 75


def test_engine_config_round_trips_under_spawn(spawn_pool, tmp_path):
    config = EngineConfig(strategy="strategic", size_limit=500,
                          lp_backend="exact",
                          artifact_dir=str(tmp_path / "cache"))
    clone = spawn_round_trip(spawn_pool, config)
    assert clone == config
    assert clone.artifact_dir == config.artifact_dir


def test_sparse_backend_config_round_trips_under_spawn(spawn_pool):
    """The sparse backend crosses the spawn boundary the same way every
    backend does: as its registry spec inside EngineConfig, revalidated by
    the child's ``__post_init__`` — including a parameterized auto spec."""
    for spec in ("exact-sparse", "auto:limit=500"):
        config = EngineConfig(lp_backend=spec)
        clone = spawn_round_trip(spawn_pool, config)
        assert clone == config
        assert clone.lp_backend == spec


def test_sparse_backend_instance_round_trips_under_spawn(spawn_pool):
    """The backend object itself is stateless and must pickle too — the
    executor's shard payloads may embed resolved backends."""
    from repro.linear.backends import SparseExactBackend

    clone = spawn_round_trip(spawn_pool, SparseExactBackend())
    assert clone.name == "exact-sparse"
    assert clone.capabilities().closed_form
