"""Property-based tests for structural invariants across the library.

These complement the oracle cross-checks in ``test_oracle_crosscheck.py``:
rather than validating verdicts, they validate *invariants* — round trips,
soundness of the preselection tables, validity of synthesized models and
rational witnesses — on hypothesis-generated inputs.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.parser.parser import parse_schema
from repro.parser.printer import render_schema
from repro.reasoner.implication import implied_disjoint, implied_subsumption
from repro.reasoner.satisfiability import Reasoner
from repro.semantics.checker import is_model
from repro.synthesis.builder import synthesize_model

from tests.strategies import CLASS_NAMES, rich_schemas  # noqa: E402


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rich_schemas())
def test_parser_printer_round_trip(schema):
    """render → parse is the identity on the AST."""
    assert parse_schema(render_schema(schema)) == schema


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rich_schemas(), st.sampled_from(CLASS_NAMES))
def test_synthesized_models_are_valid(schema, target):
    """Whenever the reasoner says satisfiable, synthesis must deliver a
    model that the independent checker accepts and that populates the
    target."""
    reasoner = Reasoner(schema)
    if not reasoner.is_satisfiable(target):
        return
    report = synthesize_model(reasoner, target=target, max_objects=20_000)
    assert is_model(report.interpretation, schema)
    assert report.interpretation.class_ext(target)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rich_schemas())
def test_preselection_tables_are_sound(schema):
    """Everything the tables derive must be a logical consequence."""
    from repro.expansion.tables import build_tables

    tables = build_tables(schema)
    reasoner = Reasoner(schema)
    for c1 in CLASS_NAMES:
        for c2 in CLASS_NAMES:
            if c1 != c2 and tables.are_disjoint(c1, c2):
                assert implied_disjoint(reasoner, c1, c2)
            if tables.includes(c1, c2):
                assert implied_subsumption(reasoner, c1, c2) or c1 == c2
    for name in tables.empty_classes:
        assert not reasoner.is_satisfiable(name)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rich_schemas())
def test_exact_witness_satisfies_every_disequation(schema):
    """The stored rational witness is a genuine solution of Ψ_S."""
    from repro.expansion.expansion import build_expansion
    from repro.linear.support import acceptable_support

    result = acceptable_support(build_expansion(schema), backend="exact")
    for constraint in result.system.constraints:
        total = sum((coeff * result.solution[var]
                     for var, coeff in constraint.coefficients), Fraction(0))
        assert total <= 0, constraint.origin
    # Acceptability: positive compounds have positive endpoints.
    for index, value in result.solution.items():
        if value > 0:
            for endpoint in result.system.endpoints_of(index):
                assert result.solution[endpoint] > 0


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 3), st.integers(2, 3), st.integers(0, 100))
def test_hierarchy_closed_form_matches_enumeration(depth, branching, seed):
    """Section 4.4's closed form equals the general enumeration on
    generated hierarchies."""
    from repro.expansion.enumerate import naive_compound_classes
    from repro.expansion.graph import hierarchy_compound_classes
    from repro.workloads.generators import hierarchy_schema

    schema = hierarchy_schema(depth, branching, seed=seed)
    closed = hierarchy_compound_classes(schema)
    assert closed is not None
    if len(schema.class_symbols) <= 13:
        assert set(closed) == set(naive_compound_classes(schema))
    assert len(closed) == len(schema.class_symbols) + 1


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rich_schemas(), st.sampled_from(CLASS_NAMES), st.sampled_from(CLASS_NAMES))
def test_subsumption_is_transitive_on_satisfiables(schema, a, b):
    """Sanity of the implication layer: subsumption composes."""
    reasoner = Reasoner(schema)
    for c in CLASS_NAMES:
        if (implied_subsumption(reasoner, a, b)
                and implied_subsumption(reasoner, b, c)):
            assert implied_subsumption(reasoner, a, c)
