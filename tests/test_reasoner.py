"""Unit tests for the Reasoner facade and logical implication."""

import pytest

from repro.core.cardinality import Card, INFINITY
from repro.core.errors import ReasoningError
from repro.core.formulas import Lit
from repro.core.schema import Attr, AttrRef, ClassDef, Schema, inv
from repro.parser.parser import parse_schema
from repro.reasoner.implication import (
    classify,
    implied_attribute_bounds,
    implied_disjoint,
    implied_equivalence,
    implied_subsumption,
    implies_isa,
)
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.paper_schemas import figure1_schema, figure2_schema


class TestSatisfiability:
    def test_unknown_class_rejected(self):
        reasoner = Reasoner(Schema([ClassDef("A")]))
        with pytest.raises(ReasoningError):
            reasoner.is_satisfiable("Nope")

    def test_contradiction(self):
        reasoner = Reasoner(parse_schema("""
            class Student isa Person and not Professor endclass
            class TA isa Student and Professor endclass
        """))
        assert not reasoner.is_satisfiable("TA")
        assert reasoner.is_satisfiable("Student")

    def test_formula_satisfiability(self):
        reasoner = Reasoner(parse_schema("""
            class Student isa Person and not Professor endclass
            class Professor isa Person endclass
        """))
        assert reasoner.is_formula_satisfiable(Lit("Person") & ~Lit("Student"))
        assert not reasoner.is_formula_satisfiable(
            Lit("Student") & Lit("Professor"))

    def test_formula_with_unknown_class_rejected(self):
        reasoner = Reasoner(Schema([ClassDef("A")]))
        with pytest.raises(ReasoningError):
            reasoner.is_formula_satisfiable(Lit("A") & Lit("Unknown"))

    def test_coherence_report(self):
        reasoner = Reasoner(parse_schema("""
            class Good endclass
            class Bad isa Good and not Good endclass
        """))
        report = reasoner.check_coherence()
        assert not report.is_coherent
        assert report.unsatisfiable == ("Bad",)
        assert "Bad" in str(report)

    def test_satisfiable_unsatisfiable_lists(self):
        reasoner = Reasoner(parse_schema(
            "class Bad isa Good and not Good endclass"))
        assert reasoner.unsatisfiable_classes() == ["Bad"]
        assert reasoner.satisfiable_classes() == ["Good"]

    def test_figures_coherent(self):
        assert Reasoner(figure1_schema()).check_coherence().is_coherent
        assert Reasoner(figure2_schema()).check_coherence().is_coherent

    def test_stats_keys(self):
        stats = Reasoner(figure2_schema()).stats().to_json()
        for key in ("classes", "compound_classes", "psi_unknowns",
                    "psi_constraints", "supported"):
            assert key in stats

    def test_witness_counts_positive_on_support(self):
        reasoner = Reasoner(parse_schema("class A isa B endclass"))
        counts = reasoner.witness_counts()
        assert all(v > 0 for v in counts.values())


class TestCardinalityDrivenUnsatisfiability:
    """The paper's motivating interaction: isa + cardinality refinement."""

    def test_inherited_bounds_conflict(self):
        # Sub inherits a:(2,2) and declares a:(0,1): merged (2,1) is empty.
        schema = Schema([
            ClassDef("Sup", attributes=[Attr("a", Card(2, 2), "T")]),
            ClassDef("Sub", isa="Sup", attributes=[Attr("a", Card(0, 1), "T")]),
            ClassDef("T"),
        ])
        reasoner = Reasoner(schema)
        assert reasoner.is_satisfiable("Sup")
        assert not reasoner.is_satisfiable("Sub")

    def test_inverse_functionality_conflict(self):
        # Every C must point at a D (1,1); every D is pointed at by exactly
        # five Cs ((inv a) ∈ (5,5)); fine: |C| = 5|D|.
        schema = Schema([
            ClassDef("C", isa=~Lit("D"),
                     attributes=[Attr("a", Card(1, 1), "D")]),
            ClassDef("D", attributes=[Attr(inv("a"), Card(5, 5), "C")]),
        ])
        reasoner = Reasoner(schema)
        assert reasoner.is_satisfiable("C")
        assert reasoner.is_satisfiable("D")


class TestImplication:
    def test_figure2_subsumptions(self):
        reasoner = Reasoner(figure2_schema())
        assert implied_subsumption(reasoner, "Grad_Student", "Person")
        assert implied_subsumption(reasoner, "Adv_Course", "Course")
        assert not implied_subsumption(reasoner, "Person", "Student")

    def test_figure2_disjointness(self):
        reasoner = Reasoner(figure2_schema())
        assert implied_disjoint(reasoner, "Student", "Professor")
        assert implied_disjoint(reasoner, "Grad_Student", "Professor")
        assert not implied_disjoint(reasoner, "Student", "Person")

    def test_implies_isa_formula(self):
        reasoner = Reasoner(figure2_schema())
        assert implies_isa(reasoner, "Grad_Student",
                           Lit("Person") & ~Lit("Professor"))

    def test_implies_isa_unknown_symbol_rejected(self):
        reasoner = Reasoner(Schema([ClassDef("A")]))
        with pytest.raises(ReasoningError):
            implies_isa(reasoner, "A", Lit("Unknown"))

    def test_unsatisfiable_class_subsumed_by_everything(self):
        reasoner = Reasoner(parse_schema("""
            class Bad isa Good and not Good endclass
            class Other endclass
        """))
        assert implied_subsumption(reasoner, "Bad", "Other")

    def test_derived_equivalence(self):
        # B ⊑ A and every A is a B because A ⊑ B via isa chain both ways
        # through an intermediate contradiction-free cycle is impossible in
        # CAR isa (acyclic by construction here), so use union structure:
        # A isa B, B isa A is expressible and makes them equivalent.
        reasoner = Reasoner(parse_schema("""
            class A isa B endclass
            class B isa A endclass
        """))
        assert implied_equivalence(reasoner, "A", "B")

    def test_classification(self):
        reasoner = Reasoner(figure2_schema())
        result = classify(reasoner)
        assert ("Grad_Student", "Student") in result.subsumptions
        assert ("Grad_Student", "Person") in result.subsumptions
        assert result.parents("Grad_Student") == ["Student"]
        assert not result.unsatisfiable

    def test_classification_flags_unsatisfiable(self):
        reasoner = Reasoner(parse_schema(
            "class Bad isa Good and not Good endclass"))
        result = classify(reasoner)
        assert result.unsatisfiable == ("Bad",)

    def test_classification_groups(self):
        reasoner = Reasoner(parse_schema("""
            class A isa B endclass
            class B isa A endclass
        """))
        result = classify(reasoner)
        assert ("A", "B") in result.equivalence_groups


class TestImpliedAttributeBounds:
    def test_figure2_bounds(self):
        reasoner = Reasoner(figure2_schema())
        assert implied_attribute_bounds(
            reasoner, "Course", AttrRef("taught_by")) == Card(1, 1)
        assert implied_attribute_bounds(
            reasoner, "Professor", inv("taught_by")) == Card(1, 2)
        assert implied_attribute_bounds(
            reasoner, "Grad_Student", inv("taught_by")) == Card(0, 1)

    def test_unconstrained_gives_any(self):
        reasoner = Reasoner(Schema([
            ClassDef("C", attributes=[Attr("a", Card(0, INFINITY), "D")]),
            ClassDef("D"),
        ]))
        bounds = implied_attribute_bounds(reasoner, "C", AttrRef("a"))
        assert bounds == Card(0, INFINITY)

    def test_no_partner_forces_zero(self):
        # a-fillers of C must be in the unsatisfiable class E, but the lower
        # bound is 0, so C survives with necessarily zero links.
        schema = Schema([
            ClassDef("C", attributes=[Attr("a", Card(0, 5),
                                           Lit("E") & ~Lit("E"))]),
            ClassDef("E"),
        ])
        reasoner = Reasoner(schema)
        assert reasoner.is_satisfiable("C")
        assert implied_attribute_bounds(reasoner, "C", AttrRef("a")) == Card(0, 0)

    def test_unsatisfiable_class_returns_none(self):
        reasoner = Reasoner(parse_schema(
            "class Bad isa Good and not Good endclass"))
        assert implied_attribute_bounds(reasoner, "Bad", AttrRef("a")) is None
