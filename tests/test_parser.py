"""Unit tests for the lexer, parser, and pretty-printer."""

import pytest

from repro.core.cardinality import Card, INFINITY
from repro.core.errors import ParseError
from repro.core.formulas import Lit, TOP
from repro.core.schema import AttrRef, inv
from repro.parser.lexer import tokenize
from repro.parser.parser import parse_formula, parse_schema
from repro.parser.printer import render_formula, render_schema


class TestLexer:
    def test_simple_tokens(self):
        kinds = [t.kind for t in tokenize("class C endclass")]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "EOF"]

    def test_numbers_and_punctuation(self):
        texts = [t.text for t in tokenize("(1, 25)")]
        assert texts == ["(", "1", ",", "25", ")", ""]

    def test_line_comments(self):
        tokens = tokenize("-- a comment\nclass # other\n")
        assert [t.text for t in tokens] == ["class", ""]

    def test_unicode_connectives(self):
        texts = [t.text for t in tokenize("A ∧ ¬B ∨ C ∞")]
        assert texts == ["A", "and", "not", "B", "or", "C", "inf", ""]

    def test_positions(self):
        token = tokenize("class\n  C")[1]
        assert (token.line, token.column) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("class @")


class TestFormulaParsing:
    def test_atom(self):
        assert parse_formula("Person") == Lit("Person") & TOP

    def test_negation(self):
        formula = parse_formula("not Person")
        assert formula.satisfied_by(set())
        assert not formula.satisfied_by({"Person"})

    def test_cnf_precedence(self):
        # or binds tighter than and.
        formula = parse_formula("A or B and C")
        assert len(formula) == 2
        assert formula.satisfied_by({"B", "C"})
        assert not formula.satisfied_by({"A"})

    def test_parenthesized_clause(self):
        formula = parse_formula("(A or B) and not C")
        assert formula.satisfied_by({"A"})
        assert not formula.satisfied_by({"A", "C"})

    def test_top(self):
        assert parse_formula("top") == TOP

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("A B")


class TestClassParsing:
    def test_minimal_class(self):
        schema = parse_schema("class Person endclass")
        assert schema.definition("Person").isa == TOP

    def test_isa(self):
        schema = parse_schema("class Student isa Person and not Professor endclass")
        isa = schema.definition("Student").isa
        assert isa.satisfied_by({"Person"})
        assert not isa.satisfied_by({"Person", "Professor"})

    def test_attributes_with_card(self):
        schema = parse_schema("""
            class Person
                attributes name : (1, 1) String;
                           nick : (0, inf) String
            endclass
        """)
        specs = schema.definition("Person").attribute_specs
        assert specs[AttrRef("name")].card == Card(1, 1)
        assert specs[AttrRef("nick")].card == Card(0, INFINITY)

    def test_attribute_without_card_defaults_to_any(self):
        schema = parse_schema("class Person attributes name : String endclass")
        spec = schema.definition("Person").attribute_specs[AttrRef("name")]
        assert spec.card == Card(0, INFINITY)

    def test_star_upper_bound(self):
        schema = parse_schema("class C attributes a : (2, *) D endclass")
        assert schema.definition("C").attribute_specs[AttrRef("a")].card == Card(2)

    def test_inverse_attribute(self):
        schema = parse_schema(
            "class Professor attributes (inv taught_by) : (1, 2) Course endclass")
        specs = schema.definition("Professor").attribute_specs
        assert inv("taught_by") in specs

    def test_union_filler(self):
        schema = parse_schema(
            "class Course attributes taught_by : (1, 1) Professor or Grad endclass")
        filler = schema.definition("Course").attribute_specs[AttrRef("taught_by")].filler
        assert filler.satisfied_by({"Professor"})
        assert filler.satisfied_by({"Grad"})

    def test_participates(self):
        schema = parse_schema("""
            relation R(u, v) endrelation
            class C participates in R[u] : (1, 6) endclass
        """)
        spec = schema.definition("C").participation_specs[("R", "u")]
        assert spec.card == Card(1, 6)

    def test_participation_requires_card(self):
        with pytest.raises(ParseError):
            parse_schema("""
                relation R(u) endrelation
                class C participates in R[u] : D endclass
            """)

    def test_missing_endclass(self):
        with pytest.raises(ParseError):
            parse_schema("class C isa A")


class TestRelationParsing:
    def test_roles(self):
        schema = parse_schema("relation Exam(of, by, in) endrelation")
        assert schema.relation("Exam").roles == ("of", "by", "in")

    def test_in_keyword_as_role(self):
        schema = parse_schema("""
            relation Exam(of, by, in)
                constraints (in : Course)
            endrelation
        """)
        clause = schema.relation("Exam").constraints[0]
        assert clause.literals[0].role == "in"

    def test_disjunctive_role_clause(self):
        schema = parse_schema("""
            relation Enrollment(enrolled_in, enrolls)
                constraints
                    (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
            endrelation
        """)
        clause = schema.relation("Enrollment").constraints[0]
        assert len(clause) == 2

    def test_multiple_clauses(self):
        schema = parse_schema("""
            relation R(u, v)
                constraints (u : A); (v : B)
            endrelation
        """)
        assert len(schema.relation("R").constraints) == 2


class TestRoundTrip:
    def test_figure2_round_trip(self):
        from repro.workloads.paper_schemas import figure2_schema

        schema = figure2_schema()
        assert parse_schema(render_schema(schema)) == schema

    def test_figure1_round_trip(self):
        from repro.workloads.paper_schemas import figure1_schema

        schema = figure1_schema()
        assert parse_schema(render_schema(schema)) == schema

    def test_formula_round_trip(self):
        source = "(A or not B) and C and (not D or E)"
        formula = parse_formula(source)
        assert parse_formula(render_formula(formula)) == formula

    def test_top_round_trip(self):
        assert parse_formula(render_formula(TOP)) == TOP
