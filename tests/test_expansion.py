"""Unit tests for compound objects, tables, clusters, and the expansion."""

import pytest

from repro.core.cardinality import Card
from repro.core.formulas import Lit
from repro.core.schema import (
    Attr,
    AttrRef,
    ClassDef,
    Part,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)
from repro.expansion.compound import (
    CompoundAttribute,
    CompoundRelation,
    is_consistent_compound_attribute,
    is_consistent_compound_class,
    is_consistent_compound_relation,
    merged_attr_card,
    merged_participation_card,
)
from repro.expansion.enumerate import (
    compound_classes,
    naive_compound_classes,
    strategic_compound_classes,
)
from repro.expansion.expansion import build_expansion
from repro.expansion.graph import (
    clusters,
    hierarchy_compound_classes,
    hierarchy_forest,
    impose_cluster_disjointness,
    schema_graph,
)
from repro.expansion.tables import build_tables
from repro.parser.parser import parse_schema


def university() -> Schema:
    return parse_schema("""
        class Person endclass
        class Professor isa Person endclass
        class Student isa Person and not Professor endclass
        class Grad_Student isa Student endclass
    """)


class TestCompoundClasses:
    def test_empty_compound_consistent(self):
        assert is_consistent_compound_class(university(), frozenset())

    def test_member_isa_must_be_realized(self):
        schema = university()
        assert is_consistent_compound_class(
            schema, frozenset({"Student", "Person"}))
        # Student without Person violates Student's isa.
        assert not is_consistent_compound_class(schema, frozenset({"Student"}))
        # Student with Professor violates the negative literal.
        assert not is_consistent_compound_class(
            schema, frozenset({"Student", "Person", "Professor"}))

    def test_naive_enumeration_counts(self):
        schema = university()
        consistent = naive_compound_classes(schema)
        # All 16 subsets filtered by the constraints above.
        assert frozenset() in consistent
        assert frozenset({"Person"}) in consistent
        assert frozenset({"Grad_Student", "Student", "Person"}) in consistent
        assert frozenset({"Grad_Student"}) not in consistent
        for members in consistent:
            assert is_consistent_compound_class(schema, members)

    def test_strategic_equals_naive_on_single_cluster(self):
        schema = university()
        assert set(strategic_compound_classes(schema)) == set(
            naive_compound_classes(schema))

    def test_strategy_dispatch(self):
        schema = university()
        for strategy in ("auto", "naive", "strategic", "hierarchy"):
            result = compound_classes(schema, strategy)
            assert frozenset({"Person"}) in result
        with pytest.raises(ValueError):
            compound_classes(schema, "bogus")


class TestCompoundAttributes:
    def schema(self) -> Schema:
        return Schema([
            ClassDef("Course",
                     attributes=[Attr("taught_by", Card(1, 1),
                                      Lit("Professor") | Lit("Grad"))]),
            ClassDef("Professor",
                     attributes=[Attr(inv("taught_by"), Card(1, 2), "Course")]),
            ClassDef("Grad"),
        ])

    def test_forward_filler_must_be_realized(self):
        schema = self.schema()
        good = CompoundAttribute("taught_by", frozenset({"Course"}),
                                 frozenset({"Professor"}))
        assert is_consistent_compound_attribute(schema, good)
        bad = CompoundAttribute("taught_by", frozenset({"Course"}),
                                frozenset({"Course"}))
        assert not is_consistent_compound_attribute(schema, bad)

    def test_inverse_filler_must_be_realized(self):
        schema = self.schema()
        # Professor at the right end demands Course at the left end.
        bad = CompoundAttribute("taught_by", frozenset({"Grad"}),
                                frozenset({"Professor"}))
        assert not is_consistent_compound_attribute(schema, bad)

    def test_inconsistent_endpoint_rejected(self):
        schema = parse_schema("class A isa not A endclass")  # A always empty
        compound = CompoundAttribute("x", frozenset({"A"}), frozenset())
        assert not is_consistent_compound_attribute(schema, compound)


class TestCompoundRelations:
    def schema(self) -> Schema:
        return Schema(
            [ClassDef("Student"), ClassDef("Course"), ClassDef("Grad",
                                                               isa="Student")],
            [RelationDef("Enrollment", ("enrolled_in", "enrolls"), [
                RoleClause(RoleLiteral("enrolled_in", "Course")),
                RoleClause(RoleLiteral("enrolls", "Student")),
            ])])

    def test_role_clauses_enforced(self):
        schema = self.schema()
        good = CompoundRelation("Enrollment", {
            "enrolled_in": frozenset({"Course"}),
            "enrolls": frozenset({"Student"})})
        assert is_consistent_compound_relation(schema, good)
        bad = CompoundRelation("Enrollment", {
            "enrolled_in": frozenset({"Student"}),
            "enrolls": frozenset({"Student"})})
        assert not is_consistent_compound_relation(schema, bad)

    def test_wrong_roles_rejected(self):
        schema = self.schema()
        wrong = CompoundRelation("Enrollment", {"enrolled_in": frozenset()})
        assert not is_consistent_compound_relation(schema, wrong)

    def test_getitem(self):
        compound = CompoundRelation("R", {"u": frozenset({"A"}), "v": frozenset()})
        assert compound["u"] == frozenset({"A"})
        with pytest.raises(KeyError):
            compound["w"]


class TestMergedCards:
    def test_umax_vmin(self):
        schema = Schema([
            ClassDef("Student", participates=[Part("R", "u", Card(1, 6))]),
            ClassDef("Grad", isa="Student",
                     participates=[Part("R", "u", Card(2, 3))]),
        ], [RelationDef("R", ("u",))])
        merged = merged_participation_card(
            schema, frozenset({"Student", "Grad"}), "R", "u")
        assert merged == Card(2, 3)

    def test_absent_returns_none(self):
        schema = university()
        assert merged_attr_card(schema, frozenset({"Person"}), AttrRef("x")) is None

    def test_conflicting_merge_is_empty(self):
        schema = Schema([
            ClassDef("A", attributes=[Attr("a", Card(2, 3))]),
            ClassDef("B", attributes=[Attr("a", Card(0, 1))]),
        ])
        merged = merged_attr_card(schema, frozenset({"A", "B"}), AttrRef("a"))
        assert merged is not None and merged.is_empty()


class TestTables:
    def test_unit_inclusion_closure(self):
        schema = university()
        tables = build_tables(schema)
        assert tables.includes("Grad_Student", "Person")
        assert tables.includes("Grad_Student", "Grad_Student")
        assert not tables.includes("Person", "Grad_Student")

    def test_derived_disjointness(self):
        tables = build_tables(university())
        # Grad_Student ⊑ Student ⟂ Professor.
        assert tables.are_disjoint("Grad_Student", "Professor")
        assert not tables.are_disjoint("Student", "Person")

    def test_empty_class_detection(self):
        schema = parse_schema("""
            class A isa B and not B endclass
            class B endclass
        """)
        tables = build_tables(schema)
        assert "A" in tables.empty_classes

    def test_empty_propagates_to_subclasses(self):
        schema = parse_schema("""
            class A isa B and not B endclass
            class B endclass
            class C isa A endclass
        """)
        assert "C" in build_tables(schema).empty_classes

    def test_admissible(self):
        tables = build_tables(university())
        assert tables.admissible({"Student", "Person"})
        assert not tables.admissible({"Student"})  # misses superclass Person
        assert not tables.admissible({"Student", "Person", "Professor"})


class TestGraphAndClusters:
    def test_isa_arcs(self):
        schema = university()
        graph = schema_graph(schema)
        assert "Person" in graph["Student"]

    def test_disconnected_clusters(self):
        schema = parse_schema("""
            class A isa B endclass
            class B endclass
            class C isa D endclass
            class D endclass
        """)
        comps = clusters(schema)
        assert {frozenset({"A", "B"}), frozenset({"C", "D"})} == set(comps)

    def test_attribute_fillers_connect(self):
        schema = parse_schema("""
            class A attributes x : (1, 1) B or C endclass
            class B endclass
            class C endclass
        """)
        comps = clusters(schema)
        assert len(comps) == 1

    def test_role_groups_connect(self):
        schema = parse_schema("""
            class A participates in R[u] : (1, 1) endclass
            class B endclass
            relation R(u, v) constraints (u : B) endrelation
        """)
        graph = schema_graph(schema)
        assert "B" in graph["A"]

    def test_disjointness_removes_arcs(self):
        schema = parse_schema("""
            class A isa B and not B endclass
            class B endclass
        """)
        tables = build_tables(schema)
        graph = schema_graph(schema, tables)
        assert "B" not in graph["A"]

    def test_impose_cluster_disjointness_adds_negatives(self):
        schema = parse_schema("""
            class A isa B endclass
            class B endclass
            class C endclass
        """)
        modified = impose_cluster_disjointness(schema)
        isa = modified.definition("A").isa
        assert not isa.satisfied_by({"B", "C"})
        assert isa.satisfied_by({"B"})


class TestHierarchies:
    def hierarchy(self) -> Schema:
        return parse_schema("""
            class Root endclass
            class L isa Root and not R endclass
            class R isa Root and not L endclass
            class LL isa L and not LR endclass
            class LR isa L and not LL endclass
        """)

    def test_forest_detection(self):
        parent = hierarchy_forest(self.hierarchy())
        assert parent == {"Root": None, "L": "Root", "R": "Root",
                          "LL": "L", "LR": "L"}

    def test_forest_rejects_unions(self):
        schema = parse_schema("class A isa B or C endclass")
        assert hierarchy_forest(schema) is None

    def test_forest_rejects_multiple_parents(self):
        schema = parse_schema("class A isa B and C endclass")
        assert hierarchy_forest(schema) is None

    def test_forest_rejects_cycles(self):
        schema = parse_schema("""
            class A isa B endclass
            class B isa A endclass
        """)
        assert hierarchy_forest(schema) is None

    def test_closed_form_matches_naive(self):
        schema = self.hierarchy()
        closed = hierarchy_compound_classes(schema)
        assert closed is not None
        assert set(closed) == set(naive_compound_classes(schema))
        # One compound class per class, plus the empty one (Section 4.4).
        assert len(closed) == len(schema.class_symbols) + 1

    def test_closed_form_refuses_without_sibling_disjointness(self):
        schema = parse_schema("""
            class Root endclass
            class L isa Root endclass
            class R isa Root endclass
        """)
        # {L, R, Root} is consistent here, so the closed form must refuse.
        assert hierarchy_compound_classes(schema) is None


class TestExpansionBuild:
    def test_figure2_expansion_sizes(self):
        from repro.workloads.paper_schemas import figure2_schema

        expansion = build_expansion(figure2_schema())
        assert len(expansion.compound_classes) == 30
        assert expansion.compound_relations["Exam"] == ()
        assert len(expansion.compound_relations["Enrollment"]) > 0
        assert expansion.natt and expansion.nrel

    def test_unconstrained_pairs_skipped_by_default(self):
        schema = Schema([
            ClassDef("A", attributes=[Attr("x", Card(0), "B")]),  # (0, ∞)
            ClassDef("B"),
        ])
        expansion = build_expansion(schema)
        assert expansion.compound_attributes["x"] == ()
        verbatim = build_expansion(schema, include_unconstrained=True)
        assert len(verbatim.compound_attributes["x"]) > 0

    def test_size_limit_guard(self):
        from repro.core.errors import ReasoningError

        classes = [ClassDef(f"C{i}") for i in range(12)]
        with pytest.raises(ReasoningError):
            build_expansion(Schema(classes), "naive", size_limit=100)

    def test_summary_mentions_counts(self):
        from repro.workloads.paper_schemas import figure2_schema

        text = build_expansion(figure2_schema()).summary()
        assert "compound classes" in text
        assert "Enrollment" in text


class TestBinaryDeduction:
    """The Krom-closure upgrade of the preselection tables (§4.3 /[Dal92])."""

    def schema(self):
        # B's isa has the two-literal clause (D or not C); A ⊑ B and A ⊑ C,
        # so the closure should resolve: A implies D.
        return parse_schema("""
            class A isa B and C endclass
            class B isa D or not C endclass
            class C endclass
            class D endclass
        """)

    def test_binary_resolution_derives_inclusion(self):
        tables = build_tables(self.schema(), deduction="binary")
        assert tables.includes("A", "D")

    def test_unit_level_misses_it(self):
        tables = build_tables(self.schema(), deduction="unit")
        assert not tables.includes("A", "D")

    def test_binary_refutation(self):
        schema = parse_schema("""
            class A isa B and C and not D endclass
            class B isa D or not C endclass
            class C endclass
            class D endclass
        """)
        tables = build_tables(schema, deduction="binary")
        assert "A" in tables.empty_classes
        assert tables.why_empty("A") is not None
        # And the reasoner agrees that A is genuinely unsatisfiable.
        from repro.reasoner.satisfiability import Reasoner

        assert not Reasoner(schema).is_satisfiable("A")

    def test_binary_disjointness(self):
        schema = parse_schema("""
            class A isa B endclass
            class B isa not D or not C endclass
            class E isa C and D endclass
            class C endclass
            class D endclass
        """)
        tables = build_tables(schema, deduction="binary")
        # E implies C and D; A implies (¬D ∨ ¬C): joint contradiction —
        # the pairwise clash check sees A's closure vs E's only through
        # resolved literals, so verify against the reasoner either way.
        from repro.reasoner.implication import implied_disjoint
        from repro.reasoner.satisfiability import Reasoner

        reasoner = Reasoner(schema)
        if tables.are_disjoint("A", "E"):
            assert implied_disjoint(reasoner, "A", "E")

    def test_bad_deduction_level_rejected(self):
        with pytest.raises(ValueError):
            build_tables(self.schema(), deduction="fancy")

    def test_implied_literals_exposed(self):
        from repro.core.formulas import Lit

        tables = build_tables(self.schema(), deduction="binary")
        literals = tables.implied_literals("A")
        assert Lit("A") in literals
        assert Lit("D") in literals
