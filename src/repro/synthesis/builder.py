"""Model synthesis: turn an acceptable solution of ``Ψ_S`` into a database
state.

Theorem 3.3's proof direction "acceptable integer solution ⇒ model" is made
constructive here:

1. **Objects** — materialize ``Var(C̄)`` objects per supported compound
   class (an integer witness scaled as requested); each object's class
   memberships are exactly its compound class.
2. **Attributes** — for each attribute, place links by solving a
   degree-constrained bipartite realization (feasible flow): per-object
   intervals come from ``Natt``, and a link between two objects is allowed
   iff the corresponding compound attribute is consistent.
3. **Relations** — materialize ``Var(R̄)`` labeled tuples per supported
   compound relation, drawing role fillers from the blocks with
   max-remaining-quota greedy balancing so that every object's
   participation count lands inside its ``Nrel`` interval, with a small
   perturbation search to keep tuples distinct.
4. **Verification** — the result is checked with the independent model
   checker; on failure the whole construction retries at double the scale
   (homogeneity guarantees large-enough multiples realize).

The output is always a verified model; :class:`SynthesisError` is raised
when the scale/attempt budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.cardinality import ANY, Card
from ..core.errors import SynthesisError
from ..core.schema import AttrRef
from ..expansion.compound import (
    CompoundAttribute,
    CompoundRelation,
    is_consistent_compound_attribute,
)
from ..reasoner.satisfiability import Reasoner
from ..semantics.checker import check_model
from ..semantics.interpretation import Interpretation, LabeledTuple
from .bipartite import realize_bipartite

__all__ = ["synthesize_model", "SynthesisReport"]

#: Guard against witnesses whose integer scaling explodes.
DEFAULT_MAX_OBJECTS = 50_000

#: Guard against attribute realizations whose candidate-pair count (and
#: hence flow-network memory) explodes; ~2M pairs is a few hundred MB.
MAX_PAIR_CANDIDATES = 2_000_000


@dataclass(frozen=True)
class SynthesisReport:
    """A synthesized, verified model plus construction statistics."""

    interpretation: Interpretation
    scale: int
    attempts: int
    n_objects: int


def synthesize_model(reasoner: Reasoner, target: Optional[str] = None, *,
                     scale: int = 1, max_attempts: int = 5,
                     max_objects: int = DEFAULT_MAX_OBJECTS) -> SynthesisReport:
    """Build a finite model of the reasoner's schema.

    When ``target`` is given, the model is guaranteed to populate that class
    (raising :class:`SynthesisError` if it is unsatisfiable).  ``scale``
    multiplies the base integer witness; the construction retries with
    doubled scales up to ``max_attempts`` times when a realization step
    fails.
    """
    if target is not None and not reasoner.is_satisfiable(target):
        raise SynthesisError(f"class {target!r} is unsatisfiable; no model "
                             "can populate it")
    failures: list[str] = []
    current = scale
    for attempt in range(1, max_attempts + 1):
        try:
            interpretation = _build_once(reasoner, current, max_objects)
        except _RetryAtLargerScale as retry:
            failures.append(f"scale {current}: {retry}")
            current *= 2
            continue
        violations = check_model(interpretation, reasoner.schema)
        if violations:
            failures.append(
                f"scale {current}: verifier found {len(violations)} violations "
                f"(first: {violations[0]})")
            current *= 2
            continue
        if target is not None and not interpretation.class_ext(target):
            failures.append(f"scale {current}: target {target} empty")
            current *= 2
            continue
        return SynthesisReport(interpretation, current, attempt,
                               len(interpretation.universe))
    raise SynthesisError(
        "model synthesis failed after retries:\n  " + "\n  ".join(failures))


class _RetryAtLargerScale(Exception):
    """Internal signal: the current scale admits no realization."""


def _build_once(reasoner: Reasoner, scale: int,
                max_objects: int) -> Interpretation:
    expansion = reasoner.expansion
    schema = reasoner.schema
    counts = reasoner.witness_counts(scale)

    total_objects = sum(max(counts.get(members, 0), 0)
                        for members in expansion.compound_classes)
    if total_objects > max_objects:
        raise SynthesisError(
            f"witness requires {total_objects} objects, above the limit of "
            f"{max_objects}; pass a larger max_objects to allow it")

    blocks: dict[frozenset, list] = {}
    universe: list = []
    for members in expansion.compound_classes:
        n = counts.get(members, 0)
        if n <= 0:
            continue
        label = "+".join(sorted(members)) if members else "none"
        block = [f"{label}#{i}" for i in range(n)]
        blocks[members] = block
        universe.extend(block)
    if not universe:
        universe = ["witness#0"]  # the everything-empty model

    classes = {
        name: frozenset(
            obj for members, block in blocks.items() if name in members
            for obj in block)
        for name in schema.class_symbols
    }

    attributes = {
        attr: _realize_attribute(reasoner, attr, blocks)
        for attr in sorted(schema.attribute_symbols)
    }
    relations = {
        rdef.name: _realize_relation(reasoner, rdef.name, blocks, counts)
        for rdef in schema.relation_definitions
    }
    return Interpretation(universe, classes, attributes, relations)


# ----------------------------------------------------------------------
# Attributes: degree-constrained bipartite realization
# ----------------------------------------------------------------------
def _realize_attribute(reasoner: Reasoner, attr: str,
                       blocks: dict) -> frozenset:
    expansion = reasoner.expansion
    schema = reasoner.schema
    direct = AttrRef(attr)
    inverse = AttrRef(attr, inverse=True)

    compound_of: dict = {}
    objects: list = []
    for members, block in blocks.items():
        for obj in block:
            compound_of[obj] = members
            objects.append(obj)
    if not objects:
        return frozenset()

    pair_ok: dict[tuple[frozenset, frozenset], bool] = {}

    def allowed(o1, o2) -> bool:
        key = (compound_of[o1], compound_of[o2])
        cached = pair_ok.get(key)
        if cached is None:
            cached = is_consistent_compound_attribute(
                schema, CompoundAttribute(attr, key[0], key[1]),
                endpoints_consistent=True)
            pair_ok[key] = cached
        return cached

    def left_bounds(obj) -> Card:
        return expansion.natt.get((compound_of[obj], direct), ANY)

    def right_bounds(obj) -> Card:
        return expansion.natt.get((compound_of[obj], inverse), ANY)

    # Fast path: nothing demands links for this attribute.
    if all(left_bounds(o).lower == 0 for o in objects) and \
            all(right_bounds(o).lower == 0 for o in objects):
        return frozenset()

    if len(objects) * len(objects) > MAX_PAIR_CANDIDATES:
        raise SynthesisError(
            f"attribute {attr}: {len(objects)}² candidate pairs exceed the "
            f"memory guard of {MAX_PAIR_CANDIDATES}; reduce the witness "
            "scale or the schema's cardinalities")

    realized = realize_bipartite(objects, objects, left_bounds, right_bounds,
                                 allowed)
    if realized is None:
        raise _RetryAtLargerScale(f"attribute {attr}: no degree-constrained "
                                  "realization at this scale")
    return frozenset(realized)


# ----------------------------------------------------------------------
# Relations: quota-balanced tuple construction
# ----------------------------------------------------------------------
def _realize_relation(reasoner: Reasoner, relation: str, blocks: dict,
                      counts: dict) -> frozenset:
    expansion = reasoner.expansion
    compounds = [
        (compound, counts.get(compound, 0))
        for compound in expansion.compound_relations.get(relation, ())
        if counts.get(compound, 0) > 0
    ]
    if not compounds:
        return frozenset()

    roles = reasoner.schema.relation(relation).roles

    # Per (role, compound class) quota pools, balanced over the block.
    totals: dict[tuple[str, frozenset], int] = {}
    for compound, m in compounds:
        for role in roles:
            key = (role, compound[role])
            totals[key] = totals.get(key, 0) + m
    quotas: dict[tuple[str, frozenset], dict] = {}
    for (role, members), total in totals.items():
        block = blocks.get(members, [])
        if not block:
            raise _RetryAtLargerScale(
                f"relation {relation}: empty block for a used compound class")
        base, extra = divmod(total, len(block))
        quotas[(role, members)] = {
            obj: base + (1 if i < extra else 0)
            for i, obj in enumerate(block)
        }

    used: set[LabeledTuple] = set()
    for compound, m in compounds:
        for _ in range(m):
            tup = _draw_tuple(compound, roles, quotas, used)
            if tup is None:
                raise _RetryAtLargerScale(
                    f"relation {relation}: could not keep tuples distinct")
            used.add(tup)
    return frozenset(used)


def _draw_tuple(compound: CompoundRelation, roles, quotas,
                used: set) -> Optional[LabeledTuple]:
    """Pick one object per role by max-remaining quota, perturbing choices
    when the resulting labeled tuple already exists."""

    def candidates(role) -> list:
        pool = quotas[(role, compound[role])]
        ranked = sorted(pool.items(), key=lambda item: (-item[1], str(item[0])))
        return [obj for obj, remaining in ranked if remaining > 0]

    per_role = {role: candidates(role) for role in roles}
    if any(not per_role[role] for role in roles):
        return None

    choice = {role: per_role[role][0] for role in roles}
    tup = LabeledTuple(choice)
    if tup not in used:
        _consume(choice, compound, quotas)
        return tup
    # Perturb one role at a time, preferring later roles, keeping balance as
    # intact as possible.
    for role in reversed(roles):
        for alternative in per_role[role][1:]:
            trial = dict(choice)
            trial[role] = alternative
            tup = LabeledTuple(trial)
            if tup not in used:
                _consume(trial, compound, quotas)
                return tup
    return None


def _consume(choice: dict, compound: CompoundRelation, quotas) -> None:
    for role, obj in choice.items():
        quotas[(role, compound[role])][obj] -= 1
