"""Degree-constrained bipartite realization on top of the flow layer.

Given left objects with out-degree intervals, right objects with in-degree
intervals, and an allowed-pair predicate, find a *simple* bipartite edge set
(each pair used at most once) meeting every interval — or report that none
exists.  This is the combinatorial core of placing attribute links in a
synthesized database state.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from ..core.cardinality import Card
from .flows import feasible_flow_with_lower_bounds

__all__ = ["realize_bipartite"]

Obj = Hashable


def realize_bipartite(
        left: Sequence[Obj],
        right: Sequence[Obj],
        left_bounds: Callable[[Obj], Card],
        right_bounds: Callable[[Obj], Card],
        allowed: Callable[[Obj, Obj], bool],
) -> Optional[set[tuple[Obj, Obj]]]:
    """A set of allowed ``(left, right)`` pairs meeting all degree intervals.

    ``left_bounds(o)`` / ``right_bounds(o)`` give the out-/in-degree interval
    of each object; unbounded uppers are honored.  Returns None when no
    realization exists (the caller typically retries at a larger scale).
    """
    # Node layout: 0 = source, 1 = sink, then left objects, then right.
    n_nodes = 2 + len(left) + len(right)
    left_index = {obj: 2 + i for i, obj in enumerate(left)}
    right_index = {obj: 2 + len(left) + i for i, obj in enumerate(right)}

    edges: list[tuple[int, int, int, Optional[int]]] = []
    pair_slots: list[tuple[Obj, Obj]] = []
    for source in left:
        for target in right:
            if allowed(source, target):
                edges.append((left_index[source], right_index[target], 0, 1))
                pair_slots.append((source, target))
    n_pair_edges = len(edges)

    for obj in left:
        card = left_bounds(obj)
        edges.append((0, left_index[obj], card.lower, card.upper))
    for obj in right:
        card = right_bounds(obj)
        edges.append((right_index[obj], 1, card.lower, card.upper))
    # Close the circulation: sink back to source, unbounded.
    edges.append((1, 0, 0, None))

    flows = feasible_flow_with_lower_bounds(n_nodes, edges)
    if flows is None:
        return None
    return {pair_slots[i] for i in range(n_pair_edges) if flows[i] > 0}
