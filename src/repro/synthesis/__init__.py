"""Model synthesis: construct verified database states from LP witnesses."""

from .bipartite import realize_bipartite
from .builder import SynthesisReport, synthesize_model
from .flows import FlowNetwork, feasible_flow_with_lower_bounds

__all__ = [
    "realize_bipartite",
    "SynthesisReport", "synthesize_model",
    "FlowNetwork", "feasible_flow_with_lower_bounds",
]
