"""Integral network flows: Dinic's algorithm plus lower-bounded feasibility.

Model synthesis reduces the placement of attribute edges (and binary
relation tuples) to a *feasible flow with lower bounds*: every object must
emit/absorb a number of links inside its ``Natt``/``Nrel`` interval, each
concrete link can be used at most once.  Dinic's algorithm yields integral
flows, which is exactly what a database state needs.

The lower-bound reduction is the textbook one: an edge ``(u, v)`` with
bounds ``[l, c]`` becomes an edge with capacity ``c - l`` while ``l`` units
are forced through a super-source/super-sink pair; the original problem is
feasible iff the transformed max-flow saturates the forced demand.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..core.errors import SynthesisError

__all__ = ["FlowNetwork", "feasible_flow_with_lower_bounds"]

#: Effectively-infinite capacity for unbounded edges.
UNBOUNDED_CAPACITY = 1 << 40


@dataclass(slots=True)
class _Edge:
    target: int
    capacity: int
    flow: int
    reverse_index: int


class FlowNetwork:
    """A directed flow network with integral capacities (Dinic's algorithm)."""

    def __init__(self, n_nodes: int):
        if n_nodes <= 0:
            raise SynthesisError("flow network needs at least one node")
        self._adjacency: list[list[_Edge]] = [[] for _ in range(n_nodes)]

    @property
    def n_nodes(self) -> int:
        return len(self._adjacency)

    def add_node(self) -> int:
        self._adjacency.append([])
        return len(self._adjacency) - 1

    def add_edge(self, source: int, target: int, capacity: int) -> tuple[int, int]:
        """Add an edge; returns an ``(node, index)`` handle for flow lookup."""
        if capacity < 0:
            raise SynthesisError(f"negative capacity {capacity}")
        forward = _Edge(target, capacity, 0, len(self._adjacency[target]))
        backward = _Edge(source, 0, 0, len(self._adjacency[source]))
        self._adjacency[source].append(forward)
        self._adjacency[target].append(backward)
        return source, len(self._adjacency[source]) - 1

    def flow_on(self, handle: tuple[int, int]) -> int:
        node, index = handle
        return self._adjacency[node][index].flow

    # ------------------------------------------------------------------
    def max_flow(self, source: int, sink: int) -> int:
        """Dinic's algorithm; returns the value of a maximum integral flow."""
        if source == sink:
            raise SynthesisError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return total
            iterators = [0] * self.n_nodes
            while True:
                pushed = self._dfs_push(source, sink, UNBOUNDED_CAPACITY,
                                        level, iterators)
                if pushed == 0:
                    break
                total += pushed

    def _bfs_levels(self, source: int, sink: int) -> list[int]:
        level = [-1] * self.n_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._adjacency[node]:
                if edge.capacity - edge.flow > 0 and level[edge.target] < 0:
                    level[edge.target] = level[node] + 1
                    queue.append(edge.target)
        return level

    def _dfs_push(self, node: int, sink: int, limit: int,
                  level: list[int], iterators: list[int]) -> int:
        if node == sink:
            return limit
        adjacency = self._adjacency[node]
        while iterators[node] < len(adjacency):
            edge = adjacency[iterators[node]]
            residual = edge.capacity - edge.flow
            if residual > 0 and level[edge.target] == level[node] + 1:
                pushed = self._dfs_push(edge.target, sink,
                                        min(limit, residual), level, iterators)
                if pushed > 0:
                    edge.flow += pushed
                    self._adjacency[edge.target][edge.reverse_index].flow -= pushed
                    return pushed
            iterators[node] += 1
        return 0


def feasible_flow_with_lower_bounds(
        n_nodes: int,
        edges: list[tuple[int, int, int, Optional[int]]],
) -> Optional[list[int]]:
    """Find an integral flow meeting per-edge bounds, or None.

    ``edges`` holds ``(source, target, lower, upper)`` tuples over node ids
    ``0 … n_nodes-1`` (``upper=None`` meaning unbounded).  This solves the
    *circulation* form: conservation at every node.  Callers model sources
    and sinks by adding an explicit return edge.

    Returns per-edge flow values aligned with ``edges``.
    """
    network = FlowNetwork(n_nodes + 2)
    super_source = n_nodes
    super_sink = n_nodes + 1
    imbalance = [0] * n_nodes
    handles = []
    for source, target, lower, upper in edges:
        if lower < 0:
            raise SynthesisError(f"negative lower bound {lower}")
        capacity = (UNBOUNDED_CAPACITY if upper is None else upper) - lower
        if capacity < 0:
            return None
        handles.append(network.add_edge(source, target, capacity))
        imbalance[source] -= lower
        imbalance[target] += lower
    demand = 0
    for node, value in enumerate(imbalance):
        if value > 0:
            network.add_edge(super_source, node, value)
            demand += value
        elif value < 0:
            network.add_edge(node, super_sink, -value)
    if network.max_flow(super_source, super_sink) < demand:
        return None
    return [network.flow_on(handle) + edges[i][2]
            for i, handle in enumerate(handles)]
