"""repro — the CAR data model and its schema reasoner.

A faithful, production-quality reproduction of *Making Object-Oriented
Schemas More Expressive* (Calvanese & Lenzerini, PODS 1994): the CAR data
model (Classes, Attributes, Relations), its finite-model semantics, and the
sound & complete two-phase reasoning technique (schema expansion + linear
disequations) for class satisfiability and logical implication.

Quickstart::

    from repro import parse_schema, Reasoner

    schema = parse_schema('''
        class Student isa Person and not Professor endclass
        class TA isa Student and Professor endclass
    ''')
    reasoner = Reasoner(schema)
    assert not reasoner.is_satisfiable("TA")
"""

from .core.budget import NULL_BUDGET, Budget, current_budget, use_budget
from .core.cardinality import ANY, AT_LEAST_ONE, AT_MOST_ONE, EXACTLY_ONE, INFINITY, Card
from .core.errors import (
    BudgetExceeded,
    CarError,
    LinearSystemError,
    ParseError,
    ReasoningError,
    SchemaError,
    SemanticsError,
    SynthesisError,
)
from .core.formulas import TOP, Clause, Formula, Lit, as_formula, conjunction, disjunction
from .core.schema import (
    Attr,
    AttrRef,
    AttributeSpec,
    ClassDef,
    Part,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)
from .engine import (
    BatchExecutor,
    BatchQuery,
    EngineConfig,
    Pipeline,
    QueryError,
    QueryOutcome,
    SchemaSession,
    SessionCacheInfo,
    schema_fingerprint,
)
from .expansion.expansion import Expansion, build_expansion
from .parser.parser import parse_formula, parse_schema
from .parser.printer import render_schema
from .reasoner.implication import (
    Classification,
    classify,
    implied_attribute_bounds,
    implied_disjoint,
    implied_equivalence,
    implied_subsumption,
    implies_isa,
)
from .reasoner.satisfiability import CoherenceReport, Reasoner
from .reasoner.transform import ReificationResult, reify_nonbinary_relations
from .core.builder import SchemaBuilder
from .reasoner.explain import Explanation, explain_unsatisfiability
from .semantics.checker import Violation, check_model, is_model
from .semantics.database import Database, IntegrityError
from .semantics.interpretation import Interpretation, LabeledTuple
from .synthesis.builder import SynthesisReport, synthesize_model

__version__ = "1.0.0"

__all__ = [
    # cardinalities
    "ANY", "AT_LEAST_ONE", "AT_MOST_ONE", "EXACTLY_ONE", "INFINITY", "Card",
    # errors
    "BudgetExceeded", "CarError", "LinearSystemError", "ParseError",
    "ReasoningError", "SchemaError", "SemanticsError", "SynthesisError",
    # budgets
    "NULL_BUDGET", "Budget", "current_budget", "use_budget",
    # formulae
    "TOP", "Clause", "Formula", "Lit", "as_formula", "conjunction",
    "disjunction",
    # schema AST
    "Attr", "AttrRef", "AttributeSpec", "ClassDef", "Part",
    "ParticipationSpec", "RelationDef", "RoleClause", "RoleLiteral",
    "Schema", "inv",
    # pipeline
    "Expansion", "build_expansion",
    # engine layer
    "BatchExecutor", "BatchQuery", "EngineConfig", "Pipeline", "QueryError",
    "QueryOutcome", "SchemaSession", "SessionCacheInfo",
    "schema_fingerprint",
    # concrete syntax
    "parse_formula", "parse_schema", "render_schema",
    # reasoning
    "Classification", "classify", "implied_attribute_bounds",
    "implied_disjoint", "implied_equivalence", "implied_subsumption",
    "implies_isa", "CoherenceReport", "Reasoner",
    "ReificationResult", "reify_nonbinary_relations",
    # semantics
    "Violation", "check_model", "is_model", "Interpretation", "LabeledTuple",
    "Database", "IntegrityError",
    # convenience layers
    "SchemaBuilder", "Explanation", "explain_unsatisfiability",
    "SynthesisReport", "synthesize_model",
    "__version__",
]
