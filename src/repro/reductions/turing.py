"""A deterministic single-tape Turing machine — substrate for Theorem 4.1.

The EXPTIME-hardness proof of the paper reduces Turing machine acceptance to
class satisfiability.  This module provides the machine model the reduction
consumes: deterministic control, a single tape over a finite alphabet with a
blank symbol, and bounded runs (the reduction unrolls time and space bounds
explicitly, so the simulator exposes exactly bounded execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..core.errors import CarError

__all__ = ["TuringMachine", "Configuration", "StepOutcome"]

#: Head movement encoding in transition tables.
LEFT, STAY, RIGHT = -1, 0, 1


class MachineError(CarError):
    """An ill-formed machine description or run request."""


@dataclass(frozen=True)
class Configuration:
    """One instantaneous description: state, head position, tape contents."""

    state: str
    head: int
    tape: tuple[str, ...]

    def symbol_under_head(self) -> str:
        return self.tape[self.head]

    def __str__(self) -> str:
        cells = ["[" + s + "]" if i == self.head else s
                 for i, s in enumerate(self.tape)]
        return f"{self.state}: {' '.join(cells)}"


@dataclass(frozen=True)
class StepOutcome:
    """Result of a bounded run."""

    accepted: bool
    halted: bool
    steps: int
    trace: tuple[Configuration, ...]


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic Turing machine.

    ``transitions`` maps ``(state, symbol)`` to ``(state', symbol', move)``
    with ``move`` in ``{-1, 0, +1}``.  Missing entries halt the machine
    (rejecting unless the state is the accept state).  The accept state is a
    sink: any transition out of it is rejected at construction so that
    "accepts within ``t`` steps" is monotone in ``t``.
    """

    states: frozenset[str]
    alphabet: frozenset[str]
    blank: str
    transitions: Mapping[tuple[str, str], tuple[str, str, int]]
    initial: str
    accept: str

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise MachineError(f"initial state {self.initial!r} not declared")
        if self.accept not in self.states:
            raise MachineError(f"accept state {self.accept!r} not declared")
        if self.blank not in self.alphabet:
            raise MachineError(f"blank symbol {self.blank!r} not in alphabet")
        for (state, symbol), (nstate, nsymbol, move) in self.transitions.items():
            if state == self.accept:
                raise MachineError("the accept state must be a halting sink")
            if state not in self.states or nstate not in self.states:
                raise MachineError(f"transition uses undeclared state: "
                                   f"({state}, {symbol})")
            if symbol not in self.alphabet or nsymbol not in self.alphabet:
                raise MachineError(f"transition uses undeclared symbol: "
                                   f"({state}, {symbol})")
            if move not in (LEFT, STAY, RIGHT):
                raise MachineError(f"move must be -1/0/+1, got {move}")

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, transitions: Mapping[tuple[str, str], tuple[str, str, int]],
              initial: str, accept: str, blank: str = "_",
              extra_states: Sequence[str] = (),
              extra_symbols: Sequence[str] = ()) -> "TuringMachine":
        """Infer state and alphabet sets from the transition table."""
        states = {initial, accept, *extra_states}
        symbols = {blank, *extra_symbols}
        for (state, symbol), (nstate, nsymbol, _) in transitions.items():
            states.update((state, nstate))
            symbols.update((symbol, nsymbol))
        return cls(frozenset(states), frozenset(symbols), blank,
                   dict(transitions), initial, accept)

    # ------------------------------------------------------------------
    def initial_configuration(self, word: str, space: int) -> Configuration:
        """The start configuration on a tape of exactly ``space`` cells."""
        if len(word) > space:
            raise MachineError(
                f"input of length {len(word)} exceeds space bound {space}")
        for symbol in word:
            if symbol not in self.alphabet:
                raise MachineError(f"input symbol {symbol!r} not in alphabet")
        tape = tuple(word) + (self.blank,) * (space - len(word))
        return Configuration(self.initial, 0, tape)

    def step(self, config: Configuration) -> Optional[Configuration]:
        """One transition; None when the machine halts (no rule or the head
        would leave the bounded tape)."""
        rule = self.transitions.get((config.state, config.symbol_under_head()))
        if rule is None:
            return None
        state, symbol, move = rule
        head = config.head + move
        if head < 0 or head >= len(config.tape):
            return None
        tape = list(config.tape)
        tape[config.head] = symbol
        return Configuration(state, head, tuple(tape))

    def run(self, word: str, time: int, space: int) -> StepOutcome:
        """Execute at most ``time`` steps within ``space`` tape cells."""
        if time < 0 or space <= 0:
            raise MachineError("time must be >= 0 and space positive")
        config = self.initial_configuration(word, space)
        trace = [config]
        for step_count in range(time):
            if config.state == self.accept:
                return StepOutcome(True, True, step_count, tuple(trace))
            successor = self.step(config)
            if successor is None:
                return StepOutcome(False, True, step_count, tuple(trace))
            config = successor
            trace.append(config)
        accepted = config.state == self.accept
        halted = accepted or self.transitions.get(
            (config.state, config.symbol_under_head())) is None
        return StepOutcome(accepted, halted, time, tuple(trace))

    def accepts(self, word: str, time: int, space: int) -> bool:
        """Does the machine reach its accept state within the bounds?"""
        return self.run(word, time, space).accepted


# ----------------------------------------------------------------------
# Example machines used by tests and benchmarks
# ----------------------------------------------------------------------
def starts_with_one() -> TuringMachine:
    """Accepts binary words whose first symbol is ``1``."""
    return TuringMachine.build(
        {("q0", "1"): ("acc", "1", STAY)},
        initial="q0", accept="acc", extra_symbols=("0", "1"))


def parity_machine() -> TuringMachine:
    """Accepts binary words containing an even number of ``1`` symbols."""
    return TuringMachine.build(
        {
            ("even", "0"): ("even", "0", RIGHT),
            ("even", "1"): ("odd", "1", RIGHT),
            ("odd", "0"): ("odd", "0", RIGHT),
            ("odd", "1"): ("even", "1", RIGHT),
            ("even", "_"): ("acc", "_", STAY),
        },
        initial="even", accept="acc", extra_symbols=("0", "1"))


def never_accepts() -> TuringMachine:
    """Loops in place forever (within bounds), never accepting."""
    return TuringMachine.build(
        {
            ("q0", "0"): ("q0", "0", STAY),
            ("q0", "1"): ("q0", "1", STAY),
            ("q0", "_"): ("q0", "_", STAY),
        },
        initial="q0", accept="acc", extra_symbols=("0", "1"))


__all__ += ["starts_with_one", "parity_machine", "never_accepts",
            "MachineError", "LEFT", "STAY", "RIGHT"]
