"""Theorem 4.2: Intersection Pattern in union-free, negation-free CAR.

Problem SP9 of [GJ79] (*Intersection Pattern*): given a symmetric ``n × n``
matrix ``A`` of nonnegative integers, do sets ``S_1 … S_n`` exist with
``|S_i ∩ S_j| = A[i][j]`` (and ``|S_i| = A[i][i]``)?  The paper reduces it
to class satisfiability of union-free, negation-free schemas, exploiting
that cardinality constraints can emulate disjointness; the published proof
is a one-line sketch.

Our encoding uses the *bijection gadget* the sketch hinges on: a witness
class ``W`` with exact-count attributes ``g_i : (a_ii, a_ii) C_i`` combined
with inverse constraints ``(inv g_i) : (1, 1) W`` on ``C_i``, so that in any
model ``|C_i| = a_ii · |W|``; intersection classes ``D_ij isa C_i ∧ C_j``
get the same treatment, pinning ``|D_ij| = a_ij · |W|`` with
``D_ij ⊆ C_i ∩ C_j``.

Faithfulness note (recorded in DESIGN.md): class satisfiability cannot pin
``|W| = 1`` (CAR constraints are scale-invariant), and ``D_ij`` only bounds
the intersection from *below*.  Hence ``W`` is satisfiable iff for some
``k ≥ 1`` there are sets with ``|S_i| = k · a_ii`` and
``|S_i ∩ S_j| ≥ k · a_ij`` — the direction "IP solvable ⇒ W satisfiable"
is exact (tests certify it by building the model from an IP solution),
while the converse holds for the relaxed pattern.  The fully faithful
NP-hardness witness for general CAR is the 3SAT reduction next door.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from ..core.cardinality import Card
from ..core.errors import CarError
from ..core.formulas import Lit, conjunction
from ..core.schema import Attr, ClassDef, Schema, inv
from ..semantics.interpretation import Interpretation

__all__ = ["IntersectionPattern", "pattern_to_schema", "solution_to_model",
           "pattern_solvable_bruteforce"]


@dataclass(frozen=True)
class IntersectionPattern:
    """A symmetric matrix instance of [GJ79] problem SP9."""

    matrix: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.matrix)
        for row in self.matrix:
            if len(row) != n:
                raise CarError("intersection pattern matrix must be square")
        for i in range(n):
            for j in range(n):
                if self.matrix[i][j] != self.matrix[j][i]:
                    raise CarError("intersection pattern matrix must be symmetric")
                if self.matrix[i][j] < 0:
                    raise CarError("intersection pattern entries are nonnegative")

    @property
    def size(self) -> int:
        return len(self.matrix)

    @classmethod
    def of(cls, rows: Sequence[Sequence[int]]) -> "IntersectionPattern":
        return cls(tuple(tuple(row) for row in rows))


def _set_class(i: int) -> str:
    return f"C{i}"


def _pair_class(i: int, j: int) -> str:
    return f"D{i}_{j}"


def pattern_to_schema(pattern: IntersectionPattern) -> Schema:
    """The union-free, negation-free, relation-free schema of the reduction.

    The designated class to test for satisfiability is ``W``.
    """
    n = pattern.size
    w_attrs = []
    classes: list[ClassDef] = []
    for i in range(n):
        w_attrs.append(Attr(f"g{i}", Card(pattern.matrix[i][i],
                                          pattern.matrix[i][i]),
                            _set_class(i)))
        classes.append(ClassDef(
            _set_class(i),
            attributes=[Attr(inv(f"g{i}"), Card(1, 1), "W")]))
    for i, j in combinations(range(n), 2):
        name = _pair_class(i, j)
        w_attrs.append(Attr(f"h{i}_{j}", Card(pattern.matrix[i][j],
                                              pattern.matrix[i][j]),
                            name))
        classes.append(ClassDef(
            name,
            isa=conjunction([Lit(_set_class(i)), Lit(_set_class(j))]),
            attributes=[Attr(inv(f"h{i}_{j}"), Card(1, 1), "W")]))
    classes.append(ClassDef("W", attributes=w_attrs))
    return Schema(classes)


def solution_to_model(pattern: IntersectionPattern,
                      sets: Sequence[frozenset]) -> Interpretation:
    """Build the database state an IP solution induces (forward direction).

    ``sets`` must satisfy the pattern exactly; the returned interpretation
    is a model of :func:`pattern_to_schema` with ``W`` nonempty, which the
    tests verify with the independent checker.
    """
    n = pattern.size
    if len(sets) != n:
        raise CarError(f"expected {n} sets, got {len(sets)}")
    witness = "w"
    universe = {witness}
    for s in sets:
        universe.update(s)
    classes = {"W": {witness}}
    attributes: dict[str, set] = {}
    for i in range(n):
        classes[_set_class(i)] = set(sets[i])
        attributes[f"g{i}"] = {(witness, x) for x in sets[i]}
    for i, j in combinations(range(n), 2):
        members = sorted(sets[i] & sets[j], key=repr)[: pattern.matrix[i][j]]
        classes[_pair_class(i, j)] = set(members)
        attributes[f"h{i}_{j}"] = {(witness, x) for x in members}
    return Interpretation(universe, classes, attributes)


def pattern_solvable_bruteforce(pattern: IntersectionPattern,
                                max_universe: int = 6) -> bool:
    """Exact SP9 decision by exhaustive search over a bounded universe.

    A solution over any universe can be relabeled into
    ``{0, …, Σ a_ii - 1}``, so ``max_universe`` ≥ that sum is complete;
    smaller bounds give a sound but incomplete check used for tests.
    """
    from itertools import product

    n = pattern.size
    need = sum(pattern.matrix[i][i] for i in range(n))
    universe = list(range(min(max_universe, max(need, 1))))
    subsets = []
    for i in range(n):
        size = pattern.matrix[i][i]
        if size > len(universe):
            return False
        subsets.append([frozenset(c) for c in combinations(universe, size)])
    for choice in product(*subsets):
        if all(len(choice[i] & choice[j]) == pattern.matrix[i][j]
               for i, j in combinations(range(n), 2)):
            return True
    return False
