"""Theorem 4.1: reducing bounded Turing machine acceptance to class
satisfiability.

The paper's EXPTIME-hardness proof encodes TM computations in a CAR schema:
classes for time instants and tape positions, an attribute for the temporal
successor, and isa-clauses that force the deterministic transition relation.
The published proof is a sketch whose succinct (binary-counter) gadget is
not reconstructable from the paper; we implement the same machinery over
*explicitly bounded* computations (unary time bound ``T``, space bound
``S``), which exercises the identical constructs — clause gadgets,
``(1, 1)`` successor cardinalities, disjointness — and still exhibits the
exponential expansion growth the theorem is about (see DESIGN.md for the
substitution note).

Encoding (one object = one configuration):

* ``Conf_t``, ``t = 0 … T`` — the configuration's time stamp; pairwise
  disjoint; every ``Conf_t`` with ``t < T`` carries ``succ : (1, 1)
  Conf_{t+1}``; ``Conf_T isa State_<accept>`` so that only accepting runs
  can complete.
* ``State_q`` / ``Head_p`` / ``Sym_p_a`` — the control state, head
  position, and per-cell tape contents; each family is pairwise disjoint,
  each configuration must carry exactly one member per family (coverage
  clauses on every ``Conf_t``), and each family is confined to
  configurations (``isa Conf_0 ∨ … ∨ Conf_T``) so the expansion contains no
  junk combinations.
* Transition gadgets ``D_t_q_p_a`` — membership is forced exactly on
  configurations matching ``(q, p, a)`` via the clause
  ``Conf_t isa D ∨ ¬State_q ∨ ¬Head_p ∨ ¬Sym_p_a`` together with
  ``D isa Conf_t ∧ State_q ∧ Head_p ∧ Sym_p_a``; the gadget's
  ``succ : (1, 1) State_q' ∧ Head_{p+d} ∧ Sym_p_a'`` spec types the
  temporal successor.  A head move off the tape points at the provably
  empty ``Crash`` class.
* Carry gadgets ``K_t_p_b`` (``isa Conf_t ∧ Sym_p_b ∧ ¬Head_p``) copy
  untouched cells to the successor.

A designated class ``Init`` (the input configuration at time 0) is
satisfiable iff the machine accepts the input within the bounds — which the
tests verify against the simulator on both accepting and rejecting runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cardinality import Card
from ..core.errors import CarError
from ..core.formulas import Clause, Formula, Lit, conjunction, disjunction
from ..core.schema import Attr, ClassDef, Schema
from .turing import TuringMachine

__all__ = ["TmReduction", "machine_to_schema"]


@dataclass(frozen=True)
class TmReduction:
    """The produced schema plus the class to test for satisfiability."""

    schema: Schema
    target: str  # satisfiable iff the machine accepts within the bounds
    machine: TuringMachine
    word: str
    time: int
    space: int


def _conf(t: int) -> str:
    return f"Conf_{t}"


def _state(q: str) -> str:
    return f"State_{q}"


def _head(p: int) -> str:
    return f"Head_{p}"


def _sym(p: int, a: str) -> str:
    return f"Sym_{p}_{a}"


def machine_to_schema(machine: TuringMachine, word: str, time: int,
                      space: int) -> TmReduction:
    """Build the CAR schema encoding the bounded run of ``machine`` on
    ``word``.

    Raises :class:`~repro.core.errors.CarError` when the input does not fit
    the space bound.
    """
    if len(word) > space:
        raise CarError(f"input of length {len(word)} exceeds space {space}")
    # Complete the transition table with a rejecting sink: a machine that
    # halts without accepting must not leave the successor state of the
    # encoding unconstrained (that would let the schema "accept" freely).
    # The completed machine has the same bounded acceptance behaviour.
    reject = "RejSink"
    while reject in machine.states:
        reject += "_"
    symbols = sorted(machine.alphabet)
    states = sorted(machine.states | {reject})
    transitions = dict(machine.transitions)
    for q in states:
        if q == machine.accept:
            continue
        for a in symbols:
            transitions.setdefault((q, a), (reject, a, 0))
    positions = range(space)
    times = range(time + 1)
    conf_names = [_conf(t) for t in times]
    confinement = disjunction(conf_names)

    classes: list[ClassDef] = []

    # Crash: a provably empty class, the target of off-tape moves.
    classes.append(ClassDef("Crash", isa=~Lit("Crash")))

    # State / Head / Sym families: pairwise disjoint, confined to Conf.
    for q in states:
        isa = conjunction(
            [Clause((Lit(_state(other), positive=False),))
             for other in states if other != q] + [confinement])
        classes.append(ClassDef(_state(q), isa))
    for p in positions:
        isa = conjunction(
            [Clause((Lit(_head(other), positive=False),))
             for other in positions if other != p] + [confinement])
        classes.append(ClassDef(_head(p), isa))
    for p in positions:
        for a in symbols:
            isa = conjunction(
                [Clause((Lit(_sym(p, other), positive=False),))
                 for other in symbols if other != a] + [confinement])
            classes.append(ClassDef(_sym(p, a), isa))

    # Transition and carry gadgets.
    gadget_clauses: dict[int, list[Clause]] = {t: [] for t in times}
    for t in range(time):
        for (q, a), (nq, na, move) in sorted(transitions.items()):
            for p in positions:
                name = f"D_{t}_{q}_{p}_{a}"
                guard = conjunction([
                    Lit(_conf(t)), Lit(_state(q)), Lit(_head(p)), Lit(_sym(p, a)),
                ])
                np = p + move
                if 0 <= np < space:
                    filler = conjunction([
                        Lit(_state(nq)), Lit(_head(np)), Lit(_sym(p, na)),
                    ])
                else:
                    filler = Formula((Clause((Lit("Crash"),)),))
                classes.append(ClassDef(
                    name, guard,
                    attributes=[Attr("succ", Card(1, 1), filler)]))
                gadget_clauses[t].append(Clause((
                    Lit(name), Lit(_state(q), positive=False),
                    Lit(_head(p), positive=False),
                    Lit(_sym(p, a), positive=False))))
        for p in positions:
            for b in symbols:
                name = f"K_{t}_{p}_{b}"
                guard = conjunction([
                    Lit(_conf(t)), Lit(_sym(p, b)),
                ]) & Clause((Lit(_head(p), positive=False),))
                classes.append(ClassDef(
                    name, guard,
                    attributes=[Attr("succ", Card(1, 1), Lit(_sym(p, b)))]))
                gadget_clauses[t].append(Clause((
                    Lit(name), Lit(_sym(p, b), positive=False),
                    Lit(_head(p)))))

    # Configurations: coverage clauses, disjointness, gadget triggers, succ.
    for t in times:
        clauses: list[Clause] = []
        for other in times:
            if other != t:
                clauses.append(Clause((Lit(_conf(other), positive=False),)))
        clauses.append(disjunction([_state(q) for q in states]))
        clauses.append(disjunction([_head(p) for p in positions]))
        for p in positions:
            clauses.append(disjunction([_sym(p, a) for a in symbols]))
        clauses.extend(gadget_clauses[t])
        if t == time:
            clauses.append(Clause((Lit(_state(machine.accept)),)))
        attributes = []
        if t < time:
            attributes.append(Attr("succ", Card(1, 1), Lit(_conf(t + 1))))
        classes.append(ClassDef(_conf(t), Formula(tuple(clauses)),
                                attributes=attributes))

    # The initial configuration.
    init_parts = [Lit(_conf(0)), Lit(_state(machine.initial)), Lit(_head(0))]
    padded = list(word) + [machine.blank] * (space - len(word))
    for p, a in enumerate(padded):
        init_parts.append(Lit(_sym(p, a)))
    classes.append(ClassDef("Init", conjunction(init_parts)))

    return TmReduction(Schema(classes), "Init", machine, word, time, space)
