"""3SAT → CAR: the fully faithful NP-hardness companion witness.

For general CAR (clauses with negation allowed in isa parts), propositional
satisfiability embeds directly: each propositional variable becomes a class
symbol, each CNF clause becomes a class-clause in the isa part of a single
``World`` class, and an object of ``World`` *is* a truth assignment — its
class memberships.  ``World`` is satisfiable in the schema iff the CNF
formula is satisfiable, both directions exactly (verified in tests against
the bundled DPLL solver).

This complements the Intersection Pattern reduction: Theorem 4.2 concerns
the union-free/negation-free fragment (where the paper's own proof is only
sketched); this reduction certifies NP-hardness of full CAR end to end and
drives the scaling benchmark with instances of known ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.errors import CarError
from ..core.formulas import Clause, Formula, Lit
from ..core.schema import ClassDef, Schema

__all__ = ["CnfFormula", "cnf_to_schema", "dpll_satisfiable", "random_cnf"]

#: A CNF literal is (variable index ≥ 0, polarity); a clause a tuple of them.
CnfClause = tuple[tuple[int, bool], ...]


@dataclass(frozen=True)
class CnfFormula:
    """A propositional CNF formula over variables ``0 … n_vars - 1``."""

    n_vars: int
    clauses: tuple[CnfClause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                raise CarError("empty CNF clause (trivially unsatisfiable); "
                               "encode it explicitly if intended")
            for var, _ in clause:
                if not 0 <= var < self.n_vars:
                    raise CarError(f"literal variable {var} out of range")

    @classmethod
    def of(cls, n_vars: int, clauses: Sequence[Sequence[tuple[int, bool]]]
           ) -> "CnfFormula":
        return cls(n_vars, tuple(tuple(c) for c in clauses))


def _var_class(index: int) -> str:
    return f"V{index}"


def cnf_to_schema(formula: CnfFormula) -> Schema:
    """The CAR schema whose class ``World`` is satisfiable iff ``formula``
    is."""
    clauses = tuple(
        Clause(tuple(Lit(_var_class(var), positive) for var, positive in clause))
        for clause in formula.clauses
    )
    world = ClassDef("World", Formula(clauses))
    variables = [ClassDef(_var_class(i)) for i in range(formula.n_vars)]
    return Schema([world, *variables])


def dpll_satisfiable(formula: CnfFormula) -> Optional[dict[int, bool]]:
    """A compact DPLL solver: a satisfying assignment, or None.

    Used as the ground truth the reduction is verified against; unit
    propagation plus first-unassigned branching is ample for test sizes.
    """
    assignment: dict[int, bool] = {}

    def propagate(clauses) -> Optional[list]:
        changed = True
        while changed:
            changed = False
            remaining = []
            for clause in clauses:
                unassigned = []
                satisfied = False
                for var, polarity in clause:
                    value = assignment.get(var)
                    if value is None:
                        unassigned.append((var, polarity))
                    elif value == polarity:
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return None
                if len(unassigned) == 1:
                    var, polarity = unassigned[0]
                    assignment[var] = polarity
                    changed = True
                else:
                    remaining.append(clause)
            clauses = remaining
        return list(clauses)

    def search(clauses) -> bool:
        clauses = propagate(clauses)
        if clauses is None:
            return False
        if not clauses:
            return True
        var = next(v for v in range(formula.n_vars) if v not in assignment)
        snapshot = dict(assignment)
        for value in (True, False):
            assignment.clear()
            assignment.update(snapshot)
            assignment[var] = value
            if search(clauses):
                return True
        assignment.clear()
        assignment.update(snapshot)
        return False

    if not search(list(formula.clauses)):
        return None
    for var in range(formula.n_vars):
        assignment.setdefault(var, False)
    return dict(assignment)


def random_cnf(n_vars: int, n_clauses: int, seed: int = 0,
               width: int = 3) -> CnfFormula:
    """A random width-``width`` CNF formula (deterministic per seed)."""
    rng = random.Random(seed)
    clauses: list[CnfClause] = []
    for _ in range(n_clauses):
        variables = rng.sample(range(n_vars), min(width, n_vars))
        clauses.append(tuple((v, rng.random() < 0.5) for v in variables))
    return CnfFormula(n_vars, tuple(clauses))
