"""Hardness reductions: the machinery behind Theorems 4.1 and 4.2."""

from .intersection_pattern import (
    IntersectionPattern,
    pattern_solvable_bruteforce,
    pattern_to_schema,
    solution_to_model,
)
from .sat_reduction import CnfFormula, cnf_to_schema, dpll_satisfiable, random_cnf
from .tm_reduction import TmReduction, machine_to_schema
from .turing import (
    LEFT,
    RIGHT,
    STAY,
    Configuration,
    MachineError,
    StepOutcome,
    TuringMachine,
    never_accepts,
    parity_machine,
    starts_with_one,
)

__all__ = [
    "IntersectionPattern", "pattern_solvable_bruteforce", "pattern_to_schema",
    "solution_to_model",
    "CnfFormula", "cnf_to_schema", "dpll_satisfiable", "random_cnf",
    "TmReduction", "machine_to_schema",
    "LEFT", "RIGHT", "STAY", "Configuration", "MachineError", "StepOutcome",
    "TuringMachine", "never_accepts", "parity_machine", "starts_with_one",
]
