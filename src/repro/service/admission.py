"""Admission control: bounded concurrency with a bounded wait queue.

The reasoning pipeline is pure CPU work with EXPTIME-hard worst cases
(Theorem 4.1), so a service that admits every request melts the moment
traffic exceeds the cores.  The :class:`AdmissionController` enforces the
classic two-bound shape:

* at most ``max_inflight`` requests *execute* concurrently;
* at most ``max_queue`` more may *wait* for a slot, each for at most
  ``queue_timeout`` seconds;
* everything beyond that is rejected immediately — the caller turns the
  :class:`AdmissionRejected` into an HTTP 429 with a ``Retry-After`` hint.

Rejecting at the door is the point: a bounded queue converts overload
into fast, explicit backpressure instead of unbounded latency, and the
reasoner never sees work the service cannot afford to finish.

All state lives behind one :class:`threading.Condition`; the controller
is the *only* synchronization the request path needs above the session's
own LRU lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["AdmissionController", "AdmissionRejected", "AdmissionStats"]


class AdmissionRejected(Exception):
    """The controller declined a request (queue full or wait timed out).

    ``retry_after`` is the server's hint, in whole seconds, for when a
    retry is likely to be admitted; ``reason`` distinguishes an instant
    queue-full rejection from a queued request whose patience ran out.
    """

    def __init__(self, message: str, *, retry_after: int, reason: str):
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


@dataclass(frozen=True)
class AdmissionStats:
    """A consistent snapshot of the controller's counters and occupancy."""

    admitted: int
    rejected_queue_full: int
    rejected_timeout: int
    inflight: int
    queued: int
    peak_inflight: int
    max_inflight: int
    max_queue: int

    @property
    def rejected(self) -> int:
        """Total rejections, whatever the reason."""
        return self.rejected_queue_full + self.rejected_timeout

    def to_json(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_timeout": self.rejected_timeout,
            "inflight": self.inflight,
            "queued": self.queued,
            "peak_inflight": self.peak_inflight,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
        }


class AdmissionController:
    """Bounded in-flight execution with a bounded, time-limited wait queue.

    Use as a context manager around the admitted work::

        with controller.admit():      # may raise AdmissionRejected
            ... answer the query ...

    Counters surface on the tracer (``service.admitted``,
    ``service.rejected``) and in :meth:`stats` for ``/metrics``.
    """

    def __init__(self, max_inflight: int = 8, max_queue: int = 16,
                 queue_timeout: float = 0.5,
                 tracer: Union[Tracer, NullTracer] = NULL_TRACER):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be >= 0, got {queue_timeout}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._tracer = tracer
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._admitted = 0
        self._rejected_queue_full = 0
        self._rejected_timeout = 0
        self._peak_inflight = 0

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def acquire(self) -> float:
        """Take an execution slot, waiting in the bounded queue if needed.

        Returns the seconds spent waiting in the queue (0.0 when a slot
        was free immediately) — the caller charges that wait against the
        request's budget, so a request that queued for most of its
        ``X-Repro-Timeout-Ms`` does not restart with a full allowance.

        Raises :class:`AdmissionRejected` when the queue is already full
        or no slot frees up within ``queue_timeout`` seconds.
        """
        retry_after = max(1, round(self.queue_timeout) or 1)
        with self._cond:
            if self._inflight < self.max_inflight:
                self._admit_locked()
                return 0.0
            if self._queued >= self.max_queue:
                self._rejected_queue_full += 1
                self._tracer.add("service.rejected_queue_full")
                raise AdmissionRejected(
                    f"admission queue full ({self._queued} waiting, "
                    f"{self._inflight} in flight)",
                    retry_after=retry_after, reason="queue_full")
            self._queued += 1
            entered = time.monotonic()
            deadline = entered + self.queue_timeout
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._rejected_timeout += 1
                        self._tracer.add("service.rejected_timeout")
                        raise AdmissionRejected(
                            f"no execution slot freed within "
                            f"{self.queue_timeout:g}s",
                            retry_after=retry_after, reason="timeout")
                    self._cond.wait(remaining)
                self._admit_locked()
                return time.monotonic() - entered
            finally:
                self._queued -= 1

    def _admit_locked(self) -> None:
        self._inflight += 1
        self._admitted += 1
        self._peak_inflight = max(self._peak_inflight, self._inflight)
        self._tracer.add("service.admitted")
        self._tracer.gauge("service.inflight", self._inflight)

    def release(self) -> None:
        """Give an execution slot back and wake one queued waiter."""
        with self._cond:
            self._inflight -= 1
            self._tracer.gauge("service.inflight", self._inflight)
            if self._inflight == 0 and self._queued == 0:
                self._cond.notify_all()  # wake wait_idle() too
            else:
                self._cond.notify()

    def admit(self) -> "_AdmissionSlot":
        """Context-manager form of :meth:`acquire`/:meth:`release`."""
        return _AdmissionSlot(self)

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is in flight or queued (for draining).

        Returns False when ``timeout`` seconds pass first.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while self._inflight or self._queued:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def stats(self) -> AdmissionStats:
        with self._cond:
            return AdmissionStats(
                self._admitted, self._rejected_queue_full,
                self._rejected_timeout, self._inflight, self._queued,
                self._peak_inflight, self.max_inflight, self.max_queue)


class _AdmissionSlot:
    """The held-slot context: acquire on enter, release on exit."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController):
        self._controller = controller

    def __enter__(self) -> Iterator[None]:
        self._controller.acquire()
        return None

    def __exit__(self, *exc_info) -> bool:
        self._controller.release()
        return False
