"""`repro.service` — the production query service over warm sessions.

A stdlib-only HTTP service (``repro serve``) exposing the reasoner as
JSON endpoints with admission control, a fingerprint-keyed result cache,
per-request cooperative budgets, and health/metrics introspection:

========================  ==============================================
endpoint                  answers
========================  ==============================================
``POST /v1/satisfiable``  one formula/class verdict (result-cached)
``POST /v1/classify``     the implied subsumption hierarchy
``POST /v1/batch``        a query batch via ``SchemaSession.run_batch``
``GET /healthz``          process liveness
``GET /readyz``           readiness (503 while starting or draining)
``GET /metrics``          admission + cache + session + tracer counters
========================  ==============================================

See ``docs/api.md`` (Service section) for the request/response contract
and ``docs/architecture.md`` for the admission → cache → session →
budget request flow.
"""

from .admission import AdmissionController, AdmissionRejected, AdmissionStats
from .app import ReproService, ServiceConfig
from .cache import ResultCache, ResultCacheStats
from .http import HTTP_STATUS_BY_EXIT, ServiceResponse, status_for_exit_code

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "HTTP_STATUS_BY_EXIT",
    "ReproService",
    "ResultCache",
    "ResultCacheStats",
    "ServiceConfig",
    "ServiceResponse",
    "status_for_exit_code",
]
