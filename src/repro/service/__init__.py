"""`repro.service` — the production query service over warm sessions.

A stdlib-only HTTP service (``repro serve``): an asyncio keep-alive /
pipelining front end (:class:`~repro.service.http.AsyncServiceServer`)
feeding the socket-free application on a worker pool, with admission
control, a fingerprint-keyed result cache, per-request cooperative
budgets, and health/metrics introspection.  Every JSON body is the
versioned v1 envelope (``api_version`` / ``request_id`` / ``ok`` /
``data``-or-``error``):

========================  ==============================================
endpoint                  answers
========================  ==============================================
``POST /v1/satisfiable``  one formula/class verdict (result-cached)
``POST /v1/classify``     the implied subsumption hierarchy
``POST /v1/batch``        a query batch via ``SchemaSession.run_batch``
``GET /v1/version``       api/artifact/trace/stats schema versions
``GET /healthz``          process liveness
``GET /readyz``           readiness (503 while starting or draining)
``GET /metrics``          admission + cache + latency + tracer counters
========================  ==============================================

See ``docs/api.md`` (Service section) for the envelope contract and
``docs/architecture.md`` for the accept → parse → admission →
worker-pool → drain request flow.
"""

from .admission import AdmissionController, AdmissionRejected, AdmissionStats
from .app import API_VERSION, ReproService, ServiceConfig
from .cache import LruMemo, ResultCache, ResultCacheStats
from .http import AsyncServiceServer, HTTP_STATUS_BY_EXIT, Headers, \
    ServiceResponse, status_for_exit_code
from .metrics import LatencyHistogram

__all__ = [
    "API_VERSION",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "AsyncServiceServer",
    "HTTP_STATUS_BY_EXIT",
    "Headers",
    "LatencyHistogram",
    "LruMemo",
    "ReproService",
    "ResultCache",
    "ResultCacheStats",
    "ServiceConfig",
    "ServiceResponse",
    "status_for_exit_code",
]
