"""The query service application: routing, budgets, lifecycle.

``repro serve`` keeps one process alive answering schema-reasoning
queries over HTTP, so the expensive parts of the paper's decision
procedure — Theorem 3.3's expansion + support computation, warm in a
:class:`~repro.engine.session.SchemaSession` — are paid once and amortized
across requests instead of once per CLI invocation.

Request flow (see ``docs/architecture.md``)::

    request → admission controller → result cache → SchemaSession
                  (429/503)             (hit: done)     under Budget
                                                        (504 on trip)

* **Admission** (:mod:`repro.service.admission`): bounded in-flight
  execution and a bounded wait queue; overload is turned away at the door
  with 429 + ``Retry-After``, oversized bodies with 413 — the reasoner
  never sees work the service cannot afford.
* **Result cache** (:mod:`repro.service.cache`): completed verdicts keyed
  by ``(schema_fingerprint, formula)``; a repeat query never touches a
  reasoner.
* **Artifact cache**: when the engine config carries an ``artifact_dir``
  (``repro serve`` defaults it on, ``--no-artifact-cache`` turns it off),
  session misses rehydrate precompiled
  :class:`~repro.engine.artifact.CompiledSchema` snapshots from disk
  instead of rebuilding Phase 1/2 — so a freshly booted (or restarted)
  service answers warm for every schema it has ever compiled.  The
  ``artifact.*`` counters surface in ``/metrics`` like every other
  tracer counter.
* **Budgets**: every reasoning request runs under a per-request
  :class:`~repro.core.budget.Budget` assembled from the
  ``X-Repro-Timeout-Ms`` / ``X-Repro-Max-Steps`` headers, clamped by the
  server-side caps — a client can ask for *less* time than the server
  allows, never more.  A tripped budget is HTTP 504 carrying the partial
  stats (steps performed, wall-clock spent), per Theorem 4.1: the service
  cannot promise to finish, but it promises to stop.
* **Errors**: the :mod:`repro.core.errors` sysexits codes map onto HTTP
  statuses through one table (:data:`repro.service.http.HTTP_STATUS_BY_EXIT`).
* **Lifecycle**: ``/healthz`` is process liveness, ``/readyz`` flips to
  503 the moment draining starts, and :meth:`ReproService.drain` stops
  accepting, waits for in-flight work, then closes the session pool —
  the SIGTERM path of ``repro serve``.

The application logic is socket-free: :meth:`ReproService.dispatch` maps
``(method, path, headers, body)`` to a
:class:`~repro.service.http.ServiceResponse`, so tests drive it directly
and the wire layer stays a thin shell.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.budget import Budget, use_budget
from ..core.errors import BudgetExceeded, CarError, ParseError
from ..engine.config import EngineConfig
from ..engine.session import SchemaSession, schema_fingerprint
from ..obs.tracer import Tracer
from ..registry import RegistryConfig, SchemaRegistry
from .admission import AdmissionController, AdmissionRejected
from .cache import ResultCache
from .http import ServiceResponse, make_server, new_request_id, \
    status_for_exit_code

__all__ = ["ServiceConfig", "ReproService"]

#: Executor modes ``POST /v1/batch`` accepts (mirrors ``repro batch``).
_BATCH_MODES = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ServiceConfig:
    """Every server-side knob of the query service, in one frozen value.

    Parameters
    ----------
    host / port:
        Bind address; port 0 binds an ephemeral port (tests, benchmarks).
    max_inflight / queue_depth / queue_timeout_s:
        Admission bounds: concurrent executions, waiting requests, and the
        longest a request may wait for a slot before 429.
    max_body_bytes:
        Request bodies larger than this are rejected with 413 from their
        ``Content-Length`` alone.
    cache_limit:
        Entry bound of the ``(fingerprint, formula)`` result cache.
    max_timeout_ms / default_timeout_ms:
        Per-request wall-clock budget cap and default (None = no default
        deadline).  Client headers are clamped to the cap.
    max_steps_cap / default_max_steps:
        Same two knobs for the cooperative step budget.
    max_batch_queries / max_batch_jobs:
        Size and parallelism bounds of ``POST /v1/batch``.
    drain_grace_s:
        How long :meth:`ReproService.drain` waits for in-flight requests.
    """

    host: str = "127.0.0.1"
    port: int = 8750
    max_inflight: int = 8
    queue_depth: int = 16
    queue_timeout_s: float = 0.5
    max_body_bytes: int = 1_000_000
    cache_limit: int = 1024
    max_timeout_ms: int = 30_000
    default_timeout_ms: Optional[int] = None
    max_steps_cap: int = 100_000_000
    default_max_steps: Optional[int] = None
    max_batch_queries: int = 1000
    max_batch_jobs: int = 8
    drain_grace_s: float = 10.0
    #: Per-tenant quotas of the schema registry (``/v1/schemas``).
    registry: RegistryConfig = field(default_factory=RegistryConfig)

    def __post_init__(self) -> None:
        for name in ("max_inflight", "max_body_bytes", "cache_limit",
                     "max_timeout_ms", "max_steps_cap",
                     "max_batch_queries", "max_batch_jobs"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        if self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.queue_timeout_s < 0 or self.drain_grace_s < 0:
            raise ValueError("timeouts must be >= 0")


class ReproService:
    """The long-running query service over one warm schema session.

    Use as a context manager in tests and benchmarks::

        with ReproService(ServiceConfig(port=0)) as service:
            ...  # service.port is the bound ephemeral port

    ``engine_config`` configures the underlying session; tracing is
    forced on (``/metrics`` is the tracer's counters) unless the caller
    supplied an explicit tracer to share.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 engine_config: Optional[EngineConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        engine_config = (engine_config if engine_config is not None
                         else EngineConfig())
        if engine_config.trace is False:
            engine_config = engine_config.replace(trace=Tracer())
        self.session = SchemaSession(engine_config)
        self.tracer = self.session.last_trace()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.queue_depth,
            queue_timeout=self.config.queue_timeout_s,
            tracer=self.tracer)
        self.cache = ResultCache(self.config.cache_limit,
                                 tracer=self.tracer)
        self.registry = SchemaRegistry(self.session, self.config.registry)
        self._epoch = time.monotonic()
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    #: route table: path → {method → handler attribute name}
    _ROUTES: Mapping[str, Mapping[str, str]] = {
        "/healthz": {"GET": "_healthz"},
        "/readyz": {"GET": "_readyz"},
        "/metrics": {"GET": "_metrics"},
        "/v1/satisfiable": {"POST": "_satisfiable"},
        "/v1/classify": {"POST": "_classify"},
        "/v1/batch": {"POST": "_batch"},
    }

    def dispatch(self, method: str, path: str, headers: Mapping[str, str],
                 body: bytes) -> ServiceResponse:
        """Answer one request: the socket-free application entry point."""
        request_id = new_request_id()
        self.tracer.add("service.requests")
        with self.tracer.span("service.request"):
            response = self._route(method, path, headers, body, request_id)
        response.payload.setdefault("request_id", request_id)
        self.tracer.add(f"service.responses_{response.status // 100}xx")
        return response

    def _route(self, method: str, path: str, headers: Mapping[str, str],
               body: bytes, request_id: str) -> ServiceResponse:
        path, _, query = path.partition("?")
        methods = self._ROUTES.get(path)
        if methods is None:
            if path == "/v1/schemas" or path.startswith("/v1/schemas/"):
                return self._route_registry(method, path, headers, body,
                                            request_id, query=query)
            return ServiceResponse(404, {"error": {
                "kind": "NotFound", "message": f"no route for {path!r}"}})
        name = methods.get(method)
        if name is None:
            return ServiceResponse(
                405, {"error": {"kind": "MethodNotAllowed",
                                "message": f"{method} not allowed on "
                                           f"{path}"}},
                headers=(("Allow", ", ".join(sorted(methods))),))
        handler = getattr(self, name)
        if method == "GET":
            return handler(request_id)
        return self._run_admitted(handler, headers, body, request_id)

    def _route_registry(self, method: str, path: str,
                        headers: Mapping[str, str], body: bytes,
                        request_id: str, query: str = "") -> ServiceResponse:
        """Route the ``/v1/schemas`` family (the one path-param tree).

        ====================================  ===========================
        route                                 handler
        ====================================  ===========================
        ``GET    /v1/schemas``                tenant's schema listing
        ``PUT    /v1/schemas/{name}``         store + revalidate a version
        ``GET    /v1/schemas/{name}``         latest (or ``?version=N``)
        ``DELETE /v1/schemas/{name}``         drop a schema (or version)
        ``GET    /v1/schemas/{name}/versions``  the version history
        ``POST   /v1/schemas/{name}/pin``     pin/unpin one version
        ====================================  ===========================

        The tenant comes from the ``X-Repro-Tenant`` header (falling back
        to the configured default).  Reads run unadmitted, like the other
        GETs; writes go through the same drain/size/JSON/admission
        prologue as the reasoning endpoints.
        """
        tenant = headers.get("X-Repro-Tenant")
        parts = [part for part in path.split("/") if part][1:]  # drop v1
        tail = parts[1:]  # after "schemas"
        allowed: tuple[str, ...] = ()
        if not tail:
            allowed = ("GET",)
            if method == "GET":
                return self._registry_guarded(
                    request_id, lambda: {"schemas":
                                         self.registry.list(tenant=tenant)})
        elif len(tail) == 1:
            name = tail[0]
            allowed = ("DELETE", "GET", "PUT")
            if method == "GET":
                def produce():
                    version = self._query_version(query)
                    return {"schema": self.registry.get(
                        name, tenant=tenant, version=version).summary()}
                return self._registry_guarded(request_id, produce)
            if method == "PUT":
                return self._run_admitted(
                    self._registry_put_handler(name, tenant),
                    headers, body, request_id)
            if method == "DELETE":
                return self._run_admitted(
                    self._registry_delete_handler(name, tenant),
                    headers, body, request_id)
        elif len(tail) == 2 and tail[1] == "versions":
            name = tail[0]
            allowed = ("GET",)
            if method == "GET":
                return self._registry_guarded(
                    request_id, lambda: {
                        "name": name,
                        "versions": [v.summary() for v in
                                     self.registry.versions(
                                         name, tenant=tenant)]})
        elif len(tail) == 2 and tail[1] == "pin":
            name = tail[0]
            allowed = ("POST",)
            if method == "POST":
                return self._run_admitted(
                    self._registry_pin_handler(name, tenant),
                    headers, body, request_id)
        if allowed:
            return ServiceResponse(
                405, {"error": {"kind": "MethodNotAllowed",
                                "message": f"{method} not allowed on "
                                           f"{path}"}},
                headers=(("Allow", ", ".join(allowed)),))
        return ServiceResponse(404, {"error": {
            "kind": "NotFound", "message": f"no route for {path!r}"}})

    @staticmethod
    def _query_version(query: str) -> Optional[int]:
        """The ``version=N`` query parameter, validated, or None."""
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key != "version":
                continue
            if not value.isdigit() or int(value) < 1:
                raise ParseError(f"query parameter 'version' must be a "
                                 f"positive integer, got {value!r}")
            return int(value)
        return None

    def _registry_guarded(self, request_id: str,
                          produce) -> ServiceResponse:
        """A registry read with typed errors mapped (GETs skip
        :meth:`_run_admitted`, so the mapping happens here)."""
        start = time.perf_counter()
        try:
            payload = produce()
        except CarError as exc:
            return self._error_response(exc, start)
        payload["request_id"] = request_id
        return ServiceResponse(200, payload)

    def _registry_put_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            source = self._required_str(document, "schema")
            budget = (Budget(deadline, max_steps)
                      if deadline is not None or max_steps is not None
                      else None)
            with use_budget(budget):
                version, report = self.registry.put(
                    name, source, tenant=tenant)
            status = 200 if report.mode == "unchanged" else 201
            return ServiceResponse(status, {
                "request_id": request_id, "schema": version.summary(),
                "revalidation": report.to_json()})
        return handler

    def _registry_delete_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            version = document.get("version")
            if version is not None and (not isinstance(version, int)
                                        or version < 1):
                raise ParseError(f"delete 'version' must be a positive "
                                 f"integer, got {version!r}")
            removed = self.registry.delete(
                name, tenant=tenant, version=version,
                drop_artifacts=bool(document.get("drop_artifacts", False)))
            return ServiceResponse(200, {
                "request_id": request_id, "name": name,
                "removed_versions": removed})
        return handler

    def _registry_pin_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            version = document.get("version")
            if not isinstance(version, int) or version < 1:
                raise ParseError(f"pin body needs a positive integer "
                                 f"'version', got {version!r}")
            entry = self.registry.pin(
                name, version, tenant=tenant,
                pinned=bool(document.get("pinned", True)))
            return ServiceResponse(200, {
                "request_id": request_id, "schema": entry.summary()})
        return handler

    def _run_admitted(self, handler, headers: Mapping[str, str],
                      body: bytes, request_id: str) -> ServiceResponse:
        """The POST prologue: drain gate, size gate, JSON, budget,
        admission — then the endpoint handler, with errors mapped."""
        if self._draining.is_set():
            return ServiceResponse(
                503, {"error": {"kind": "Draining",
                                "message": "service is shutting down"}},
                headers=(("Retry-After", "1"),))
        if len(body) > self.config.max_body_bytes:
            return self.too_large()
        try:
            document = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return ServiceResponse(400, {"error": {
                "kind": "BadRequest",
                "message": f"request body is not valid JSON: {exc}"}})
        if not isinstance(document, dict):
            return ServiceResponse(400, {"error": {
                "kind": "BadRequest",
                "message": "request body must be a JSON object"}})
        if "X-Repro-Tenant" in headers:
            document.setdefault("tenant", headers["X-Repro-Tenant"])
        try:
            deadline, max_steps = self._budget_from(headers)
        except ValueError as exc:
            return ServiceResponse(400, {"error": {
                "kind": "BadRequest", "message": str(exc)}})
        try:
            self.admission.acquire()
        except AdmissionRejected as exc:
            return ServiceResponse(
                429, {"error": {"kind": "AdmissionRejected",
                                "message": str(exc),
                                "reason": exc.reason}},
                headers=(("Retry-After", str(exc.retry_after)),))
        start = time.perf_counter()
        try:
            return handler(document, deadline, max_steps, request_id)
        except CarError as exc:
            return self._error_response(exc, start)
        except Exception as exc:  # noqa: BLE001 - the service must answer
            self.tracer.add("service.internal_errors")
            return ServiceResponse(500, {"error": {
                "kind": type(exc).__name__, "message": str(exc),
                "exit_code": 70}})
        finally:
            self.admission.release()

    def _budget_from(self, headers: Mapping[str, str]
                     ) -> tuple[Optional[float], Optional[int]]:
        """The per-request budget: client headers clamped by server caps.

        Returns ``(deadline_seconds, max_steps)``; either may be None
        (no bound requested and no server default).
        """
        timeout_ms = self._header_int(headers, "X-Repro-Timeout-Ms",
                                      self.config.default_timeout_ms)
        max_steps = self._header_int(headers, "X-Repro-Max-Steps",
                                     self.config.default_max_steps)
        if timeout_ms is not None:
            timeout_ms = min(timeout_ms, self.config.max_timeout_ms)
        if max_steps is not None:
            max_steps = min(max_steps, self.config.max_steps_cap)
        deadline = timeout_ms / 1000.0 if timeout_ms is not None else None
        return deadline, max_steps

    @staticmethod
    def _header_int(headers: Mapping[str, str], name: str,
                    default: Optional[int]) -> Optional[int]:
        raw = headers.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{name} must be an integer, got {raw!r}") \
                from None
        if value < 1:
            raise ValueError(f"{name} must be positive, got {value}")
        return value

    def _error_response(self, exc: CarError,
                        start: float) -> ServiceResponse:
        """Map a typed failure onto the stable sysexits→HTTP table.

        A tripped budget (504) carries its partial stats — how many
        hot-loop steps ran and how long — so the client can size a retry.
        A quota refusal (429) carries ``Retry-After``, like admission.
        """
        error: dict = {"kind": type(exc).__name__, "message": str(exc),
                       "exit_code": exc.exit_code}
        payload: dict = {"error": error}
        if isinstance(exc, BudgetExceeded):
            error["steps"] = exc.steps
            payload["steps"] = exc.steps
            payload["duration_s"] = round(time.perf_counter() - start, 6)
        status = status_for_exit_code(exc.exit_code)
        response_headers = (("Retry-After", "1"),) if status == 429 else ()
        return ServiceResponse(status, payload, headers=response_headers)

    def too_large(self) -> ServiceResponse:
        """The 413 response (used from the wire layer's pre-read check)."""
        self.tracer.add("service.rejected_body_too_large")
        return ServiceResponse(
            413,
            {"error": {"kind": "PayloadTooLarge",
                       "message": f"request body exceeds "
                                  f"{self.config.max_body_bytes} bytes"},
             "request_id": new_request_id()})

    # ------------------------------------------------------------------
    # Reasoning endpoints
    # ------------------------------------------------------------------
    def _satisfiable(self, document: dict, deadline: Optional[float],
                     max_steps: Optional[int],
                     request_id: str) -> ServiceResponse:
        """``POST /v1/satisfiable`` — one formula (or class) verdict.

        Body: ``{"schema": <source>, "formula": <formula text>}`` (or
        ``"class": <name>``); ``{"schema_ref": "name@version"}`` addresses
        a registry entry instead of shipping source.  The result cache is
        consulted *before* any reasoner; misses run through the warm
        session under the request budget and populate it.
        """
        from ..parser.parser import parse_formula

        schema_source = self._schema_source(document)
        if "formula" in document:
            formula_text = self._required_str(document, "formula")
        elif "class" in document:
            formula_text = self._required_str(document, "class")
        else:
            raise ParseError(
                "satisfiable body needs a 'formula' (or 'class') key")
        formula = parse_formula(formula_text)
        from ..parser.parser import parse_schema

        schema = parse_schema(schema_source)
        fingerprint = schema_fingerprint(schema)
        key = str(formula)
        cached = self.cache.get(fingerprint, key)
        if cached is not None:
            return ServiceResponse(200, {
                "request_id": request_id, "verdict": cached,
                "cache": "hit", "schema_fingerprint": fingerprint,
                "formula": key})
        outcome = self.session.check_many_detailed(
            schema, [formula], deadline=deadline, max_steps=max_steps,
            collect_stats=False)[0]
        if not outcome.ok:
            payload: dict = {"request_id": request_id,
                             "error": outcome.error.to_json(),
                             "cache": "miss",
                             "schema_fingerprint": fingerprint,
                             "steps": outcome.steps,
                             "duration_s": round(outcome.duration, 6)}
            return ServiceResponse(
                status_for_exit_code(outcome.error.exit_code), payload)
        self.cache.put(fingerprint, key, outcome.verdict)
        return ServiceResponse(200, {
            "request_id": request_id, "verdict": outcome.verdict,
            "cache": "miss", "schema_fingerprint": fingerprint,
            "formula": key, "steps": outcome.steps,
            "duration_s": round(outcome.duration, 6)})

    def _classify(self, document: dict, deadline: Optional[float],
                  max_steps: Optional[int],
                  request_id: str) -> ServiceResponse:
        """``POST /v1/classify`` — the implied subsumption hierarchy
        (``schema`` source inline, or a registry ``schema_ref``)."""
        schema_source = self._schema_source(document)
        budget = (Budget(deadline, max_steps)
                  if deadline is not None or max_steps is not None
                  else None)
        with use_budget(budget):
            classification = self.session.classify(schema_source)
        return ServiceResponse(200, {
            "request_id": request_id,
            "subsumptions": sorted(map(list,
                                       classification.subsumptions)),
            "equivalence_groups": [sorted(group) for group in
                                   classification.equivalence_groups],
            "unsatisfiable": list(classification.unsatisfiable)})

    def _batch(self, document: dict, deadline: Optional[float],
               max_steps: Optional[int],
               request_id: str) -> ServiceResponse:
        """``POST /v1/batch`` — a heterogeneous query batch through
        :meth:`SchemaSession.run_batch` (budgets are per query)."""
        queries = document.get("queries")
        if not isinstance(queries, list):
            raise ParseError("batch body needs a 'queries' list")
        tenant = document.get("tenant")
        queries = [self._resolve_batch_query(query, tenant)
                   for query in queries]
        if len(queries) > self.config.max_batch_queries:
            return ServiceResponse(413, {
                "request_id": request_id,
                "error": {"kind": "PayloadTooLarge",
                          "message": f"batch of {len(queries)} exceeds "
                                     f"the {self.config.max_batch_queries}"
                                     f"-query bound"}})
        jobs = document.get("jobs", 1)
        mode = document.get("mode", "auto")
        if not isinstance(jobs, int) or jobs < 1:
            raise ParseError(f"batch 'jobs' must be a positive integer, "
                             f"got {jobs!r}")
        if mode not in _BATCH_MODES:
            raise ParseError(f"batch 'mode' must be one of "
                             f"{', '.join(_BATCH_MODES)}, got {mode!r}")
        outcomes = self.session.run_batch(
            queries, jobs=min(jobs, self.config.max_batch_jobs), mode=mode,
            deadline=deadline, max_steps=max_steps,
            collect_stats=bool(document.get("stats", False)))
        summary = {
            "total": len(outcomes),
            "ok": sum(1 for o in outcomes if o.ok),
            "timed_out": sum(1 for o in outcomes if o.timed_out),
            "failed": sum(1 for o in outcomes
                          if not o.ok and not o.timed_out),
        }
        return ServiceResponse(200, {
            "request_id": request_id, "summary": summary,
            "outcomes": [o.to_json() for o in outcomes]})

    @staticmethod
    def _required_str(document: dict, key: str) -> str:
        value = document.get(key)
        if not isinstance(value, str) or not value.strip():
            raise ParseError(
                f"request body needs a non-empty {key!r} string")
        return value

    def _schema_source(self, document: dict) -> str:
        """The schema source of a query body: inline ``schema`` text, or
        a registry ``schema_ref`` (``name`` / ``name@version``) resolved
        for the request's tenant."""
        if "schema_ref" in document and "schema" not in document:
            ref = self._required_str(document, "schema_ref")
            return self.registry.resolve(
                ref, tenant=document.get("tenant")).source
        return self._required_str(document, "schema")

    def _resolve_batch_query(self, query, tenant: Optional[str]):
        """Rewrite one batch query's ``schema_ref`` to inline source
        (non-dict and ref-less queries pass through untouched)."""
        if not isinstance(query, dict) or "schema_ref" not in query \
                or "schema" in query:
            return query
        resolved = self.registry.resolve(query["schema_ref"], tenant=tenant)
        rewritten = dict(query)
        rewritten.pop("schema_ref")
        rewritten["schema"] = resolved.source
        return rewritten

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _healthz(self, request_id: str) -> ServiceResponse:
        """Liveness: 200 whenever the process can answer at all."""
        return ServiceResponse(200, {
            "request_id": request_id, "status": "ok",
            "uptime_s": round(time.monotonic() - self._epoch, 3)})

    def _readyz(self, request_id: str) -> ServiceResponse:
        """Readiness: 200 only while started and not draining."""
        if self._draining.is_set():
            return ServiceResponse(503, {"request_id": request_id,
                                         "status": "draining"},
                                   headers=(("Retry-After", "1"),))
        if not self._ready.is_set():
            return ServiceResponse(503, {"request_id": request_id,
                                         "status": "starting"},
                                   headers=(("Retry-After", "1"),))
        return ServiceResponse(200, {"request_id": request_id,
                                     "status": "ready"})

    def _metrics(self, request_id: str) -> ServiceResponse:
        """Every counter the service keeps, as one JSON document:
        admission, result cache, session pipeline cache, tracer bus."""
        return ServiceResponse(200, {
            "request_id": request_id,
            "uptime_s": round(time.monotonic() - self._epoch, 3),
            "admission": self.admission.stats().to_json(),
            "result_cache": self.cache.stats().to_json(),
            "session": self.session.cache_info().to_json(),
            "registry": self.registry.stats(),
            "counters": dict(sorted(self.tracer.counters.items())),
            "gauges": dict(sorted(self.tracer.gauges.items())),
        })

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the server and start accepting on a background thread.

        Returns the bound ``(host, port)`` — with ``port=0`` this is where
        the ephemeral port becomes known.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = make_server(self, self.config.host,
                                   self.config.port)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service",
            daemon=True)
        self._thread.start()
        self._ready.set()
        return self.host, self.port

    def drain(self, grace: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        Marks the service draining (``/readyz`` flips to 503, new POSTs
        get 503 + ``Retry-After``), stops the accept loop, waits up to
        ``grace`` seconds (default ``config.drain_grace_s``) for in-flight
        requests, then closes the listening socket and the session's
        worker pool.  Returns True when everything drained in time.
        """
        grace = grace if grace is not None else self.config.drain_grace_s
        self._draining.set()
        self._ready.clear()
        drained = self.admission.wait_idle(grace)
        if self._server is not None:
            self._server.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._server.server_close()
            self._server = None
            self._thread = None
        self.session.close()
        return drained

    def __enter__(self) -> "ReproService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
