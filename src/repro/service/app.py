"""The query service application: routing, envelope, budgets, lifecycle.

``repro serve`` keeps one process alive answering schema-reasoning
queries over HTTP, so the expensive parts of the paper's decision
procedure — Theorem 3.3's expansion + support computation, warm in a
:class:`~repro.engine.session.SchemaSession` — are paid once and amortized
across requests instead of once per CLI invocation.

Request flow (see ``docs/architecture.md``)::

    asyncio accept/parse → fast path (introspection, warm cache hits)
         (wire layer)     → worker pool → admission → result cache
                                (429/503)    (hit: done)
                          → SchemaSession under Budget (504 on trip)

* **Admission** (:mod:`repro.service.admission`): bounded in-flight
  execution and a bounded wait queue; overload is turned away at the door
  with 429 + ``Retry-After``, oversized bodies with 413 — the reasoner
  never sees work the service cannot afford.  Time spent waiting in the
  admission queue is charged against the request's own budget.
* **Result cache** (:mod:`repro.service.cache`): completed verdicts keyed
  by ``(schema_fingerprint, formula)``; a repeat query never touches a
  reasoner — and via :meth:`ReproService.try_fast_dispatch` it is
  answered directly on the event loop, skipping the worker pool.
* **Artifact cache**: when the engine config carries an ``artifact_dir``
  (``repro serve`` defaults it on, ``--no-artifact-cache`` turns it off),
  session misses rehydrate precompiled
  :class:`~repro.engine.artifact.CompiledSchema` snapshots from disk
  instead of rebuilding Phase 1/2 — so a freshly booted (or restarted)
  service answers warm for every schema it has ever compiled.
* **Budgets**: every reasoning request runs under a per-request
  :class:`~repro.core.budget.Budget` assembled from the
  ``X-Repro-Timeout-Ms`` / ``X-Repro-Max-Steps`` headers, clamped by the
  server-side caps — a client can ask for *less* time than the server
  allows, never more.  A tripped budget is HTTP 504 carrying the partial
  stats, per Theorem 4.1: the service cannot promise to finish, but it
  promises to stop.
* **Lifecycle**: ``/healthz`` is process liveness, ``/readyz`` flips to
  503 the moment draining starts, and :meth:`ReproService.drain` stops
  accepting, waits for in-flight work, then closes the session pool —
  the SIGTERM path of ``repro serve``.

**The v1 envelope.**  Every JSON body the service emits — success,
error, metrics, registry, even the wire layer's protocol errors — is
built by one serializer (:meth:`ReproService._envelope`) and has exactly
one of two shapes::

    {"api_version": 1, "request_id": "...", "ok": true,  "data": {...}}
    {"api_version": 1, "request_id": "...", "ok": false, "error":
        {"code": "budget_exceeded", "sysexit": 75, "message": "...",
         "retry_after_ms": 1000?, ...detail}}

``error.code`` is a stable snake_case token (the
:mod:`repro.core.errors` class name for typed failures, a wire-level
token such as ``headers_too_large`` otherwise); ``error.sysexit`` is the
exit code ``repro`` CLI commands would terminate with for the same
failure, keeping the two surfaces pinned to one table
(:data:`repro.service.http.HTTP_STATUS_BY_EXIT`).  ``GET /v1/version``
reports the envelope version next to every other schema version the
process speaks.

The application logic is socket-free: :meth:`ReproService.dispatch` maps
``(method, path, headers, body)`` to a
:class:`~repro.service.http.ServiceResponse`, so tests drive it directly
and the wire layer stays a thin shell.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.budget import Budget, use_budget
from ..core.errors import BudgetExceeded, CarError, ParseError
from ..engine.artifact import ARTIFACT_SCHEMA_VERSION
from ..engine.config import EngineConfig
from ..engine.session import SchemaSession, schema_fingerprint
from ..engine.stats import STATS_SCHEMA_VERSION
from ..obs.tracer import TRACE_SCHEMA_VERSION, Tracer
from ..registry import RegistryConfig, SchemaRegistry
from .admission import AdmissionController, AdmissionRejected
from .cache import LruMemo, ResultCache
from .http import AsyncServiceServer, ServiceResponse, new_request_id, \
    status_for_exit_code
from .metrics import LatencyHistogram

__all__ = ["API_VERSION", "ServiceConfig", "ReproService"]

#: The wire-envelope version every response carries.
API_VERSION = 1

#: Executor modes ``POST /v1/batch`` accepts (mirrors ``repro batch``).
_BATCH_MODES = ("auto", "process", "thread", "serial")

#: sysexit for wire-level failures that have no CarError behind them.
_PROTOCOL_SYSEXITS = {400: 64, 404: 67, 405: 64, 408: 64, 413: 77,
                      429: 69, 431: 64, 501: 64, 503: 69, 504: 75}


def _snake(name: str) -> str:
    """``BudgetExceeded`` → ``budget_exceeded`` (the envelope code)."""
    return re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", name).lower()


@dataclass(frozen=True)
class ServiceConfig:
    """Every server-side knob of the query service, in one frozen value.

    Parameters
    ----------
    host / port:
        Bind address; port 0 binds an ephemeral port (tests, benchmarks).
    max_inflight / queue_depth / queue_timeout_s:
        Admission bounds: concurrent executions, waiting requests, and the
        longest a request may wait for a slot before 429.
    workers:
        Worker-pool threads running :meth:`ReproService.dispatch` behind
        the asyncio front end; 0 (the default) sizes the pool
        automatically as ``max_inflight + 2`` — enough to saturate
        admission with two threads to spare for introspection.
    pipeline_depth:
        How many requests one connection may have parsed-but-unanswered;
        the wire layer stops reading a connection that gets further ahead.
    idle_timeout_s:
        Connections idle (or trickling — slow-loris) longer than this are
        closed.
    max_header_bytes:
        Request lines and header blocks above this answer 431.
    max_body_bytes:
        Request bodies larger than this are rejected with 413 from their
        ``Content-Length`` alone.
    cache_limit:
        Entry bound of the ``(fingerprint, formula)`` result cache.
    max_timeout_ms / default_timeout_ms:
        Per-request wall-clock budget cap and default (None = no default
        deadline).  Client headers are clamped to the cap.
    max_steps_cap / default_max_steps:
        Same two knobs for the cooperative step budget.
    max_batch_queries / max_batch_jobs:
        Size and parallelism bounds of ``POST /v1/batch``.
    drain_grace_s:
        How long :meth:`ReproService.drain` waits for in-flight requests.
    """

    host: str = "127.0.0.1"
    port: int = 8750
    max_inflight: int = 8
    queue_depth: int = 16
    queue_timeout_s: float = 0.5
    workers: int = 0
    pipeline_depth: int = 16
    idle_timeout_s: float = 30.0
    max_header_bytes: int = 32_768
    max_body_bytes: int = 1_000_000
    cache_limit: int = 1024
    max_timeout_ms: int = 30_000
    default_timeout_ms: Optional[int] = None
    max_steps_cap: int = 100_000_000
    default_max_steps: Optional[int] = None
    max_batch_queries: int = 1000
    max_batch_jobs: int = 8
    drain_grace_s: float = 10.0
    #: Per-tenant quotas of the schema registry (``/v1/schemas``).
    registry: RegistryConfig = field(default_factory=RegistryConfig)

    def __post_init__(self) -> None:
        for name in ("max_inflight", "pipeline_depth", "max_header_bytes",
                     "max_body_bytes", "cache_limit", "max_timeout_ms",
                     "max_steps_cap", "max_batch_queries",
                     "max_batch_jobs"):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        if self.queue_depth < 0 or self.workers < 0:
            raise ValueError("queue_depth and workers must be >= 0")
        if self.queue_timeout_s < 0 or self.drain_grace_s < 0:
            raise ValueError("timeouts must be >= 0")
        if self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be > 0, got {self.idle_timeout_s}")

    @property
    def effective_workers(self) -> int:
        """The worker-pool size after resolving ``workers=0`` (auto)."""
        return self.workers if self.workers else self.max_inflight + 2


class ReproService:
    """The long-running query service over one warm schema session.

    Use as a context manager in tests and benchmarks::

        with ReproService(ServiceConfig(port=0)) as service:
            ...  # service.port is the bound ephemeral port

    ``engine_config`` configures the underlying session; tracing is
    forced on (``/metrics`` is the tracer's counters) unless the caller
    supplied an explicit tracer to share.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 engine_config: Optional[EngineConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        engine_config = (engine_config if engine_config is not None
                         else EngineConfig())
        if engine_config.trace is False:
            engine_config = engine_config.replace(trace=Tracer())
        self.session = SchemaSession(engine_config)
        self.tracer = self.session.last_trace()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.queue_depth,
            queue_timeout=self.config.queue_timeout_s,
            tracer=self.tracer)
        self.cache = ResultCache(self.config.cache_limit,
                                 tracer=self.tracer)
        self.registry = SchemaRegistry(self.session, self.config.registry)
        self.latency = LatencyHistogram()
        self._schema_memo = LruMemo(limit=max(
            16, min(self.config.cache_limit, 256)))
        self._formula_memo = LruMemo(limit=max(
            16, min(self.config.cache_limit, 1024)))
        self._epoch = time.monotonic()
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._server: Optional[AsyncServiceServer] = None
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------
    # The envelope: the one serializer every response goes through
    # ------------------------------------------------------------------
    def _envelope(self, request_id: str, *, ok: bool, data=None,
                  error: Optional[dict] = None) -> dict:
        document = {"api_version": API_VERSION, "request_id": request_id,
                    "ok": ok}
        if ok:
            document["data"] = data
        else:
            document["error"] = error
        return document

    def _ok(self, status: int, request_id: str, data,
            headers: tuple = ()) -> ServiceResponse:
        return ServiceResponse(
            status, self._envelope(request_id, ok=True, data=data),
            headers=headers)

    def _fail(self, status: int, request_id: str, code: str, message: str,
              *, sysexit: Optional[int] = None,
              retry_after_s: Optional[int] = None,
              detail: Optional[dict] = None,
              close: bool = False) -> ServiceResponse:
        if sysexit is None:
            sysexit = _PROTOCOL_SYSEXITS.get(status, 70)
        error = {"code": code, "sysexit": sysexit, "message": message}
        headers: tuple = ()
        if retry_after_s is not None:
            error["retry_after_ms"] = retry_after_s * 1000
            headers = (("Retry-After", str(retry_after_s)),)
        if detail:
            error.update(detail)
        return ServiceResponse(
            status, self._envelope(request_id, ok=False, error=error),
            headers=headers, close=close)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    #: route table: path → {method → handler attribute name}
    _ROUTES: Mapping[str, Mapping[str, str]] = {
        "/healthz": {"GET": "_healthz"},
        "/readyz": {"GET": "_readyz"},
        "/metrics": {"GET": "_metrics"},
        "/v1/version": {"GET": "_version"},
        "/v1/satisfiable": {"POST": "_satisfiable"},
        "/v1/classify": {"POST": "_classify"},
        "/v1/query": {"POST": "_query"},
        "/v1/batch": {"POST": "_batch"},
    }

    def dispatch(self, method: str, path: str, headers: Mapping[str, str],
                 body: bytes) -> ServiceResponse:
        """Answer one request: the socket-free application entry point."""
        start = time.perf_counter()
        request_id = new_request_id()
        self.tracer.add("service.requests")
        with self.tracer.span("service.request"):
            response = self._route(method, path, headers, body, request_id)
        return self._finish(response, start)

    def try_fast_dispatch(self, method: str, path: str,
                          headers: Mapping[str, str],
                          body: bytes) -> Optional[ServiceResponse]:
        """Answer on the event loop when no reasoning is needed, else None.

        The wire layer calls this before paying the worker-pool hop.  Two
        request families qualify: GETs (introspection and registry reads
        — bounded, lock-cheap work) and ``POST /v1/satisfiable`` bodies
        whose verdict is already in the result cache (the parse memos
        make re-deriving the cache key nearly free).  Anything else —
        including any fast-path hiccup — returns None and takes the full
        dispatch path on a worker.
        """
        if method == "GET":
            return self.dispatch(method, path, headers, body)
        target, _, _ = path.partition("?")
        if method != "POST" or target != "/v1/satisfiable" \
                or len(body) > 65_536 or self._draining.is_set():
            return None
        data = self._peek_cached_verdict(headers, body)
        if data is None:
            return None
        start = time.perf_counter()
        request_id = new_request_id()
        self.tracer.add("service.requests")
        self.tracer.add("service.fast_path_hits")
        return self._finish(self._ok(200, request_id, data), start)

    def _peek_cached_verdict(self, headers: Mapping[str, str],
                             body: bytes) -> Optional[dict]:
        """The satisfiable fast path: a cached verdict's data, or None.

        Deliberately conservative — any parse error, unknown ref, or
        cache miss returns None so the worker-path handler produces the
        authoritative response (and its errors).
        """
        try:
            document = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(document, dict):
                return None
            if "X-Repro-Tenant" in headers:
                document.setdefault("tenant", headers["X-Repro-Tenant"])
            text = document.get("formula", document.get("class"))
            if not isinstance(text, str) or not text.strip():
                return None
            source = self._schema_source(document)
            fingerprint, _ = self._memo_schema(source)
            _, formula_key = self._memo_formula(text)
        except Exception:  # noqa: BLE001 - fall back to the full path
            return None
        verdict = self.cache.peek(fingerprint, formula_key)
        if verdict is None:
            return None
        return {"verdict": verdict, "cache": "hit",
                "schema_fingerprint": fingerprint, "formula": formula_key}

    _STATUS_CLASS_COUNTERS = {
        klass: f"service.responses_{klass}xx" for klass in range(1, 6)}

    def _finish(self, response: ServiceResponse,
                start: float) -> ServiceResponse:
        self.tracer.add(self._STATUS_CLASS_COUNTERS[response.status // 100])
        self.latency.observe(time.perf_counter() - start)
        return response

    def protocol_error(self, status: int, code: str,
                       message: str) -> ServiceResponse:
        """The wire layer's envelope for requests that never parsed
        (431/413/400/501): counted, enveloped, connection-closing."""
        start = time.perf_counter()
        request_id = new_request_id()
        self.tracer.add("service.requests")
        return self._finish(
            self._fail(status, request_id, code, message, close=True),
            start)

    def overloaded(self) -> ServiceResponse:
        """The wire layer's 429 when the worker pool's feed is full.

        Admission inside the pool bounds *reasoning*; this bounds the
        number of dispatches waiting for a pool thread at all, so extreme
        connection counts degrade into instant 429s instead of an
        unbounded executor queue.
        """
        start = time.perf_counter()
        request_id = new_request_id()
        self.tracer.add("service.requests")
        return self._finish(
            self._fail(429, request_id, "overloaded",
                       "worker pool backlog is full", retry_after_s=1),
            start)

    def _route(self, method: str, path: str, headers: Mapping[str, str],
               body: bytes, request_id: str) -> ServiceResponse:
        path, _, query = path.partition("?")
        methods = self._ROUTES.get(path)
        if methods is None:
            if path == "/v1/schemas" or path.startswith("/v1/schemas/"):
                return self._route_registry(method, path, headers, body,
                                            request_id, query=query)
            return self._fail(404, request_id, "not_found",
                              f"no route for {path!r}")
        name = methods.get(method)
        if name is None:
            response = self._fail(
                405, request_id, "method_not_allowed",
                f"{method} not allowed on {path}")
            response.headers = (("Allow", ", ".join(sorted(methods))),)
            return response
        handler = getattr(self, name)
        if method == "GET":
            return handler(request_id)
        return self._run_admitted(handler, headers, body, request_id)

    def _route_registry(self, method: str, path: str,
                        headers: Mapping[str, str], body: bytes,
                        request_id: str, query: str = "") -> ServiceResponse:
        """Route the ``/v1/schemas`` family (the one path-param tree).

        ====================================  ===========================
        route                                 handler
        ====================================  ===========================
        ``GET    /v1/schemas``                tenant's schema listing
        ``PUT    /v1/schemas/{name}``         store + revalidate a version
        ``GET    /v1/schemas/{name}``         latest (or ``?version=N``)
        ``DELETE /v1/schemas/{name}``         drop a schema (or version)
        ``GET    /v1/schemas/{name}/versions``  the version history
        ``POST   /v1/schemas/{name}/pin``     pin/unpin one version
        ====================================  ===========================

        The tenant comes from the ``X-Repro-Tenant`` header (falling back
        to the configured default).  Reads run unadmitted, like the other
        GETs; writes go through the same drain/size/JSON/admission
        prologue as the reasoning endpoints.
        """
        tenant = headers.get("X-Repro-Tenant")
        parts = [part for part in path.split("/") if part][1:]  # drop v1
        tail = parts[1:]  # after "schemas"
        allowed: tuple[str, ...] = ()
        if not tail:
            allowed = ("GET",)
            if method == "GET":
                return self._registry_guarded(
                    request_id, lambda: {"schemas":
                                         self.registry.list(tenant=tenant)})
        elif len(tail) == 1:
            name = tail[0]
            allowed = ("DELETE", "GET", "PUT")
            if method == "GET":
                def produce():
                    version = self._query_version(query)
                    return {"schema": self.registry.get(
                        name, tenant=tenant, version=version).summary()}
                return self._registry_guarded(request_id, produce)
            if method == "PUT":
                return self._run_admitted(
                    self._registry_put_handler(name, tenant),
                    headers, body, request_id)
            if method == "DELETE":
                return self._run_admitted(
                    self._registry_delete_handler(name, tenant),
                    headers, body, request_id)
        elif len(tail) == 2 and tail[1] == "versions":
            name = tail[0]
            allowed = ("GET",)
            if method == "GET":
                return self._registry_guarded(
                    request_id, lambda: {
                        "name": name,
                        "versions": [v.summary() for v in
                                     self.registry.versions(
                                         name, tenant=tenant)]})
        elif len(tail) == 2 and tail[1] == "pin":
            name = tail[0]
            allowed = ("POST",)
            if method == "POST":
                return self._run_admitted(
                    self._registry_pin_handler(name, tenant),
                    headers, body, request_id)
        if allowed:
            response = self._fail(
                405, request_id, "method_not_allowed",
                f"{method} not allowed on {path}")
            response.headers = (("Allow", ", ".join(allowed)),)
            return response
        return self._fail(404, request_id, "not_found",
                          f"no route for {path!r}")

    @staticmethod
    def _query_version(query: str) -> Optional[int]:
        """The ``version=N`` query parameter, validated, or None."""
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key != "version":
                continue
            if not value.isdigit() or int(value) < 1:
                raise ParseError(f"query parameter 'version' must be a "
                                 f"positive integer, got {value!r}")
            return int(value)
        return None

    def _registry_guarded(self, request_id: str,
                          produce) -> ServiceResponse:
        """A registry read with typed errors mapped (GETs skip
        :meth:`_run_admitted`, so the mapping happens here)."""
        start = time.perf_counter()
        try:
            data = produce()
        except CarError as exc:
            return self._error_response(exc, start, request_id)
        return self._ok(200, request_id, data)

    def _registry_put_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            source = self._required_str(document, "schema")
            budget = (Budget(deadline, max_steps)
                      if deadline is not None or max_steps is not None
                      else None)
            with use_budget(budget):
                version, report = self.registry.put(
                    name, source, tenant=tenant)
            status = 200 if report.mode == "unchanged" else 201
            return self._ok(status, request_id, {
                "schema": version.summary(),
                "revalidation": report.to_json()})
        return handler

    def _registry_delete_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            version = document.get("version")
            if version is not None and (not isinstance(version, int)
                                        or version < 1):
                raise ParseError(f"delete 'version' must be a positive "
                                 f"integer, got {version!r}")
            removed = self.registry.delete(
                name, tenant=tenant, version=version,
                drop_artifacts=bool(document.get("drop_artifacts", False)))
            return self._ok(200, request_id, {
                "name": name, "removed_versions": removed})
        return handler

    def _registry_pin_handler(self, name: str, tenant: Optional[str]):
        def handler(document: dict, deadline: Optional[float],
                    max_steps: Optional[int],
                    request_id: str) -> ServiceResponse:
            version = document.get("version")
            if not isinstance(version, int) or version < 1:
                raise ParseError(f"pin body needs a positive integer "
                                 f"'version', got {version!r}")
            entry = self.registry.pin(
                name, version, tenant=tenant,
                pinned=bool(document.get("pinned", True)))
            return self._ok(200, request_id, {"schema": entry.summary()})
        return handler

    def _run_admitted(self, handler, headers: Mapping[str, str],
                      body: bytes, request_id: str) -> ServiceResponse:
        """The POST prologue: drain gate, size gate, JSON, budget,
        admission — then the endpoint handler, with errors mapped."""
        if self._draining.is_set():
            return self._fail(503, request_id, "draining",
                              "service is shutting down", retry_after_s=1)
        if len(body) > self.config.max_body_bytes:
            self.tracer.add("service.rejected_body_too_large")
            return self._fail(
                413, request_id, "payload_too_large",
                f"request body exceeds {self.config.max_body_bytes} bytes")
        try:
            document = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return self._fail(400, request_id, "bad_request",
                              f"request body is not valid JSON: {exc}")
        if not isinstance(document, dict):
            return self._fail(400, request_id, "bad_request",
                              "request body must be a JSON object")
        if "X-Repro-Tenant" in headers:
            document.setdefault("tenant", headers["X-Repro-Tenant"])
        try:
            deadline, max_steps = self._budget_from(headers)
        except ValueError as exc:
            return self._fail(400, request_id, "bad_request", str(exc))
        try:
            waited = self.admission.acquire()
        except AdmissionRejected as exc:
            return self._fail(
                429, request_id, "admission_rejected", str(exc),
                sysexit=69, retry_after_s=exc.retry_after,
                detail={"reason": exc.reason})
        start = time.perf_counter()
        try:
            # The queue wait already spent part of this request's life:
            # charge it, so waiting ~its whole X-Repro-Timeout-Ms cannot
            # buy a full budget after admission.
            if deadline is not None and waited > 0:
                deadline -= waited
                if deadline <= 0:
                    raise BudgetExceeded(
                        f"deadline exhausted after {waited:.3f}s in the "
                        f"admission queue", steps=0)
            return handler(document, deadline, max_steps, request_id)
        except CarError as exc:
            return self._error_response(exc, start, request_id)
        except Exception as exc:  # noqa: BLE001 - the service must answer
            self.tracer.add("service.internal_errors")
            return self._fail(
                500, request_id, "internal_error",
                f"{type(exc).__name__}: {exc}", sysexit=70)
        finally:
            self.admission.release()

    def _budget_from(self, headers: Mapping[str, str]
                     ) -> tuple[Optional[float], Optional[int]]:
        """The per-request budget: client headers clamped by server caps.

        Returns ``(deadline_seconds, max_steps)``; either may be None
        (no bound requested and no server default).
        """
        timeout_ms = self._header_int(headers, "X-Repro-Timeout-Ms",
                                      self.config.default_timeout_ms)
        max_steps = self._header_int(headers, "X-Repro-Max-Steps",
                                     self.config.default_max_steps)
        if timeout_ms is not None:
            timeout_ms = min(timeout_ms, self.config.max_timeout_ms)
        if max_steps is not None:
            max_steps = min(max_steps, self.config.max_steps_cap)
        deadline = timeout_ms / 1000.0 if timeout_ms is not None else None
        return deadline, max_steps

    @staticmethod
    def _header_int(headers: Mapping[str, str], name: str,
                    default: Optional[int]) -> Optional[int]:
        raw = headers.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{name} must be an integer, got {raw!r}") \
                from None
        if value < 1:
            raise ValueError(f"{name} must be positive, got {value}")
        return value

    def _error_response(self, exc: CarError, start: float,
                        request_id: str) -> ServiceResponse:
        """Map a typed failure onto the stable sysexits→HTTP table.

        A tripped budget (504) carries its partial stats — how many
        hot-loop steps ran and how long — so the client can size a retry.
        A quota refusal (429) carries ``Retry-After``, like admission.
        """
        status = status_for_exit_code(exc.exit_code)
        detail: dict = {}
        if isinstance(exc, BudgetExceeded):
            detail["steps"] = exc.steps
            detail["duration_s"] = round(time.perf_counter() - start, 6)
        return self._fail(
            status, request_id, _snake(type(exc).__name__), str(exc),
            sysexit=exc.exit_code,
            retry_after_s=1 if status == 429 else None, detail=detail)

    # ------------------------------------------------------------------
    # Reasoning endpoints
    # ------------------------------------------------------------------
    def _memo_schema(self, source: str):
        """``(fingerprint, Schema)`` for a source text, memoized."""
        entry = self._schema_memo.get(source)
        if entry is None:
            from ..parser.parser import parse_schema
            schema = parse_schema(source)
            entry = (schema_fingerprint(schema), schema)
            self._schema_memo.put(source, entry)
        return entry

    def _memo_formula(self, text: str):
        """``(Formula, canonical key)`` for a formula text, memoized."""
        entry = self._formula_memo.get(text)
        if entry is None:
            from ..parser.parser import parse_formula
            formula = parse_formula(text)
            entry = (formula, str(formula))
            self._formula_memo.put(text, entry)
        return entry

    def _satisfiable(self, document: dict, deadline: Optional[float],
                     max_steps: Optional[int],
                     request_id: str) -> ServiceResponse:
        """``POST /v1/satisfiable`` — one formula (or class) verdict.

        Body: ``{"schema": <source>, "formula": <formula text>}`` (or
        ``"class": <name>``); ``{"schema_ref": "name@version"}`` addresses
        a registry entry instead of shipping source.  The result cache is
        consulted *before* any reasoner; misses run through the warm
        session under the request budget and populate it.
        """
        schema_source = self._schema_source(document)
        if "formula" in document:
            formula_text = self._required_str(document, "formula")
        elif "class" in document:
            formula_text = self._required_str(document, "class")
        else:
            raise ParseError(
                "satisfiable body needs a 'formula' (or 'class') key")
        formula, key = self._memo_formula(formula_text)
        fingerprint, schema = self._memo_schema(schema_source)
        cached = self.cache.get(fingerprint, key)
        if cached is not None:
            return self._ok(200, request_id, {
                "verdict": cached, "cache": "hit",
                "schema_fingerprint": fingerprint, "formula": key})
        outcome = self.session.check_many_detailed(
            schema, [formula], deadline=deadline, max_steps=max_steps,
            collect_stats=False)[0]
        if not outcome.ok:
            detail = {"steps": outcome.steps,
                      "duration_s": round(outcome.duration, 6),
                      "schema_fingerprint": fingerprint}
            return self._fail(
                status_for_exit_code(outcome.error.exit_code), request_id,
                _snake(outcome.error.kind), outcome.error.message,
                sysexit=outcome.error.exit_code, detail=detail)
        self.cache.put(fingerprint, key, outcome.verdict)
        return self._ok(200, request_id, {
            "verdict": outcome.verdict, "cache": "miss",
            "schema_fingerprint": fingerprint, "formula": key,
            "steps": outcome.steps,
            "duration_s": round(outcome.duration, 6)})

    def _query(self, document: dict, deadline: Optional[float],
               max_steps: Optional[int],
               request_id: str) -> ServiceResponse:
        """``POST /v1/query`` — certain answers of a conjunctive query.

        Body: ``{"schema": <source>, "query": "q(x) :- Person(x)"}`` plus
        an optional ``"database"`` document (see
        :func:`~repro.qa.data.database_from_document`);
        ``{"schema_ref": "name@version"}`` addresses a registry entry.
        Answers are cached by ``(schema fingerprint, canonical query,
        database hash)``; the schema's rewrite cache stays warm in the
        session across databases.
        """
        import hashlib as _hashlib

        from ..qa import parse_query
        from ..qa.ast import canonical_query, render_query

        schema_source = self._schema_source(document)
        query_text = self._required_str(document, "query")
        database = document.get("database")
        if database is not None and not isinstance(database, dict):
            raise ParseError("query 'database' must be a JSON object")
        fingerprint, schema = self._memo_schema(schema_source)
        query = parse_query(query_text, schema)
        key = "cq:" + render_query(canonical_query(query))
        if database is not None:
            key += "|db:" + _hashlib.sha256(
                json.dumps(database, sort_keys=True).encode("utf-8")
            ).hexdigest()[:16]
        cached = self.cache.get(fingerprint, key)
        if cached is not None:
            return self._ok(200, request_id, {
                **cached, "cache": "hit",
                "schema_fingerprint": fingerprint})
        budget = (Budget(deadline, max_steps)
                  if deadline is not None or max_steps is not None
                  else None)
        with use_budget(budget):
            answer = self.session.query(schema, query, database)
        data = answer.as_document()
        self.cache.put(fingerprint, key, data)
        return self._ok(200, request_id, {
            **data, "cache": "miss", "schema_fingerprint": fingerprint})

    def _classify(self, document: dict, deadline: Optional[float],
                  max_steps: Optional[int],
                  request_id: str) -> ServiceResponse:
        """``POST /v1/classify`` — the implied subsumption hierarchy
        (``schema`` source inline, or a registry ``schema_ref``)."""
        schema_source = self._schema_source(document)
        budget = (Budget(deadline, max_steps)
                  if deadline is not None or max_steps is not None
                  else None)
        with use_budget(budget):
            classification = self.session.classify(schema_source)
        return self._ok(200, request_id, {
            "subsumptions": sorted(map(list,
                                       classification.subsumptions)),
            "equivalence_groups": [sorted(group) for group in
                                   classification.equivalence_groups],
            "unsatisfiable": list(classification.unsatisfiable)})

    def _batch(self, document: dict, deadline: Optional[float],
               max_steps: Optional[int],
               request_id: str) -> ServiceResponse:
        """``POST /v1/batch`` — a heterogeneous query batch through
        :meth:`SchemaSession.run_batch` (budgets are per query)."""
        queries = document.get("queries")
        if not isinstance(queries, list):
            raise ParseError("batch body needs a 'queries' list")
        tenant = document.get("tenant")
        queries = [self._resolve_batch_query(query, tenant)
                   for query in queries]
        if len(queries) > self.config.max_batch_queries:
            return self._fail(
                413, request_id, "payload_too_large",
                f"batch of {len(queries)} exceeds the "
                f"{self.config.max_batch_queries}-query bound", sysexit=77)
        jobs = document.get("jobs", 1)
        mode = document.get("mode", "auto")
        if not isinstance(jobs, int) or jobs < 1:
            raise ParseError(f"batch 'jobs' must be a positive integer, "
                             f"got {jobs!r}")
        if mode not in _BATCH_MODES:
            raise ParseError(f"batch 'mode' must be one of "
                             f"{', '.join(_BATCH_MODES)}, got {mode!r}")
        outcomes = self.session.run_batch(
            queries, jobs=min(jobs, self.config.max_batch_jobs), mode=mode,
            deadline=deadline, max_steps=max_steps,
            collect_stats=bool(document.get("stats", False)))
        summary = {
            "total": len(outcomes),
            "ok": sum(1 for o in outcomes if o.ok),
            "timed_out": sum(1 for o in outcomes if o.timed_out),
            "failed": sum(1 for o in outcomes
                          if not o.ok and not o.timed_out),
        }
        return self._ok(200, request_id, {
            "summary": summary,
            "outcomes": [o.to_json() for o in outcomes]})

    @staticmethod
    def _required_str(document: dict, key: str) -> str:
        value = document.get(key)
        if not isinstance(value, str) or not value.strip():
            raise ParseError(
                f"request body needs a non-empty {key!r} string")
        return value

    def _schema_source(self, document: dict) -> str:
        """The schema source of a query body: inline ``schema`` text, or
        a registry ``schema_ref`` (``name`` / ``name@version``) resolved
        for the request's tenant."""
        if "schema_ref" in document and "schema" not in document:
            ref = self._required_str(document, "schema_ref")
            return self.registry.resolve(
                ref, tenant=document.get("tenant")).source
        return self._required_str(document, "schema")

    def _resolve_batch_query(self, query, tenant: Optional[str]):
        """Rewrite one batch query's ``schema_ref`` to inline source
        (non-dict and ref-less queries pass through untouched)."""
        if not isinstance(query, dict) or "schema_ref" not in query \
                or "schema" in query:
            return query
        resolved = self.registry.resolve(query["schema_ref"], tenant=tenant)
        rewritten = dict(query)
        rewritten.pop("schema_ref")
        rewritten["schema"] = resolved.source
        return rewritten

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _healthz(self, request_id: str) -> ServiceResponse:
        """Liveness: 200 whenever the process can answer at all."""
        return self._ok(200, request_id, {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._epoch, 3)})

    def _readyz(self, request_id: str) -> ServiceResponse:
        """Readiness: 200 only while started and not draining."""
        if self._draining.is_set():
            return self._fail(503, request_id, "draining",
                              "service is shutting down", retry_after_s=1)
        if not self._ready.is_set():
            return self._fail(503, request_id, "starting",
                              "service is still starting", retry_after_s=1)
        return self._ok(200, request_id, {"status": "ready"})

    def _version(self, request_id: str) -> ServiceResponse:
        """``GET /v1/version`` — every schema version this process
        speaks (the wire envelope, compiled artifacts, trace exports,
        stats snapshots) plus the identity of the LP backend answering
        Phase 2, so clients can pin or audit the solver in use."""
        from ..linear.backends import describe_backend, get_backend

        spec = self.session.config.lp_backend
        backend = get_backend(spec)
        description = describe_backend(backend)
        return self._ok(200, request_id, {
            "api_version": API_VERSION,
            "artifact_schema_version": ARTIFACT_SCHEMA_VERSION,
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "stats_schema_version": STATS_SCHEMA_VERSION,
            "lp_backend": {
                "spec": spec,
                "name": description.name,
                "capabilities": description.capabilities.as_dict(),
            },
        })

    def _metrics(self, request_id: str) -> ServiceResponse:
        """Every counter the service keeps, as one JSON document:
        admission, result cache, latency percentiles, session pipeline
        cache, registry occupancy, tracer bus."""
        return self._ok(200, request_id, {
            "uptime_s": round(time.monotonic() - self._epoch, 3),
            "admission": self.admission.stats().to_json(),
            "result_cache": self.cache.stats().to_json(),
            "latency": self.latency.snapshot(),
            "session": self.session.cache_info().to_json(),
            "registry": self.registry.stats(),
            "counters": dict(sorted(self.tracer.counters.items())),
            "gauges": dict(sorted(self.tracer.gauges.items())),
        })

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the asyncio front end and start accepting.

        Returns the bound ``(host, port)`` — with ``port=0`` this is where
        the ephemeral port becomes known.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = AsyncServiceServer(self, self.config.host,
                                          self.config.port)
        self.host, self.port = self._server.start()
        self._ready.set()
        return self.host, self.port

    def drain(self, grace: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        Marks the service draining (``/readyz`` flips to 503, new POSTs
        get 503 + ``Retry-After``), closes the listening socket, waits up
        to ``grace`` seconds (default ``config.drain_grace_s``) for
        in-flight requests, then tears down live connections, the worker
        pool, and the session.  Returns True when everything drained in
        time.
        """
        grace = grace if grace is not None else self.config.drain_grace_s
        self._draining.set()
        self._ready.clear()
        if self._server is not None:
            self._server.stop_accepting()
        drained = self.admission.wait_idle(grace)
        if self._server is not None:
            self._server.close()
            self._server = None
        self.session.close()
        return drained

    def __enter__(self) -> "ReproService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
