"""The result cache: fingerprint-keyed verdicts, ahead of any reasoner.

The session's pipeline LRU (:mod:`repro.engine.session`) makes *schemas*
warm; this cache makes *answers* free.  Satisfiability is a pure function
of ``(schema, formula)``, and :func:`~repro.engine.session.schema_fingerprint`
already normalizes definition order away — so the service can key
completed verdicts by ``(schema_fingerprint, canonical formula text)``
and answer repeats without touching a reasoner at all.  A production
query mix is dominated by exactly such repeats (the same dashboard
validating the same fleet of schemas), which is what the warm-cache
throughput benchmark (``benchmarks/bench_service.py``) measures.

Only *verdicts* are cached.  Errors are not: a budget trip depends on the
budget the client sent, not on the query, and an internal error must not
become sticky.

The cache is a plain lock-guarded LRU ``OrderedDict`` with hit / miss /
eviction counters mirrored onto the tracer (``service.result_cache_*``)
for ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

from ..obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["LruMemo", "ResultCache", "ResultCacheStats"]


@dataclass(frozen=True)
class ResultCacheStats:
    """A consistent snapshot of the cache counters and occupancy."""

    hits: int
    misses: int
    evictions: int
    size: int
    limit: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
            "size": self.size,
            "limit": self.limit,
        }


class ResultCache:
    """A bounded, thread-safe LRU of ``(fingerprint, formula) -> verdict``."""

    def __init__(self, limit: int = 1024,
                 tracer: Union[Tracer, NullTracer] = NULL_TRACER):
        if limit < 1:
            raise ValueError(f"cache limit must be positive, got {limit}")
        self.limit = limit
        self._tracer = tracer
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, str], bool]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def peek(self, fingerprint: str, formula: str) -> Optional[bool]:
        """Like :meth:`get`, but a miss is not counted (and not traced).

        The event-loop fast path probes the cache before deciding whether
        a request needs a worker thread at all; counting those probes as
        misses would double-book every cold request (once at the probe,
        once at the real :meth:`get` inside the handler).
        """
        key = (fingerprint, formula)
        with self._lock:
            try:
                verdict = self._entries[key]
            except KeyError:
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._tracer.add("service.result_cache_hits")
            return verdict

    def get(self, fingerprint: str, formula: str) -> Optional[bool]:
        """The cached verdict, or None on a miss (verdicts are booleans,
        so None is unambiguous)."""
        key = (fingerprint, formula)
        with self._lock:
            try:
                verdict = self._entries[key]
            except KeyError:
                self._misses += 1
                self._tracer.add("service.result_cache_misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._tracer.add("service.result_cache_hits")
            return verdict

    def put(self, fingerprint: str, formula: str, verdict: bool) -> None:
        """Store a completed verdict, evicting the LRU entry when full."""
        key = (fingerprint, formula)
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._tracer.add("service.result_cache_evictions")
            self._tracer.gauge("service.result_cache_size",
                               len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._tracer.gauge("service.result_cache_size", 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(self._hits, self._misses,
                                    self._evictions, len(self._entries),
                                    self.limit)


class LruMemo:
    """A small, generic, thread-safe LRU memo: hashable key → value.

    The service keeps two of these on the hot path — schema source →
    ``(fingerprint, Schema)`` and formula text → ``(Formula, canonical
    key)`` — so a warm request never re-parses inputs the previous
    thousand requests already parsed.  Unlike :class:`ResultCache` it has
    no counters and no tracer: it memoizes *derivations* of the request
    text, not answers, so its hit rate is not an interesting service
    metric (it tracks the result cache's).
    """

    __slots__ = ("limit", "_lock", "_entries")

    def __init__(self, limit: int = 256):
        if limit < 1:
            raise ValueError(f"memo limit must be positive, got {limit}")
        self.limit = limit
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        """The memoized value, or None (values are never None here)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
