"""The wire layer of the query service: status mapping and the handler.

This module owns everything that touches raw HTTP so the application
logic in :mod:`repro.service.app` stays a pure, socket-free function
``(method, path, headers, body) -> ServiceResponse`` that unit tests can
drive directly.

Two contracts live here:

* **The error table.**  Every :class:`~repro.core.errors.CarError` carries
  a stable sysexits code; :data:`HTTP_STATUS_BY_EXIT` maps those codes
  onto HTTP statuses, so the CLI's exit codes and the service's response
  statuses are two renderings of one table (a test per exit code pins
  them together):

  ====  ====================================  ===========================
  exit  meaning                               HTTP status
  ====  ====================================  ===========================
  65    malformed input (parse/schema)        422 Unprocessable Entity
  64    unanswerable question                 400 Bad Request
  66    unreadable input                      400 Bad Request
  67    unknown schema/version (registry)     404 Not Found
  69    tenant count quota exhausted          429 Too Many Requests
  73    could not produce the output          500 Internal Server Error
  70    internal inconsistency                500 Internal Server Error
  75    budget tripped                        504 Gateway Timeout
  77    source size quota exceeded            413 Payload Too Large
  ====  ====================================  ===========================

* **The response envelope.**  Every response body is a JSON object
  carrying the ``request_id`` that is also echoed in the
  ``X-Repro-Request-Id`` header, so logs, traces, and clients correlate
  on one token.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ReproService

__all__ = [
    "HTTP_STATUS_BY_EXIT",
    "status_for_exit_code",
    "new_request_id",
    "ServiceResponse",
    "ServiceServer",
    "make_server",
]

#: sysexits code (:mod:`repro.core.errors`) → HTTP response status.
HTTP_STATUS_BY_EXIT: dict[int, int] = {
    64: 400,   # ReasoningError — the question itself is bad
    65: 422,   # Parse/Schema/SemanticsError — body understood, input not
    66: 400,   # unreadable input (EX_NOINPUT)
    67: 404,   # RegistryNotFound — no such schema/version
    69: 429,   # RegistryQuotaError — tenant count quota exhausted
    70: 500,   # internal inconsistency (EX_SOFTWARE)
    73: 500,   # SynthesisError — could not produce the output
    75: 504,   # BudgetExceeded — the service declined to keep paying
    77: 413,   # RegistrySizeError — source size quota exceeded
}


def status_for_exit_code(exit_code: int) -> int:
    """The HTTP status for a sysexits code (unknown codes are 500)."""
    return HTTP_STATUS_BY_EXIT.get(exit_code, 500)


def new_request_id() -> str:
    """A fresh opaque request id (echoed in header and body)."""
    return uuid.uuid4().hex[:16]


@dataclass
class ServiceResponse:
    """One application-level response: status, JSON payload, extra headers.

    The payload is rendered with ``json.dumps`` by the wire layer; extra
    headers (``Retry-After`` on 429/503, ...) ride along as pairs.
    """

    status: int
    payload: dict
    headers: tuple[tuple[str, str], ...] = field(default=())


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` that knows its application."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: "ReproService"):
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    """The thin shell: read the body, dispatch, write the JSON response."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Access logging goes through the tracer (service.requests and
        # friends), not stderr — a loaded service must not pay a write(2)
        # per request for a log nobody aggregates.
        pass

    def _read_body(self) -> Optional[bytes]:
        """The request body, or None when it exceeds the size cap.

        The cap is enforced *before* reading: an oversized upload is
        rejected from its Content-Length alone, without buffering it.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.app.config.max_body_bytes:
            return None
        return self.rfile.read(length) if length else b""

    def _respond(self, response: ServiceResponse) -> None:
        body = json.dumps(response.payload, sort_keys=True).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        request_id = response.payload.get("request_id")
        if request_id:
            self.send_header("X-Repro-Request-Id", str(request_id))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- verbs ----------------------------------------------------------
    def _handle(self) -> None:
        app = self.server.app
        body = self._read_body()
        if body is None:
            response = app.too_large()
        else:
            response = app.dispatch(self.command, self.path,
                                    self.headers, body)
        try:
            self._respond(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up; nothing to tell it

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle()

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._handle()

    def do_PUT(self) -> None:  # noqa: N802 - http.server naming
        self._handle()

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._handle()


def make_server(app: "ReproService", host: str, port: int) -> ServiceServer:
    """Bind a threaded HTTP server for ``app`` (port 0 = ephemeral)."""
    return ServiceServer((host, port), app)
