"""The wire layer of the query service: an asyncio HTTP/1.1 front end.

This module owns everything that touches raw sockets so the application
logic in :mod:`repro.service.app` stays a pure, socket-free function
``(method, path, headers, body) -> ServiceResponse`` that unit tests can
drive directly.

The transport is a single-threaded asyncio event loop
(:func:`asyncio.start_server` plus a hand-rolled HTTP/1.1 parser — no
dependencies) in front of a sized worker pool:

* **Keep-alive and pipelining.**  Connections persist across requests;
  a client may send up to ``ServiceConfig.pipeline_depth`` requests
  before reading a response.  Parsing runs ahead of dispatch, so the
  accept/parse path never waits on the reasoner; responses always come
  back in request order.
* **Self-protection.**  Idle connections (and slow-loris writers) are
  closed after ``idle_timeout_s``; request lines and header blocks above
  ``max_header_bytes`` answer 431; bodies above ``max_body_bytes`` are
  rejected from their ``Content-Length`` alone (413, nothing buffered);
  a transport-level pending bound turns extreme overload into immediate
  429s before work ever reaches the pool's queue.
* **The worker pool.**  Parsed requests run
  :meth:`~repro.service.app.ReproService.dispatch` on a
  ``ThreadPoolExecutor`` of ``ServiceConfig.effective_workers`` threads.
  Requests the application can answer without any reasoning — GET
  introspection and warm result-cache hits — take
  :meth:`~repro.service.app.ReproService.try_fast_dispatch` directly on
  the event loop and skip the pool hop entirely.

Two wire contracts also live here:

* **The error table.**  Every :class:`~repro.core.errors.CarError` carries
  a stable sysexits code; :data:`HTTP_STATUS_BY_EXIT` maps those codes
  onto HTTP statuses, so the CLI's exit codes and the service's response
  statuses are two renderings of one table (a test per exit code pins
  them together):

  ====  ====================================  ===========================
  exit  meaning                               HTTP status
  ====  ====================================  ===========================
  65    malformed input (parse/schema)        422 Unprocessable Entity
  64    unanswerable question                 400 Bad Request
  66    unreadable input                      400 Bad Request
  67    unknown schema/version (registry)     404 Not Found
  69    tenant count quota exhausted          429 Too Many Requests
  73    could not produce the output          500 Internal Server Error
  70    internal inconsistency                500 Internal Server Error
  75    budget tripped                        504 Gateway Timeout
  77    source size quota exceeded            413 Payload Too Large
  ====  ====================================  ===========================

* **The v1 envelope.**  Every response body — including the protocol
  errors this module raises itself — is the versioned envelope built by
  the single serializer in :mod:`repro.service.app`
  (:meth:`ReproService.protocol_error` for wire-level failures); the
  ``request_id`` inside it is echoed in the ``X-Repro-Request-Id``
  header, so logs, traces, and clients correlate on one token.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .app import ReproService

__all__ = [
    "HTTP_STATUS_BY_EXIT",
    "status_for_exit_code",
    "new_request_id",
    "Headers",
    "ServiceResponse",
    "AsyncServiceServer",
]

#: sysexits code (:mod:`repro.core.errors`) → HTTP response status.
HTTP_STATUS_BY_EXIT: dict[int, int] = {
    64: 400,   # ReasoningError — the question itself is bad
    65: 422,   # Parse/Schema/SemanticsError — body understood, input not
    66: 400,   # unreadable input (EX_NOINPUT)
    67: 404,   # RegistryNotFound — no such schema/version
    69: 429,   # RegistryQuotaError — tenant count quota exhausted
    70: 500,   # internal inconsistency (EX_SOFTWARE)
    73: 500,   # SynthesisError — could not produce the output
    75: 504,   # BudgetExceeded — the service declined to keep paying
    77: 413,   # RegistrySizeError — source size quota exceeded
}

#: HTTP status → reason phrase (only the statuses this service emits).
_REASONS: dict[int, str] = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

SERVER_NAME = "repro-service/2.0"


def status_for_exit_code(exit_code: int) -> int:
    """The HTTP status for a sysexits code (unknown codes are 500)."""
    return HTTP_STATUS_BY_EXIT.get(exit_code, 500)


# A random per-process prefix plus a counter: unique like uuid4 for
# correlation purposes, without paying for 16 bytes of os.urandom on
# every request (measurable at warm-cache request rates).
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_COUNTER = itertools.count(1)


def new_request_id() -> str:
    """A fresh opaque request id (echoed in header and body)."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER) & 0xFFFFFFFF:08x}"


class Headers(Mapping):
    """A case-insensitive, immutable view of one request's headers.

    The application reads canonical spellings (``X-Repro-Timeout-Ms``);
    clients send whatever casing they like.  Plain dicts still satisfy
    the ``Mapping`` the application accepts, so socket-free tests keep
    passing ``{}`` literals.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[str, str] = ()):
        pairs = entries.items() if isinstance(entries, Mapping) else entries
        self._entries = {key.lower(): value for key, value in pairs}

    def __getitem__(self, key: str) -> str:
        return self._entries[key.lower()]

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Headers({self._entries!r})"


@dataclass
class ServiceResponse:
    """One application-level response: status, JSON payload, extra headers.

    The payload is rendered with ``json.dumps`` by the wire layer; extra
    headers (``Retry-After`` on 429/503, ...) ride along as pairs.
    ``close`` asks the transport to end the connection after writing —
    set on protocol errors, where request framing can no longer be
    trusted (application errors keep the connection alive).
    """

    status: int
    payload: dict
    headers: tuple[tuple[str, str], ...] = field(default=())
    close: bool = False


class _ProtocolError(Exception):
    """A wire-level failure the server can still answer (431, 413, ...).

    After one of these the connection's framing is unreliable, so the
    response it produces always closes the connection.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class _Hangup(Exception):
    """The client vanished (EOF mid-request, reset): close silently."""


@dataclass
class _Request:
    """One fully parsed request, ready for dispatch."""

    method: str
    target: str
    headers: Headers
    body: bytes
    close: bool  # client asked for Connection: close (or HTTP/1.0)


class AsyncServiceServer:
    """The asyncio front end: accept, parse, pool-dispatch, write.

    The event loop runs on a dedicated background thread so the blocking
    :class:`~repro.service.app.ReproService` lifecycle API (``start`` /
    ``drain`` from signal handlers and tests) stays synchronous.  All
    loop state (connection task set, pending-dispatch counter) is only
    touched from the loop thread; cross-thread entry points go through
    ``call_soon_threadsafe`` / ``run_coroutine_threadsafe``.
    """

    def __init__(self, app: "ReproService", host: str, port: int):
        self.app = app
        self._host = host
        self._port = port
        self.server_address: tuple[str, int] = (host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._pool = ThreadPoolExecutor(
            max_workers=app.config.effective_workers,
            thread_name_prefix="repro-worker")
        self._connections: set[asyncio.Task] = set()
        self._pending = 0  # dispatches submitted to the pool, unfinished
        self._pending_limit = (app.config.effective_workers
                               + app.config.queue_depth)
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle (called from foreign threads)
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve on a background event-loop thread.

        Returns the bound ``(host, port)`` — with port 0 this is where
        the ephemeral port becomes known.
        """
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        return self.server_address

    def stop_accepting(self) -> None:
        """Close the listening socket; live connections keep draining."""
        if self._loop is None or self._server is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._close_listener(), self._loop)
        future.result(timeout=5.0)

    def close(self) -> None:
        """Tear down: cancel connections, stop the loop, join, free pool."""
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop)
            try:
                future.result(timeout=10.0)
            except (TimeoutError, asyncio.TimeoutError):  # pragma: no cover
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(
                    self._serve_connection, self._host, self._port,
                    limit=max(65536, self.app.config.max_header_bytes)))
            bound = self._server.sockets[0].getsockname()
            self.server_address = (bound[0], bound[1])
        except BaseException as exc:  # noqa: BLE001 - report bind failures
            self._startup_error = exc
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _close_listener(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _shutdown(self) -> None:
        await self._close_listener()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling (loop thread only)
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        tracer = self.app.tracer
        tracer.add("service.connections_opened")
        tracer.gauge("service.connections_open", len(self._connections))
        # outstanding[0] counts parsed-but-unanswered requests: a new
        # request arriving while it is positive is pipelining in action.
        outstanding = [0]
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, self.app.config.pipeline_depth))
        responder = asyncio.ensure_future(
            self._respond_loop(queue, writer, outstanding))
        try:
            while True:
                try:
                    request = await self._read_request(reader, writer)
                except _ProtocolError as exc:
                    tracer.add("service.protocol_errors")
                    await queue.put(exc)
                    break
                except _Hangup:
                    tracer.add("service.client_disconnects")
                    break
                if request is None:  # clean EOF between requests
                    break
                if outstanding[0] > 0:
                    tracer.add("service.requests_pipelined")
                else:
                    tracer.add("service.requests_unpipelined")
                outstanding[0] += 1
                await queue.put(request)
                if request.close:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown: fall through to cleanup
        finally:
            await queue.put(None)
            try:
                await responder
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._connections.discard(task)
            tracer.add("service.connections_closed")
            tracer.gauge("service.connections_open", len(self._connections))

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter
                            ) -> Optional[_Request]:
        """Parse one HTTP/1.1 request, or None on clean EOF.

        Raises :class:`_ProtocolError` for malformed or oversized input
        and :class:`_Hangup` for idle timeouts and mid-request EOF.

        The whole header block is read with a single ``readuntil`` under
        a single :func:`asyncio.timeout`.  That is both the fast path —
        one await per request instead of one per header line, and no
        wrapper task at all when a pipelined request is already buffered
        — and the slow-loris defence: the block must complete within one
        idle timeout of when we started waiting, no matter how slowly
        its lines trickle in.
        """
        config = self.app.config
        timeout = config.idle_timeout_s
        try:
            # blank lines before the start line are tolerated
            # (rfc9112 §2.2), but only a few
            for _ in range(4):
                # pipelined fast path: when a whole header block is
                # already buffered, skip the timeout scaffolding (a
                # timer schedule + cancel per request adds up)
                if b"\r\n\r\n" in getattr(reader, "_buffer", b""):
                    block = (await reader.readuntil(b"\r\n\r\n"))[:-4]
                else:
                    async with asyncio.timeout(timeout):
                        block = (await reader.readuntil(b"\r\n\r\n"))[:-4]
                while block[:2] == b"\r\n":
                    block = block[2:]
                if block:
                    break
            else:
                raise _ProtocolError(
                    400, "bad_request_line",
                    "too many empty lines before the request")
        except TimeoutError:
            self.app.tracer.add("service.idle_timeouts")
            raise _Hangup from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial.strip(b"\r\n"):
                return None  # clean EOF between requests
            raise _Hangup from None  # client quit mid-headers
        except asyncio.LimitOverrunError:
            raise _ProtocolError(
                431, "headers_too_large",
                f"header block exceeds {config.max_header_bytes} "
                f"bytes") from None
        lines = block.split(b"\r\n")
        start_line = lines[0]
        if len(start_line) > config.max_header_bytes:
            raise _ProtocolError(
                431, "headers_too_large",
                f"request line exceeds {config.max_header_bytes} bytes")
        if len(block) - len(start_line) > config.max_header_bytes:
            raise _ProtocolError(
                431, "headers_too_large",
                f"header block exceeds {config.max_header_bytes} bytes")
        try:
            method, target, version = start_line.decode(
                "ascii").split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            raise _ProtocolError(
                400, "bad_request_line",
                f"malformed request line: {start_line[:80]!r}") from None
        if not version.startswith("HTTP/1."):
            raise _ProtocolError(400, "bad_request_line",
                                 f"unsupported protocol {version!r}")
        pairs: list[tuple[str, str]] = []
        for raw in lines[1:]:
            name, separator, value = raw.decode("latin-1").partition(":")
            if not separator or not name.strip():
                raise _ProtocolError(400, "bad_header",
                                     f"malformed header line: {raw[:80]!r}")
            pairs.append((name.strip(), value.strip()))
        headers = Headers(pairs)
        if "transfer-encoding" in headers:
            raise _ProtocolError(501, "unsupported_transfer_encoding",
                                 "chunked request bodies are not supported")
        # -- body (rejected from Content-Length alone when oversized)
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _ProtocolError(
                400, "bad_header",
                f"Content-Length is not a length: {raw_length!r}") from None
        if length > config.max_body_bytes:
            raise _ProtocolError(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{config.max_body_bytes}-byte limit")
        if length and headers.get("expect", "").lower() == "100-continue":
            # A client that sent Expect is waiting before its body, so it
            # cannot be pipelining ahead; answering inline is safe.
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        body = b""
        if length:
            try:
                if len(getattr(reader, "_buffer", b"")) >= length:
                    body = await reader.readexactly(length)
                else:
                    async with asyncio.timeout(timeout):
                        body = await reader.readexactly(length)
            except TimeoutError:
                self.app.tracer.add("service.idle_timeouts")
                raise _Hangup from None
            except asyncio.IncompleteReadError:
                raise _Hangup from None  # client quit mid-body
        wants_close = headers.get("connection", "").lower() == "close" \
            or (version == "HTTP/1.0"
                and headers.get("connection", "").lower() != "keep-alive")
        return _Request(method, target, headers, body, wants_close)

    async def _respond_loop(self, queue: asyncio.Queue,
                            writer: asyncio.StreamWriter,
                            outstanding: list) -> None:
        """Drain the connection's request queue in order.

        Responses are accumulated in a buffer and flushed when the queue
        momentarily empties (or before blocking on the worker pool): a
        pipelined batch of warm-cache hits goes out as one ``send``
        syscall instead of one per response.
        """
        loop = asyncio.get_running_loop()
        buffer = bytearray()

        async def flush() -> None:
            if buffer:
                writer.write(bytes(buffer))
                buffer.clear()
                await writer.drain()

        try:
            while True:
                if queue.empty():
                    await flush()
                item = await queue.get()
                if item is None:
                    await flush()
                    return
                if isinstance(item, _ProtocolError):
                    response = self.app.protocol_error(
                        item.status, item.code, item.message)
                    buffer += _encode_response(response, close=True)
                    await flush()
                    return
                request: _Request = item
                response = self.app.try_fast_dispatch(
                    request.method, request.target, request.headers,
                    request.body)
                if response is None:
                    if self._pending >= self._pending_limit:
                        self.app.tracer.add("service.rejected_overloaded")
                        response = self.app.overloaded()
                    else:
                        # real reasoning ahead: ship finished replies
                        # instead of sitting on them while it runs
                        await flush()
                        self._pending += 1
                        try:
                            response = await loop.run_in_executor(
                                self._pool, self.app.dispatch,
                                request.method, request.target,
                                request.headers, request.body)
                        finally:
                            self._pending -= 1
                outstanding[0] -= 1
                close = response.close or request.close
                buffer += _encode_response(response, close=close)
                if close or len(buffer) >= _FLUSH_BYTES:
                    await flush()
                    if close:
                        return
        except (ConnectionError, OSError):
            self.app.tracer.add("service.client_disconnects")
            return


#: flush the response buffer at this size even mid-batch
_FLUSH_BYTES = 65536


def _encode_response(response: ServiceResponse, close: bool) -> bytes:
    body = json.dumps(response.payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Server: {SERVER_NAME}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}"]
    request_id = response.payload.get("request_id")
    if request_id:
        head.append(f"X-Repro-Request-Id: {request_id}")
    for name, value in response.headers:
        head.append(f"{name}: {value}")
    head.append(f"Connection: {'close' if close else 'keep-alive'}")
    return "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body
