"""Latency accounting for the service: a lock-guarded log-bucket histogram.

The asyncio front end answers thousands of requests a second, so the
service cannot afford to keep (or sort) every observed latency just to
report percentiles.  :class:`LatencyHistogram` buckets observations on a
geometric grid instead: fixed memory, O(1) ``observe``, and percentile
estimates whose error is bounded by the bucket growth factor (~10% with
the default 1.25 ratio) — plenty for the p50/p99 rows ``/metrics`` and
``BENCH_service.json`` report.

The histogram is deliberately tracer-independent: the tracer's counters
are monotone sums, while percentiles need the full distribution shape.
``/metrics`` carries both.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["LatencyHistogram"]

#: Bucket grid: first boundary and geometric growth per bucket.
_FIRST_BOUNDARY_S = 50e-6
_GROWTH = 1.25
_BUCKETS = 96  # covers ~50µs .. ~100s


def _boundaries() -> list[float]:
    bounds, edge = [], _FIRST_BOUNDARY_S
    for _ in range(_BUCKETS):
        bounds.append(edge)
        edge *= _GROWTH
    return bounds


class LatencyHistogram:
    """Fixed-size geometric histogram of durations (seconds).

    ``observe`` files each duration into the first bucket whose upper
    boundary contains it; ``percentile`` walks the cumulative counts and
    returns the boundary of the bucket where the rank falls.  Thread-safe:
    worker-pool threads observe concurrently with ``/metrics`` snapshots.
    """

    __slots__ = ("_lock", "_counts", "_bounds", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bounds = _boundaries()
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, p: float) -> float:
        """The latency (seconds) at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, round(self._count * p / 100.0))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if index >= len(self._bounds):
                    return self._max
                return min(self._bounds[index], self._max)
        return self._max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> dict:
        """The ``/metrics`` rendering: count, mean, p50/p90/p99, max (ms)."""
        with self._lock:
            count = self._count
            mean_s = self._sum / count if count else 0.0
            p50, p90, p99 = (self._percentile_locked(p)
                             for p in (50.0, 90.0, 99.0))
            max_s = self._max
        return {
            "count": count,
            "mean_ms": round(mean_s * 1000, 4),
            "p50_ms": round(p50 * 1000, 4),
            "p90_ms": round(p90 * 1000, 4),
            "p99_ms": round(p99 * 1000, 4),
            "max_ms": round(max_s * 1000, 4),
        }
