"""The multi-tenant schema registry: named, versioned, quota-bounded.

:class:`~repro.engine.session.SchemaSession` speaks fingerprints — opaque
content hashes with no notion of *which* schema a client meant, who owns
it, or how it evolved.  The registry is the naming layer above it:

* every schema lives at ``(tenant, name)`` and accumulates a **version
  history** — each :meth:`SchemaRegistry.put` of changed source appends a
  :class:`SchemaVersion` (monotonic number, source, fingerprint,
  timestamp) and revalidates it through :meth:`SchemaSession.update
  <repro.engine.session.SchemaSession.update>`, so consecutive versions
  pay only for their diff (see :mod:`repro.engine.delta`);
* **quotas** bound each tenant: schema count, per-source and total stored
  bytes, and in-flight revalidations — breaches raise the typed
  :class:`~repro.core.errors.RegistryQuotaError` /
  :class:`~repro.core.errors.RegistrySizeError` the HTTP layer renders as
  429 / 413;
* version histories are **pruned** to ``max_versions_per_schema``, except
  versions a client **pinned** — a pinned version survives pruning
  indefinitely (and blocks it: when every prunable version is pinned, the
  next put is refused rather than silently unbounded);
* ``name@version`` **references** (:meth:`SchemaRegistry.resolve`) give
  query endpoints a stable address, so a request can say *what* to query
  without shipping the schema text.

The registry is deliberately in-memory: its durable complement is the
fingerprint-keyed :class:`~repro.engine.artifact.ArtifactCache` underneath
the session, which survives restarts and makes re-``put`` of a known
version cheap.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Union

from ..core.errors import (RegistryError, RegistryNotFound,
                           RegistryQuotaError, RegistrySizeError)
from ..engine.config import EngineConfig
from ..engine.session import SchemaSession, schema_fingerprint
from ..obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.delta import RevalidationReport
    from ..reasoner.satisfiability import Reasoner

__all__ = ["RegistryConfig", "SchemaRegistry", "SchemaVersion"]

#: Schema and tenant names: an identifier-ish token, no ``@`` (reserved
#: for version references) and no path separators (names appear in URLs).
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]{0,127}$")


def _check_name(kind: str, value: str) -> str:
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise RegistryError(
            f"invalid {kind} {value!r}: expected a token matching "
            f"[A-Za-z_][A-Za-z0-9_.-]* (max 128 chars)")
    return value


@dataclass(frozen=True)
class RegistryConfig:
    """Per-tenant quota knobs (one config governs every tenant alike)."""

    #: Distinct schema names one tenant may hold.
    max_schemas_per_tenant: int = 64
    #: Version-history depth per schema; older unpinned versions are
    #: pruned past this.
    max_versions_per_schema: int = 16
    #: Size gate for one schema source, in bytes of UTF-8.
    max_schema_source_bytes: int = 256 * 1024
    #: Size gate for a tenant's total stored source bytes, all versions.
    max_total_source_bytes: int = 4 * 1024 * 1024
    #: Concurrent revalidations one tenant may have in flight; excess puts
    #: are refused (429), not queued — the caller owns the retry policy.
    max_inflight_revalidations: int = 4
    #: Tenant used when a caller does not name one.
    default_tenant: str = "default"


@dataclass(frozen=True)
class SchemaVersion:
    """One immutable entry of a schema's version history."""

    tenant: str
    name: str
    version: int
    source: str
    fingerprint: str
    created_at: float
    pinned: bool = False
    #: The revalidation that admitted this version, as reported JSON
    #: (None for the pre-registry seed of an entry, never for puts).
    revalidation: Optional[dict] = field(default=None, compare=False)

    @property
    def ref(self) -> str:
        """The ``name@version`` reference addressing exactly this entry."""
        return f"{self.name}@{self.version}"

    def summary(self) -> dict:
        """The JSON shape the HTTP layer and CLI render."""
        return {
            "tenant": self.tenant,
            "name": self.name,
            "version": self.version,
            "ref": self.ref,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "pinned": self.pinned,
            "source_bytes": len(self.source.encode("utf-8")),
        }


class SchemaRegistry:
    """Named, versioned schemas for one fleet of tenants.

    Thread-safe: the history map and quota counters share one lock, and
    revalidation (the expensive part) runs *outside* it, guarded by the
    in-flight admission counter — so concurrent puts of different schemas
    overlap, while a tenant flooding puts is refused at
    ``max_inflight_revalidations``.

    >>> registry = SchemaRegistry(SchemaSession())
    >>> version, report = registry.put("inventory", "class A endclass")
    >>> registry.resolve("inventory@1").fingerprint == version.fingerprint
    True
    """

    def __init__(self, session: Optional[SchemaSession] = None,
                 config: Optional[RegistryConfig] = None, *,
                 engine_config: Optional[EngineConfig] = None):
        self.session = session if session is not None else SchemaSession(
            engine_config)
        self.config = config if config is not None else RegistryConfig()
        self._entries: dict[tuple[str, str], list[SchemaVersion]] = {}
        self._inflight: dict[str, int] = {}
        self._lock = threading.RLock()
        self._tracer = self.session.last_trace() or NULL_TRACER

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, name: str, source: str, *,
            tenant: Optional[str] = None
            ) -> "tuple[SchemaVersion, RevalidationReport]":
        """Store (or revise) ``name`` and revalidate the new version.

        Identical source (by canonical fingerprint) to the latest version
        is **deduplicated**: no new version number is minted, and the
        returned report's mode is ``"unchanged"``.  A genuinely new
        version diffs against its predecessor through
        :meth:`SchemaSession.update
        <repro.engine.session.SchemaSession.update>`, so only the edited
        clusters are rebuilt; the report itemizes the reuse and is also
        stored on the returned :class:`SchemaVersion`.
        """
        tenant = _check_name("tenant", tenant or self.config.default_tenant)
        _check_name("schema name", name)
        if not isinstance(source, str) or not source.strip():
            raise RegistryError(f"schema {name!r} needs non-empty source")
        source_bytes = len(source.encode("utf-8"))
        if source_bytes > self.config.max_schema_source_bytes:
            raise RegistrySizeError(
                f"schema {name!r} is {source_bytes} bytes; the per-schema "
                f"limit is {self.config.max_schema_source_bytes}")
        key = (tenant, name)
        with self._lock:
            history = self._entries.get(key)
            prev = history[-1] if history else None
            self._admit(tenant, name, prev, source_bytes)
            self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        try:
            # Revalidate outside the lock: parsing + delta rebuild are the
            # expensive part, and puts of other schemas need not wait.
            fingerprint = schema_fingerprint(source)
            if prev is not None and prev.fingerprint == fingerprint:
                from ..engine.delta import RevalidationReport

                self._tracer.add("registry.put_deduped")
                return prev, RevalidationReport(
                    mode="unchanged", fingerprint_old=prev.fingerprint,
                    fingerprint_new=fingerprint)
            _, report = self.session.update(
                prev.fingerprint if prev is not None else None, source)
        finally:
            with self._lock:
                self._inflight[tenant] -= 1
        with self._lock:
            # Re-read: a concurrent put may have appended meanwhile; the
            # version number must still come out monotonic.
            history = self._entries.setdefault(key, [])
            number = history[-1].version + 1 if history else 1
            entry = SchemaVersion(
                tenant=tenant, name=name, version=number, source=source,
                fingerprint=fingerprint, created_at=time.time(),
                revalidation=report.to_json())
            history.append(entry)
            self._prune(key)
            self._tracer.add("registry.put")
            self._tracer.gauge(f"registry.schemas.{tenant}",
                               self._schema_count(tenant))
        return entry, report

    def _admit(self, tenant: str, name: str, prev: Optional[SchemaVersion],
               source_bytes: int) -> None:
        """Quota gate for one put (caller holds the lock)."""
        cfg = self.config
        if prev is None and self._schema_count(tenant) >= \
                cfg.max_schemas_per_tenant:
            raise RegistryQuotaError(
                f"tenant {tenant!r} already holds "
                f"{cfg.max_schemas_per_tenant} schemas; delete one before "
                f"adding {name!r}")
        if self._total_bytes(tenant) + source_bytes > \
                cfg.max_total_source_bytes:
            raise RegistrySizeError(
                f"storing {name!r} would push tenant {tenant!r} past its "
                f"total source budget of {cfg.max_total_source_bytes} bytes")
        if self._inflight.get(tenant, 0) >= cfg.max_inflight_revalidations:
            raise RegistryQuotaError(
                f"tenant {tenant!r} has {cfg.max_inflight_revalidations} "
                f"revalidations in flight; retry when one completes")

    def _prune(self, key: tuple[str, str]) -> None:
        """Trim the history at ``key`` to the configured depth.

        Pinned versions never leave; when pins alone exceed the depth the
        put that got us here is rolled back and refused, so a tenant
        cannot grow unbounded history by pinning everything.
        """
        history = self._entries[key]
        limit = self.config.max_versions_per_schema
        while len(history) > limit:
            prunable = next(
                (i for i, v in enumerate(history[:-1]) if not v.pinned),
                None)
            if prunable is None:
                history.pop()  # roll back the just-appended version
                raise RegistryQuotaError(
                    f"schema {key[1]!r} has {limit} pinned versions; "
                    f"unpin one before adding more")
            dropped = history.pop(prunable)
            self._tracer.add("registry.pruned")
            self.session.invalidate(dropped.source)

    def pin(self, name: str, version: int, *, tenant: Optional[str] = None,
            pinned: bool = True) -> SchemaVersion:
        """Pin (or unpin) one version against history pruning."""
        tenant = tenant or self.config.default_tenant
        with self._lock:
            history = self._history(tenant, name)
            for i, entry in enumerate(history):
                if entry.version == version:
                    history[i] = replace(entry, pinned=pinned)
                    self._tracer.add("registry.pin")
                    return history[i]
        raise RegistryNotFound(
            f"schema {name!r} has no version {version} for tenant {tenant!r}")

    def delete(self, name: str, *, tenant: Optional[str] = None,
               version: Optional[int] = None,
               drop_artifacts: bool = False) -> int:
        """Delete a whole schema, or one version of it.

        Returns the number of versions removed.  The session's warm
        pipelines for the removed sources are invalidated; with
        ``drop_artifacts=True`` their on-disk artifacts go too (the
        default keeps them — a re-put of known source then revalidates
        nearly for free).
        """
        tenant = tenant or self.config.default_tenant
        with self._lock:
            history = self._history(tenant, name)
            if version is None:
                removed = list(history)
                del self._entries[(tenant, name)]
            else:
                removed = [v for v in history if v.version == version]
                if not removed:
                    raise RegistryNotFound(
                        f"schema {name!r} has no version {version} for "
                        f"tenant {tenant!r}")
                history.remove(removed[0])
                if not history:
                    del self._entries[(tenant, name)]
            self._tracer.add("registry.delete", len(removed))
            self._tracer.gauge(f"registry.schemas.{tenant}",
                               self._schema_count(tenant))
        for entry in removed:
            self.session.invalidate(entry.source,
                                    drop_artifacts=drop_artifacts)
        return len(removed)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, name: str, *, tenant: Optional[str] = None,
            version: Optional[int] = None) -> SchemaVersion:
        """The named version, or the latest when ``version`` is None."""
        tenant = tenant or self.config.default_tenant
        with self._lock:
            history = self._history(tenant, name)
            if version is None:
                return history[-1]
            for entry in history:
                if entry.version == version:
                    return entry
        raise RegistryNotFound(
            f"schema {name!r} has no version {version} for tenant {tenant!r}")

    def resolve(self, ref: str, *,
                tenant: Optional[str] = None) -> SchemaVersion:
        """Resolve a ``name`` / ``name@version`` / ``name@latest`` ref."""
        if not isinstance(ref, str) or not ref:
            raise RegistryError(f"invalid schema ref {ref!r}")
        name, sep, suffix = ref.partition("@")
        if not sep or suffix == "latest":
            return self.get(name, tenant=tenant)
        try:
            version = int(suffix)
        except ValueError:
            raise RegistryError(
                f"invalid schema ref {ref!r}: the part after '@' must be "
                f"a version number or 'latest'") from None
        if version < 1:
            raise RegistryError(
                f"invalid schema ref {ref!r}: versions start at 1")
        return self.get(name, tenant=tenant, version=version)

    def reasoner(self, ref: str, *,
                 tenant: Optional[str] = None) -> "Reasoner":
        """The warm reasoner for a ref — the query-path entry point."""
        return self.session.reasoner(self.resolve(ref, tenant=tenant).source)

    def versions(self, name: str, *,
                 tenant: Optional[str] = None) -> list[SchemaVersion]:
        """The full (post-pruning) history, oldest first."""
        tenant = tenant or self.config.default_tenant
        with self._lock:
            return list(self._history(tenant, name))

    def list(self, *, tenant: Optional[str] = None) -> list[dict]:
        """Latest-version summaries for one tenant, sorted by name."""
        tenant = tenant or self.config.default_tenant
        with self._lock:
            rows = [history[-1].summary()
                    | {"versions": len(history),
                       "pinned_versions": sum(1 for v in history if v.pinned)}
                    for (owner, _), history in sorted(self._entries.items())
                    if owner == tenant]
        return rows

    def stats(self) -> dict:
        """Registry occupancy for ``/metrics``: per-tenant counts/bytes."""
        with self._lock:
            tenants = sorted({tenant for tenant, _ in self._entries})
            return {
                "schemas": sum(len(h) > 0 for h in self._entries.values()),
                "versions": sum(len(h) for h in self._entries.values()),
                "tenants": {
                    tenant: {
                        "schemas": self._schema_count(tenant),
                        "versions": sum(
                            len(h) for (owner, _), h in self._entries.items()
                            if owner == tenant),
                        "source_bytes": self._total_bytes(tenant),
                        "inflight_revalidations":
                            self._inflight.get(tenant, 0),
                    }
                    for tenant in tenants
                },
            }

    # ------------------------------------------------------------------
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------
    def _history(self, tenant: str, name: str) -> list[SchemaVersion]:
        history = self._entries.get((tenant, name))
        if not history:
            raise RegistryNotFound(
                f"no schema named {name!r} for tenant {tenant!r}")
        return history

    def _schema_count(self, tenant: str) -> int:
        return sum(1 for owner, _ in self._entries if owner == tenant)

    def _total_bytes(self, tenant: str) -> int:
        return sum(len(v.source.encode("utf-8"))
                   for (owner, _), history in self._entries.items()
                   if owner == tenant for v in history)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: Union[str, tuple[str, str]]) -> bool:
        key = name if isinstance(name, tuple) else (
            self.config.default_tenant, name)
        with self._lock:
            return key in self._entries
