"""The registry layer: named, versioned, multi-tenant schema storage.

:class:`~repro.registry.registry.SchemaRegistry` maps ``(tenant, name)``
to a version history over a :class:`~repro.engine.session.SchemaSession`,
with per-tenant quotas, version pinning, ``name@version`` references, and
diff-aware revalidation of every put (see :mod:`repro.engine.delta`).
"""

from .registry import RegistryConfig, SchemaRegistry, SchemaVersion

__all__ = ["RegistryConfig", "SchemaRegistry", "SchemaVersion"]
