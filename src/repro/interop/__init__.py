"""Interoperability: exporting CAR schemas to neighbouring formalisms."""

from .dl_export import DlTBox, export_tbox

__all__ = ["DlTBox", "export_tbox"]
