"""Export CAR schemas as Description Logic TBoxes (ALCQI syntax).

CAR's class language is, at its core, the description logic **ALCQI**
restricted to finite models: boolean concept constructors, qualified number
restrictions, and inverse roles — the connection modern DL reasoners
(which cover similar expressivity over *unrestricted* models) exploit.
This module renders a CAR schema as a textual TBox:

* ``isa F``              →  ``C ⊑ τ(F)``
* ``A : (u, v) F``       →  ``C ⊑ ∀A.τ(F) ⊓ (≥ u A.⊤) ⊓ (≤ v A.⊤)``
* ``(inv A) : (u, v) F`` →  the same with the inverse role ``A⁻``
* n-ary relations        →  reified via Theorem 4.5 first (tuple concept +
  one role per position), when their role-clauses permit; participation
  constraints become number restrictions on the inverted role.

The translation is *syntax-faithful*; semantics diverge on one axis the
docstrings flag loudly: CAR is a finite-model logic, so a CAR-unsatisfiable
class may be satisfiable for a classical DL reasoner (e.g. the paper's
infinite-model escape hatches).  The export is for interchange and
inspection, not for delegating CAR reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cardinality import INFINITY
from ..core.errors import SchemaError
from ..core.formulas import Clause, Formula
from ..core.schema import AttributeSpec, ClassDef, Schema

__all__ = ["DlTBox", "export_tbox"]


@dataclass(frozen=True)
class DlTBox:
    """A rendered TBox: axiom strings plus translation warnings."""

    axioms: tuple[str, ...]
    warnings: tuple[str, ...]

    def __str__(self) -> str:
        lines = list(self.axioms)
        for warning in self.warnings:
            lines.append(f"%% {warning}")
        return "\n".join(lines)


def _concept_of_clause(clause: Clause) -> str:
    parts = [lit.name if lit.positive else f"¬{lit.name}"
             for lit in clause]
    if not parts:
        return "⊥"
    if len(parts) == 1:
        return parts[0]
    return "(" + " ⊔ ".join(parts) + ")"


def _concept_of_formula(formula: Formula) -> str:
    if not formula.clauses:
        return "⊤"
    parts = [_concept_of_clause(clause) for clause in formula]
    if len(parts) == 1:
        return parts[0]
    return " ⊓ ".join(parts)


def _role_of(spec: AttributeSpec) -> str:
    return f"{spec.ref.name}⁻" if spec.ref.inverse else spec.ref.name


def _restrictions(spec: AttributeSpec) -> list[str]:
    role = _role_of(spec)
    parts = []
    if spec.filler.clauses:
        parts.append(f"∀{role}.{_concept_of_formula(spec.filler)}")
    if spec.card.lower > 0:
        parts.append(f"(≥ {spec.card.lower} {role}.⊤)")
    if spec.card.upper is not INFINITY:
        parts.append(f"(≤ {spec.card.upper} {role}.⊤)")
    return parts


def _class_axioms(cdef: ClassDef) -> list[str]:
    right: list[str] = []
    if cdef.isa.clauses:
        right.append(_concept_of_formula(cdef.isa))
    for spec in cdef.attributes:
        right.extend(_restrictions(spec))
    if not right:
        return []
    return [f"{cdef.name} ⊑ {' ⊓ '.join(right)}"]


def export_tbox(schema: Schema) -> DlTBox:
    """Render the schema as an ALCQI TBox.

    Relations of arity ≥ 3 (and binary relations with disjunctive
    role-clauses) are reified via Theorem 4.5 when possible; failures are
    reported as warnings rather than errors so that the class-level part of
    any schema always exports.
    """
    from ..reasoner.transform import reify_nonbinary_relations

    warnings: list[str] = []
    working = schema
    try:
        result = reify_nonbinary_relations(schema)
        working = result.schema
        for info in result.reified:
            warnings.append(
                f"relation {info.relation} reified as concept "
                f"{info.tuple_class} with roles "
                f"{', '.join(sorted(info.role_relations.values()))}")
    except SchemaError as error:
        warnings.append(f"nonbinary relations kept as-is: {error}")

    axioms: list[str] = []
    for cdef in working.class_definitions:
        axioms.extend(_class_axioms(cdef))

    # Binary relations: role typing from single-literal clauses; every
    # participation constraint becomes a number restriction on the class.
    for rdef in working.relation_definitions:
        if rdef.arity != 2:
            warnings.append(
                f"relation {rdef.name} (arity {rdef.arity}) has no direct "
                "DL counterpart and could not be reified")
            continue
        first, second = rdef.roles
        for clause in rdef.constraints:
            if len(clause) == 1:
                lit = clause.literals[0]
                concept = _concept_of_formula(lit.formula)
                if lit.role == first:
                    axioms.append(f"∃{rdef.name}.⊤ ⊑ {concept}")
                else:
                    axioms.append(f"∃{rdef.name}⁻.⊤ ⊑ {concept}")
            else:
                warnings.append(
                    f"disjunctive role-clause of {rdef.name} "
                    f"({clause}) is not expressible as a role-typing axiom")

    for cdef in working.class_definitions:
        for spec in cdef.participates:
            rdef = working.relation(spec.relation)
            if rdef.arity != 2:
                continue
            role = (spec.relation if spec.role == rdef.roles[0]
                    else f"{spec.relation}⁻")
            parts = []
            if spec.card.lower > 0:
                parts.append(f"(≥ {spec.card.lower} {role}.⊤)")
            if spec.card.upper is not INFINITY:
                parts.append(f"(≤ {spec.card.upper} {role}.⊤)")
            if parts:
                axioms.append(f"{cdef.name} ⊑ {' ⊓ '.join(parts)}")

    warnings.append(
        "CAR semantics are finite-model: a classical DL reasoner may accept "
        "concepts this schema makes unsatisfiable")
    return DlTBox(tuple(axioms), tuple(warnings))
