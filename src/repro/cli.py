"""Command-line interface: ``python -m repro <command> <schema file>``.

The paper's applications of schema reasoning — validation, inheritance
computation, type checking — exposed as a small tool over the concrete
syntax:

* ``validate``   — class satisfiability for every defined class, with
  explanations for unsatisfiable ones;
* ``classify``   — the implied subsumption hierarchy;
* ``satisfiable``— one class, with an explanation on failure;
* ``synthesize`` — generate a sample database state and print it;
* ``render``     — parse and pretty-print (format / canonicalize);
* ``stats``      — pipeline size measurements.

Every command reads the schema from a file (or ``-`` for stdin) and returns
a nonzero exit status on validation failures, so the tool slots into CI.
All reasoning commands go through the engine layer's
:class:`~repro.engine.session.SchemaSession`; ``--strategy`` and
``--backend`` configure its :class:`~repro.engine.config.EngineConfig`, and
``validate``/``satisfiable``/``stats`` accept ``--json`` for
machine-readable output in CI pipelines.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.errors import CarError
from .core.schema import Schema
from .engine.config import EngineConfig
from .engine.session import SchemaSession
from .parser.parser import parse_schema
from .parser.printer import render_schema
from .reasoner.explain import explain_unsatisfiability
from .reasoner.implication import classify
from .reasoner.satisfiability import Reasoner

__all__ = ["main", "build_parser"]


def _read_schema(path: str) -> Schema:
    if path == "-":
        source = sys.stdin.read()
    else:
        source = Path(path).read_text(encoding="utf-8")
    return parse_schema(source)


def _make_session(args: argparse.Namespace) -> SchemaSession:
    """One engine session configured from the shared CLI flags."""
    return SchemaSession(EngineConfig(
        strategy=args.strategy,
        lp_backend=getattr(args, "backend", "auto")))


def _session_reasoner(args: argparse.Namespace) -> Reasoner:
    """The shared handler prologue: read the schema, enter the session."""
    return _make_session(args).reasoner(_read_schema(args.schema))


def _emit_json(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_validate(args: argparse.Namespace) -> int:
    reasoner = _session_reasoner(args)
    report = reasoner.check_coherence()
    status = 0 if report.is_coherent else 1
    if args.json:
        _emit_json({
            "command": "validate",
            "coherent": report.is_coherent,
            "satisfiable": list(report.satisfiable),
            "unsatisfiable": list(report.unsatisfiable),
        })
        return status
    if report.is_coherent:
        print(report)
        return 0
    print("INCOHERENT")
    for name in report.unsatisfiable:
        print()
        print(explain_unsatisfiability(reasoner, name))
    return 1


def _cmd_classify(args: argparse.Namespace) -> int:
    print(classify(_session_reasoner(args)))
    return 0


def _cmd_satisfiable(args: argparse.Namespace) -> int:
    reasoner = _session_reasoner(args)
    verdict = reasoner.is_satisfiable(args.class_name)
    if args.json:
        _emit_json({
            "command": "satisfiable",
            "class": args.class_name,
            "satisfiable": verdict,
            "explanation": None if verdict else str(
                explain_unsatisfiability(reasoner, args.class_name)),
        })
        return 0 if verdict else 1
    if verdict:
        print(f"{args.class_name}: satisfiable")
        return 0
    print(explain_unsatisfiability(reasoner, args.class_name))
    return 1


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .synthesis.builder import synthesize_model

    reasoner = _session_reasoner(args)
    report = synthesize_model(reasoner, target=args.target, scale=args.scale)
    print(f"verified model (scale {report.scale}, "
          f"{report.n_objects} objects):")
    print(report.interpretation.summary())
    if args.full:
        interp = report.interpretation
        for name in sorted(interp.mentioned_classes()):
            ext = sorted(map(str, interp.class_ext(name)))
            if ext:
                print(f"{name} = {{{', '.join(ext)}}}")
        for name in sorted(interp.mentioned_attributes()):
            for a, b in sorted(map(lambda p: (str(p[0]), str(p[1])),
                                   interp.attribute_ext(name))):
                print(f"{name}({a}, {b})")
        for name in sorted(interp.mentioned_relations()):
            for tup in sorted(interp.relation_ext(name), key=str):
                print(f"{name}{tup}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    print(render_schema(_read_schema(args.schema)), end="")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    reasoner = _session_reasoner(args)
    stats = reasoner.stats()
    backend = reasoner.support.backend_used
    if args.json:
        _emit_json({"command": "stats", "lp_backend": backend, **stats})
        return 0
    for key, value in stats.items():
        print(f"{key}: {value}")
    print(f"lp_backend: {backend}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reason about CAR schemas (Calvanese & Lenzerini, "
                    "PODS 1994)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler, help_text: str, *,
            json_output: bool = False) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("schema", help="schema file in CAR concrete syntax "
                                        "('-' for stdin)")
        sub.add_argument("--strategy", default="auto",
                         choices=("auto", "naive", "strategic", "hierarchy"),
                         help="compound-class enumeration strategy")
        sub.add_argument("--backend", default="auto",
                         choices=("auto", "exact", "float-fallback"),
                         help="LP backend for the support computation")
        if json_output:
            sub.add_argument("--json", action="store_true",
                             help="print a machine-readable JSON document")
        sub.set_defaults(handler=handler)
        return sub

    add("validate", _cmd_validate,
        "check that every defined class is satisfiable", json_output=True)
    add("classify", _cmd_classify, "compute the implied subsumptions")
    sat = add("satisfiable", _cmd_satisfiable,
              "decide satisfiability of one class", json_output=True)
    sat.add_argument("class_name", help="the class symbol to test")
    synth = add("synthesize", _cmd_synthesize,
                "generate a verified sample database state")
    synth.add_argument("--target", default=None,
                       help="class that must be populated")
    synth.add_argument("--scale", type=int, default=1,
                       help="multiply the base witness")
    synth.add_argument("--full", action="store_true",
                       help="print the entire database state")
    add("render", _cmd_render, "parse and pretty-print the schema")
    add("stats", _cmd_stats, "print pipeline size measurements",
        json_output=True)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except CarError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
