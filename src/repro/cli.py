"""Command-line interface: ``python -m repro <command> <schema file>``.

The paper's applications of schema reasoning — validation, inheritance
computation, type checking — exposed as a small tool over the concrete
syntax:

* ``validate``   — class satisfiability for every defined class, with
  explanations for unsatisfiable ones;
* ``classify``   — the implied subsumption hierarchy;
* ``satisfiable``— one class, with an explanation on failure;
* ``query``      — certain answers of a conjunctive query, optionally
  over a JSON database document (``--database``);
* ``synthesize`` — generate a sample database state and print it;
* ``render``     — parse and pretty-print (format / canonicalize);
* ``stats``      — pipeline size measurements;
* ``batch``      — answer a JSONL file of ``{"schema": ..., "formula":
  ...}`` queries through the parallel batch executor, one JSON outcome
  per line;
* ``compile``    — prebuild precompiled pipeline artifacts
  (:class:`~repro.engine.artifact.CompiledSchema`) for a JSONL schema
  list, so later runs and pool workers start warm;
* ``serve``      — run the long-lived HTTP query service
  (:mod:`repro.service`): JSON endpoints with admission control, a
  result cache, per-request budgets, and health/metrics introspection;
* ``backends``   — list the registered LP backends with their capability
  contracts (``--json`` for machine-readable auditing of the solver in
  use);
* ``registry``   — manage named, versioned schemas on a running service
  (``put``/``get``/``list``/``check``/``delete``): a thin HTTP client
  for the ``/v1/schemas`` endpoints, so edits revalidate incrementally
  server-side (see :mod:`repro.registry`).

Every command reads the schema from a file (or ``-`` for stdin) and returns
a nonzero exit status on validation failures, so the tool slots into CI.
All reasoning commands go through the engine layer's
:class:`~repro.engine.session.SchemaSession`; ``--strategy`` and
``--backend`` configure its :class:`~repro.engine.config.EngineConfig`.

Uniform flags on **every** subcommand:

* ``--json`` — a machine-readable JSON document on stdout instead of text;
* ``--profile`` — enable the observability bus and print a per-stage
  timing/counter summary to stderr after the command;
* ``--trace-out FILE`` — enable the bus and write the versioned JSON-lines
  trace (see :mod:`repro.obs.tracer`) to ``FILE``;
* ``--timeout SECONDS`` / ``--max-steps N`` — a cooperative
  :class:`~repro.core.budget.Budget` over the reasoning hot loops.  For
  ``batch`` the budget is per *query* (a slow query yields a timed-out
  outcome, the batch continues); for every other command it covers the
  whole command and trips exit code 75;
* ``--artifact-dir DIR`` / ``--no-artifact-cache`` — where precompiled
  pipeline snapshots are cached on disk (default ``~/.cache/repro``,
  overridable via ``$REPRO_ARTIFACT_DIR``), or switch the disk cache off.
  With the cache on — the CLI default — a repeated invocation against the
  same schema skips Phase 1 entirely by rehydrating the snapshot.

Exit codes are stable: 0 success, 1 negative verdict (unsatisfiable /
incoherent), 2 usage errors, and the ``sysexits``-inspired codes of the
:mod:`repro.core.errors` hierarchy on failures (65 malformed input, 66
unreadable file, 64 unanswerable question, 73 synthesis failure, 75
budget exceeded, 70 internal errors).

All human-readable output flows through one writer (:func:`_write`); a
lint rule bans stray ``print`` calls in the library so nothing else can
write to stdout behind the CLI's back.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.budget import Budget, use_budget
from .core.errors import CarError, LinearSystemError
from .core.schema import Schema
from .engine.config import EngineConfig
from .engine.session import SchemaSession
from .parser.parser import parse_schema
from .parser.printer import render_schema
from .reasoner.explain import explain_unsatisfiability
from .reasoner.implication import classify
from .reasoner.satisfiability import Reasoner

__all__ = ["main", "build_parser"]

#: Exit code for files the CLI cannot read (sysexits ``EX_NOINPUT``).
EXIT_NOINPUT = 66


def _write(text: str = "", *, end: str = "\n") -> None:
    """The CLI's one stdout writer — all command output flows through here
    (the lint configuration bans ``print`` elsewhere in the library)."""
    sys.stdout.write(f"{text}{end}")


def _write_err(text: str = "") -> None:
    """The CLI's one stderr writer (diagnostics, profile summaries)."""
    sys.stderr.write(f"{text}\n")


def _emit_json(payload: dict) -> None:
    _write(json.dumps(payload, indent=2, sort_keys=True))


def _read_schema(path: str) -> Schema:
    if path == "-":
        source = sys.stdin.read()
    else:
        source = Path(path).read_text(encoding="utf-8")
    return parse_schema(source)


def _artifact_dir(args: argparse.Namespace) -> Optional[str]:
    """The artifact-cache directory the flags ask for (None = disabled).

    Unlike the library default (off), the CLI caches by default: cold
    process starts are exactly where rehydrating a precompiled snapshot
    beats rebuilding Phase 1.
    """
    from .engine.artifact import default_artifact_dir

    if getattr(args, "no_artifact_cache", False):
        return None
    return getattr(args, "artifact_dir", None) or default_artifact_dir()


def _make_session(args: argparse.Namespace) -> SchemaSession:
    """One engine session configured from the shared CLI flags.

    ``--profile`` / ``--trace-out`` switch the observability bus on; the
    session owns the tracer, and :func:`main` exports/summarizes it after
    the handler returns.
    """
    trace = bool(getattr(args, "profile", False)
                 or getattr(args, "trace_out", None))
    return SchemaSession(EngineConfig(
        strategy=args.strategy,
        lp_backend=getattr(args, "backend", "auto"),
        trace=trace,
        artifact_dir=_artifact_dir(args)))


def _session_reasoner(args: argparse.Namespace) -> Reasoner:
    """The shared handler prologue: read the schema, enter the session."""
    return args.session.reasoner(_read_schema(args.schema))


def _cmd_validate(args: argparse.Namespace) -> int:
    reasoner = _session_reasoner(args)
    report = reasoner.check_coherence()
    status = 0 if report.is_coherent else 1
    if args.json:
        _emit_json({
            "command": "validate",
            "coherent": report.is_coherent,
            "satisfiable": list(report.satisfiable),
            "unsatisfiable": list(report.unsatisfiable),
        })
        return status
    if report.is_coherent:
        _write(str(report))
        return 0
    _write("INCOHERENT")
    for name in report.unsatisfiable:
        _write()
        _write(str(explain_unsatisfiability(reasoner, name)))
    return 1


def _cmd_classify(args: argparse.Namespace) -> int:
    classification = classify(_session_reasoner(args))
    if args.json:
        _emit_json({
            "command": "classify",
            "subsumptions": sorted(map(list, classification.subsumptions)),
            "equivalence_groups": [sorted(group) for group
                                   in classification.equivalence_groups],
            "unsatisfiable": list(classification.unsatisfiable),
        })
        return 0
    _write(str(classification))
    return 0


def _cmd_satisfiable(args: argparse.Namespace) -> int:
    reasoner = _session_reasoner(args)
    verdict = reasoner.is_satisfiable(args.class_name)
    if args.json:
        _emit_json({
            "command": "satisfiable",
            "class": args.class_name,
            "satisfiable": verdict,
            "explanation": None if verdict else str(
                explain_unsatisfiability(reasoner, args.class_name)),
        })
        return 0 if verdict else 1
    if verdict:
        _write(f"{args.class_name}: satisfiable")
        return 0
    _write(str(explain_unsatisfiability(reasoner, args.class_name)))
    return 1


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from .synthesis.builder import synthesize_model

    reasoner = _session_reasoner(args)
    report = synthesize_model(reasoner, target=args.target, scale=args.scale)
    interp = report.interpretation
    if args.json:
        payload: dict = {
            "command": "synthesize",
            "scale": report.scale,
            "n_objects": report.n_objects,
            "target": args.target,
        }
        if args.full:
            payload["classes"] = {
                name: sorted(map(str, interp.class_ext(name)))
                for name in sorted(interp.mentioned_classes())}
            payload["attributes"] = {
                name: sorted([str(a), str(b)]
                             for a, b in interp.attribute_ext(name))
                for name in sorted(interp.mentioned_attributes())}
            payload["relations"] = {
                name: sorted(map(str, interp.relation_ext(name)))
                for name in sorted(interp.mentioned_relations())}
        _emit_json(payload)
        return 0
    _write(f"verified model (scale {report.scale}, "
           f"{report.n_objects} objects):")
    _write(interp.summary())
    if args.full:
        for name in sorted(interp.mentioned_classes()):
            ext = sorted(map(str, interp.class_ext(name)))
            if ext:
                _write(f"{name} = {{{', '.join(ext)}}}")
        for name in sorted(interp.mentioned_attributes()):
            for a, b in sorted(map(lambda p: (str(p[0]), str(p[1])),
                                   interp.attribute_ext(name))):
                _write(f"{name}({a}, {b})")
        for name in sorted(interp.mentioned_relations()):
            for tup in sorted(interp.relation_ext(name), key=str):
                _write(f"{name}{tup}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """``repro query schema.car 'q(x) :- Person(x)'`` — certain answers.

    The query runs through :meth:`SchemaSession.query
    <repro.engine.session.SchemaSession.query>`: PerfectRef-style
    rewriting against the schema's implication closure, then plain
    evaluation over the optional ``--database`` document.  Exit status:
    boolean queries report their verdict (0 entailed, 1 not); open
    queries exit 0 with the answer rows (possibly none).  A tripped
    ``--timeout``/``--max-steps`` budget exits 75 like every command.
    """
    schema = _read_schema(args.schema)
    query_text = sys.stdin.read() if args.cq == "-" else args.cq
    database = None
    if args.database is not None:
        raw = (sys.stdin.read() if args.database == "-"
               else Path(args.database).read_text(encoding="utf-8"))
        try:
            database = json.loads(raw)
        except ValueError as exc:
            return _fail(args, f"database file is not valid JSON: {exc}", 65)
    answer = args.session.query(schema, query_text, database)
    if args.json:
        _emit_json({"command": "query", **answer.as_document()})
        return 0 if (answer.boolean or not answer.is_boolean) else 1
    rewrite = (f"{answer.disjuncts} disjunct(s), "
               f"{answer.rewrite_steps} rewrite step(s), "
               f"cache {'hit' if answer.rewrite_cached else 'miss'}")
    if answer.inconsistent:
        _write(f"database is inconsistent with the schema — every tuple "
               f"is a certain answer ({rewrite})")
        return 0
    if answer.is_boolean:
        _write(f"{'entailed' if answer.boolean else 'not entailed'} "
               f"({rewrite})")
        return 0 if answer.boolean else 1
    _write(f"{len(answer.answers)} certain answer(s) over "
           f"({', '.join(answer.variables)}) ({rewrite})")
    for row in answer.answers:
        _write("  " + ", ".join(str(value) for value in row))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    rendered = render_schema(_read_schema(args.schema))
    if args.json:
        _emit_json({"command": "render", "schema": rendered})
        return 0
    _write(rendered, end="")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = _session_reasoner(args).stats()
    if args.json:
        _emit_json({"command": "stats", **stats.to_json()})
        return 0
    for key, value in stats.to_json().items():
        _write(f"{key}: {value}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Answer a JSONL query file through the parallel batch executor.

    Each non-blank input line is ``{"schema": <source text>, "formula":
    <formula text>}``.  Default output is one JSON outcome object per
    line (mirroring the input shape); ``--json`` emits a single document
    with an aggregate summary instead.  Exit status: 0 when every query
    produced a verdict, otherwise the first failed query's error code
    (75 for a tripped budget).
    """
    import dataclasses

    from .engine.executor import QueryError, QueryOutcome

    if args.queries == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.queries).read_text(encoding="utf-8")

    items: list[tuple[int, object]] = []
    premade: dict[int, QueryOutcome] = {}
    position = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            items.append((position, json.loads(line)))
        except ValueError as exc:
            premade[position] = QueryOutcome(
                position, None,
                QueryError("ParseError",
                           f"line {lineno}: invalid JSON: {exc}", 65))
        position += 1

    outcomes = args.session.run_batch(
        [query for _, query in items],
        jobs=(args.jobs if args.jobs > 0 else None), mode=args.mode,
        deadline=args.timeout, max_steps=args.max_steps)
    merged = dict(premade)
    for (slot, _), outcome in zip(items, outcomes):
        merged[slot] = dataclasses.replace(outcome, index=slot)
    results = [merged[slot] for slot in range(position)]

    summary = {
        "total": len(results),
        "ok": sum(1 for o in results if o.ok),
        "timed_out": sum(1 for o in results if o.timed_out),
        "failed": sum(1 for o in results if not o.ok and not o.timed_out),
    }
    if args.json:
        _emit_json({"command": "batch", "summary": summary,
                    "outcomes": [o.to_json() for o in results]})
    else:
        for outcome in results:
            _write(json.dumps(outcome.to_json(), sort_keys=True))
    for outcome in results:
        if not outcome.ok:
            return outcome.error.exit_code
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    """Prebuild precompiled pipeline snapshots for a JSONL schema list.

    Each non-blank input line is either ``{"schema": <source text>}`` or
    ``{"path": <schema file>}`` (a bare JSON string is taken as source
    text).  For every schema the artifact cache is consulted first; a
    miss (or ``--force``) compiles Phase 1/2 and persists the snapshot.
    Default output is one JSON line per schema — fingerprint, status
    (``built``/``cached``/``failed``), seconds; ``--json`` emits a single
    summary document.  Exit status: 0 when every schema compiled, else
    the first failure's error code.
    """
    import time as time_module

    from .engine.artifact import config_fingerprint
    from .engine.pipeline import Pipeline
    from .engine.session import schema_fingerprint

    session = args.session
    cache = session.artifact_cache
    if cache is None:
        _write_err("error: repro compile needs an artifact cache; drop "
                   "--no-artifact-cache or pass --artifact-dir")
        return 2

    if args.schemas == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.schemas).read_text(encoding="utf-8")

    results: list[dict] = []
    exit_code = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        record = {"line": lineno, "status": "failed", "fingerprint": None,
                  "seconds": 0.0, "error": None}
        started = time_module.perf_counter()
        try:
            entry = json.loads(line)
            if isinstance(entry, str):
                source = entry
            elif isinstance(entry, dict) and "schema" in entry:
                source = entry["schema"]
            elif isinstance(entry, dict) and "path" in entry:
                source = Path(entry["path"]).read_text(encoding="utf-8")
            else:
                raise ValueError(
                    'expected {"schema": ...}, {"path": ...}, or a string')
            schema = parse_schema(source)
            fingerprint = schema_fingerprint(schema)
            record["fingerprint"] = fingerprint
            if not args.force and cache.load(fingerprint,
                                             session.config) is not None:
                record["status"] = "cached"
            else:
                pipeline = Pipeline(schema, session.config,
                                    tracer=session.last_trace())
                cache.store(pipeline.compile())
                record["status"] = "built"
        except (CarError, OSError, ValueError) as exc:
            record["error"] = str(exc)
            if exit_code == 0:
                exit_code = getattr(exc, "exit_code", 65)
        record["seconds"] = time_module.perf_counter() - started
        results.append(record)

    summary = {
        "total": len(results),
        "built": sum(1 for r in results if r["status"] == "built"),
        "cached": sum(1 for r in results if r["status"] == "cached"),
        "failed": sum(1 for r in results if r["status"] == "failed"),
        "artifact_dir": str(cache.directory),
        "config_fingerprint": config_fingerprint(session.config),
    }
    if args.json:
        _emit_json({"command": "compile", "summary": summary,
                    "results": results})
    else:
        for record in results:
            _write(json.dumps(record, sort_keys=True))
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP query service until SIGTERM/SIGINT, then drain.

    The service owns its session (tracing always on: ``/metrics`` is the
    tracer's counters); it replaces the prologue session so ``--profile``
    and ``--trace-out`` export the service's bus after shutdown.  Exit
    status: 0 after a clean drain, 75 when the drain grace expired with
    requests still in flight.
    """
    import signal
    import threading

    from .service.app import ReproService, ServiceConfig

    try:
        config = ServiceConfig(
            host=args.host, port=args.port,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            queue_timeout_s=args.queue_timeout,
            workers=args.workers,
            pipeline_depth=args.pipeline_depth,
            idle_timeout_s=args.idle_timeout,
            max_header_bytes=args.max_header_bytes,
            max_body_bytes=args.max_body_bytes,
            cache_limit=args.cache_size,
            max_timeout_ms=args.max_timeout_ms,
            default_timeout_ms=args.default_timeout_ms,
            drain_grace_s=args.drain_grace)
    except ValueError as exc:
        _write_err(f"error: {exc}")
        return 2
    service = ReproService(config, EngineConfig(
        strategy=args.strategy, lp_backend=args.backend,
        artifact_dir=_artifact_dir(args)))
    args.session.close()
    args.session = service.session
    for path in args.warm:
        service.session.warm([_read_schema(path)])
    host, port = service.start()
    _write(f"repro service listening on http://{host}:{port}")
    sys.stdout.flush()

    stop = threading.Event()
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(
            signum, lambda *_forwarded: stop.set())
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    _write_err("draining in-flight requests ...")
    drained = service.drain()
    _write_err("shutdown complete" if drained
               else "drain grace expired with requests still in flight")
    return 0 if drained else 75


def _registry_request(args: argparse.Namespace, method: str, path: str,
                      body: Optional[dict] = None) -> tuple[int, dict]:
    """One HTTP round trip to a running ``repro serve`` registry.

    Returns ``(status, payload)``; error statuses come back as values
    (their payloads carry the service's typed error), only transport
    failures raise — mapped by the caller onto exit 69 (unavailable).
    """
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + path
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    if args.tenant:
        request.add_header("X-Repro-Tenant", args.tenant)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(
                response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = {"ok": False,
                       "error": {"code": "http_error", "sysexit": 70,
                                 "message": raw}}
        return exc.code, payload


def _cmd_registry(args: argparse.Namespace) -> int:
    """``repro registry put|get|list|check|delete`` — the HTTP client.

    Talks to a running ``repro serve`` at ``--url``; the registry lives
    in the service (names, versions, quotas are per-service state), so
    the CLI is deliberately a thin wire client rather than a second
    in-process registry with diverging contents.
    """
    import urllib.error

    action = args.registry_action
    try:
        if action == "put":
            if args.file == "-":
                source = sys.stdin.read()
            else:
                source = Path(args.file).read_text(encoding="utf-8")
            status, payload = _registry_request(
                args, "PUT", f"/v1/schemas/{args.name}",
                {"schema": source})
        elif action == "get":
            target = f"/v1/schemas/{args.name}"
            if args.version is not None:
                target += f"?version={args.version}"
            status, payload = _registry_request(args, "GET", target)
        elif action == "list":
            status, payload = _registry_request(args, "GET", "/v1/schemas")
        elif action == "check":
            body = {"schema_ref": args.ref}
            body["class" if args.class_name else "formula"] = (
                args.class_name or args.formula)
            status, payload = _registry_request(
                args, "POST", "/v1/satisfiable", body)
        else:  # delete
            body = ({"version": args.version}
                    if args.version is not None else {})
            status, payload = _registry_request(
                args, "DELETE", f"/v1/schemas/{args.name}", body)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return _fail(args, f"cannot reach {args.url}: {exc}", 69)

    if status >= 400 or not payload.get("ok", False):
        error = payload.get("error", {})
        message = error.get("message", f"HTTP {status}")
        return _fail(args, message, int(error.get("sysexit", 70)))
    data = payload.get("data", {})
    if args.json:
        _emit_json({"command": "registry", "action": action} | payload)
        return 0 if data.get("verdict", True) else 1
    if action == "put":
        schema, revalidation = data["schema"], data["revalidation"]
        clusters = revalidation.get("clusters", {})
        _write(f"{schema['ref']}  fingerprint={schema['fingerprint'][:12]}  "
               f"mode={revalidation['mode']}  "
               f"clusters reused={clusters.get('reused', 0)}"
               f"/{clusters.get('total', 0)}")
    elif action == "get":
        _write(json.dumps(data["schema"], indent=2, sort_keys=True))
    elif action == "list":
        for row in data["schemas"]:
            _write(f"{row['name']}  latest=v{row['version']}  "
                   f"versions={row['versions']}  "
                   f"pinned={row['pinned_versions']}")
    elif action == "check":
        verdict = data["verdict"]
        _write(f"{args.ref}: "
               f"{'satisfiable' if verdict else 'unsatisfiable'}")
        return 0 if verdict else 1
    else:
        _write(f"deleted {data['removed_versions']} version(s) of "
               f"{args.name}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """List the registered LP backends with their capability contracts."""
    from .linear.backends import available_backends, get_backend

    default = get_backend("auto")
    entries = available_backends()
    if args.json:
        _emit_json({
            "command": "backends",
            "default": default.name,
            "backends": [entry.as_dict() for entry in entries],
        })
        return 0
    for entry in entries:
        marker = "  (default)" if entry.name == default.name else ""
        _write(f"{entry.name}{marker}")
        _write(f"  {entry.summary}")
        capabilities = entry.capabilities
        _write(f"  arithmetic={capabilities.arithmetic} "
               f"sparse={capabilities.sparse} "
               f"closed_form={capabilities.closed_form} "
               f"degeneracy={capabilities.degeneracy}")
        if entry.parameters:
            _write("  parameters: "
                   + ", ".join(f"{entry.name}:{p}=..." for p in entry.parameters))
        if entry.aliases:
            notes = [alias + (" (deprecated)"
                              if alias in entry.deprecated_aliases else "")
                     for alias in entry.aliases]
            _write("  aliases: " + ", ".join(notes))
        _write()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reason about CAR schemas (Calvanese & Lenzerini, "
                    "PODS 1994)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler, help_text: str, *,
            positional: str = "schema",
            positional_help: str = "schema file in CAR concrete syntax "
                                   "('-' for stdin)"
            ) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(positional, help=positional_help)
        sub.add_argument("--strategy", default="auto",
                         choices=("auto", "naive", "strategic", "hierarchy"),
                         help="compound-class enumeration strategy")
        sub.add_argument("--backend", default="auto", metavar="SPEC",
                         help="LP backend for the support computation: a "
                              "registered name or parameterized spec "
                              "(e.g. auto, exact, exact-sparse, "
                              "float-fallback, auto:limit=500); see "
                              "'repro backends'")
        sub.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON document")
        sub.add_argument("--profile", action="store_true",
                         help="record pipeline spans/counters and print a "
                              "summary to stderr")
        sub.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write the versioned JSON-lines trace to FILE")
        sub.add_argument("--timeout", type=float, metavar="SECONDS",
                         default=None,
                         help="wall-clock budget (per query for 'batch', "
                              "whole-command otherwise); exceeding it "
                              "exits 75")
        sub.add_argument("--max-steps", type=int, metavar="N", default=None,
                         help="hot-loop step budget (same scope as "
                              "--timeout)")
        sub.add_argument("--artifact-dir", metavar="DIR", default=None,
                         help="directory for precompiled pipeline "
                              "snapshots (default: $REPRO_ARTIFACT_DIR "
                              "or ~/.cache/repro)")
        sub.add_argument("--no-artifact-cache", action="store_true",
                         help="do not read or write precompiled pipeline "
                              "snapshots")
        sub.set_defaults(handler=handler, per_query_budget=False)
        return sub

    add("validate", _cmd_validate,
        "check that every defined class is satisfiable")
    add("classify", _cmd_classify, "compute the implied subsumptions")
    sat = add("satisfiable", _cmd_satisfiable,
              "decide satisfiability of one class")
    sat.add_argument("class_name", help="the class symbol to test")
    synth = add("synthesize", _cmd_synthesize,
                "generate a verified sample database state")
    synth.add_argument("--target", default=None,
                       help="class that must be populated")
    synth.add_argument("--scale", type=int, default=1,
                       help="multiply the base witness")
    synth.add_argument("--full", action="store_true",
                       help="print the entire database state")
    query_cmd = add("query", _cmd_query,
                    "compute the certain answers of a conjunctive query")
    query_cmd.add_argument("cq", help="conjunctive query, e.g. "
                                      "'q(x) :- Person(x), works_for(x, y)' "
                                      "('-' for stdin)")
    query_cmd.add_argument("--database", metavar="FILE", default=None,
                           help="JSON database document to evaluate over "
                                "('-' for stdin): {\"objects\": {...}, "
                                "\"attributes\": [...], \"relations\": "
                                "[...]}")
    add("render", _cmd_render, "parse and pretty-print the schema")
    add("stats", _cmd_stats, "print pipeline size measurements")
    batch = add("batch", _cmd_batch,
                "answer a JSONL file of schema/formula queries in parallel",
                positional="queries",
                positional_help="JSONL query file, one "
                                '{"schema": ..., "formula": ...} object '
                                "per line ('-' for stdin)")
    batch.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker count (0 = one per CPU; 1 = serial)")
    batch.add_argument("--mode", default="auto",
                       choices=("auto", "process", "thread", "serial"),
                       help="worker pool flavor (auto: processes when "
                            "--jobs > 1)")
    batch.set_defaults(per_query_budget=True)
    compile_cmd = add(
        "compile", _cmd_compile,
        "prebuild precompiled pipeline artifacts for a JSONL schema list",
        positional="schemas",
        positional_help="JSONL schema list, one "
                        '{"schema": ...} or {"path": ...} object '
                        "per line ('-' for stdin)")
    compile_cmd.add_argument("--force", action="store_true",
                             help="recompile even when a valid snapshot "
                                  "is already cached")

    serve = subparsers.add_parser(
        "serve", help="run the HTTP query service (see repro.service)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="bind port (0 = ephemeral; the bound port is "
                            "printed on startup)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="concurrent executions before queueing")
    serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                       help="waiting requests before 429")
    serve.add_argument("--queue-timeout", type=float, default=0.5,
                       metavar="SECONDS",
                       help="longest a request may wait for a slot")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="worker-pool threads behind the asyncio front "
                            "end (0 = auto: max-inflight + 2)")
    serve.add_argument("--pipeline-depth", type=int, default=16,
                       metavar="N",
                       help="max requests one connection may have "
                            "parsed-but-unanswered (HTTP pipelining)")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="close connections idle (or trickling) "
                            "longer than this")
    serve.add_argument("--max-header-bytes", type=int, default=32_768,
                       metavar="N",
                       help="reject request lines/header blocks larger "
                            "than this with 431")
    serve.add_argument("--max-body-bytes", type=int, default=1_000_000,
                       metavar="N", help="request bodies above this get 413")
    serve.add_argument("--cache-size", type=int, default=1024, metavar="N",
                       help="result-cache entry bound")
    serve.add_argument("--max-timeout-ms", type=int, default=30_000,
                       metavar="MS",
                       help="cap on the X-Repro-Timeout-Ms request header")
    serve.add_argument("--default-timeout-ms", type=int, default=None,
                       metavar="MS",
                       help="per-request deadline when the client sends "
                            "none (default: unbounded)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="how long SIGTERM waits for in-flight requests")
    serve.add_argument("--warm", action="append", default=[],
                       metavar="FILE",
                       help="schema file to pre-build pipelines for "
                            "(repeatable)")
    serve.add_argument("--strategy", default="auto",
                       choices=("auto", "naive", "strategic", "hierarchy"),
                       help="compound-class enumeration strategy")
    serve.add_argument("--backend", default="auto", metavar="SPEC",
                       help="LP backend for the support computation: a "
                            "registered name or parameterized spec (see "
                            "'repro backends')")
    serve.add_argument("--json", action="store_true",
                       help=argparse.SUPPRESS)
    serve.add_argument("--profile", action="store_true",
                       help="print the service's span/counter summary to "
                            "stderr after shutdown")
    serve.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the service's JSON-lines trace to FILE "
                            "on shutdown")
    serve.add_argument("--artifact-dir", metavar="DIR", default=None,
                       help="directory for precompiled pipeline snapshots "
                            "(default: $REPRO_ARTIFACT_DIR or "
                            "~/.cache/repro); --warm schemas load from it "
                            "on boot")
    serve.add_argument("--no-artifact-cache", action="store_true",
                       help="do not read or write precompiled pipeline "
                            "snapshots")
    serve.set_defaults(handler=_cmd_serve, per_query_budget=True)

    backends_cmd = subparsers.add_parser(
        "backends",
        help="list the registered LP backends and their capabilities")
    backends_cmd.add_argument("--json", action="store_true",
                              help="print a machine-readable JSON document")
    backends_cmd.set_defaults(handler=_cmd_backends, per_query_budget=False,
                              strategy="auto", backend="auto",
                              no_artifact_cache=True)

    registry = subparsers.add_parser(
        "registry",
        help="manage named schema versions on a running repro service")
    registry_actions = registry.add_subparsers(dest="registry_action",
                                               required=True)

    def add_registry(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = registry_actions.add_parser(name, help=help_text)
        sub.add_argument("--url", default="http://127.0.0.1:8750",
                         help="base URL of the repro service "
                              "(default http://127.0.0.1:8750)")
        sub.add_argument("--tenant", default=None,
                         help="tenant namespace (X-Repro-Tenant header)")
        sub.add_argument("--json", action="store_true",
                         help="print the raw JSON response")
        sub.set_defaults(handler=_cmd_registry, per_query_budget=False,
                         strategy="auto", backend="auto",
                         no_artifact_cache=True)
        return sub

    reg_put = add_registry(
        "put", "store (or revise) a named schema and revalidate it")
    reg_put.add_argument("name", help="schema name")
    reg_put.add_argument("file", help="schema file in CAR concrete syntax "
                                      "('-' for stdin)")
    reg_get = add_registry("get", "show a stored schema version")
    reg_get.add_argument("name", help="schema name")
    reg_get.add_argument("--version", type=int, default=None, metavar="N",
                         help="version number (default: latest)")
    add_registry("list", "list the tenant's schemas")
    reg_check = add_registry(
        "check", "decide satisfiability against a stored schema")
    reg_check.add_argument("ref", help="schema reference: name, "
                                       "name@VERSION, or name@latest")
    check_target = reg_check.add_mutually_exclusive_group(required=True)
    check_target.add_argument("--formula", default=None,
                              help="formula to test")
    check_target.add_argument("--class-name", default=None,
                              help="class symbol to test")
    reg_delete = add_registry(
        "delete", "remove a schema (or one version of it)")
    reg_delete.add_argument("name", help="schema name")
    reg_delete.add_argument("--version", type=int, default=None,
                            metavar="N",
                            help="delete only this version")
    return parser


def _profile_summary(tracer) -> list[str]:
    """Human-readable per-stage breakdown of a trace (for ``--profile``)."""
    lines = ["-- profile --"]
    by_name: dict[str, tuple[int, float]] = {}
    for record in tracer.spans:
        count, total = by_name.get(record.name, (0, 0.0))
        by_name[record.name] = (count + 1, total + record.duration)
    for name in sorted(by_name):
        count, total = by_name[name]
        times = f" x{count}" if count > 1 else ""
        lines.append(f"  {name}: {total * 1000:.3f} ms{times}")
    for name, value in sorted(tracer.counters.items()):
        lines.append(f"  {name} = {value}")
    for name, value in sorted(tracer.gauges.items()):
        lines.append(f"  {name} = {value}")
    return lines


def _finish_trace(args: argparse.Namespace) -> None:
    session: Optional[SchemaSession] = getattr(args, "session", None)
    if session is None:
        return
    tracer = session.last_trace()
    if tracer is None:
        return
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        tracer.write_jsonl(trace_out)
    if getattr(args, "profile", False):
        for line in _profile_summary(tracer):
            _write_err(line)


def _fail(args: argparse.Namespace, message: str, code: int) -> int:
    if getattr(args, "json", False):
        _emit_json({"command": getattr(args, "command", None),
                    "error": message, "exit_code": code})
    _write_err(f"error: {message}")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.session = _make_session(args)
    except LinearSystemError as error:
        # An unknown/malformed --backend spec is a usage error (exit 2),
        # same as a rejected argparse choice used to be.
        parser.error(str(error))
    try:
        # The session context manager shuts any batch worker pool down
        # before interpreter teardown — a live ProcessPoolExecutor at exit
        # races the multiprocessing atexit hooks and spews tracebacks.
        with args.session:
            timeout = getattr(args, "timeout", None)
            max_steps = getattr(args, "max_steps", None)
            if (not args.per_query_budget
                    and (timeout is not None or max_steps is not None)):
                # Whole-command budget: the ambient Budget governs every
                # hot loop the handler enters; BudgetExceeded lands in the
                # CarError arm below and exits 75.
                with use_budget(Budget(timeout, max_steps)):
                    return args.handler(args)
            return args.handler(args)
    except CarError as error:
        return _fail(args, str(error), error.exit_code)
    except FileNotFoundError as error:
        return _fail(args, str(error), EXIT_NOINPUT)
    finally:
        # The trace is exported even on failure: a trace of the stages that
        # did run is exactly what debugging a failed run needs.
        _finish_trace(args)
        # `serve` swaps in the service's session mid-handler; close
        # whatever session the namespace holds now (idempotent).
        args.session.close()


if __name__ == "__main__":
    raise SystemExit(main())
