"""Population-ratio analysis: what |C1| / |C2| can be across all models.

A CAR schema pins down surprisingly precise *global* population facts: in
every model of the cardinality chain ``L0 →(2,2)→ L1`` there are exactly
twice as many ``L1`` objects as ``L0`` objects; in Figure 2 every model has
at least as many courses as professors.  These facts live in the same
homogeneous cone ``Ψ_S`` the satisfiability check uses:

* restrict ``Ψ_S`` to the **supported** unknowns (every unknown of the
  restriction is positive in the maximal acceptable witness);
* normalize with ``Σ_{C̄ ∋ C2} Var(C̄) = 1`` (legal: the cone is
  scale-invariant, and ``C2`` is satisfiable);
* minimize / maximize ``Σ_{C̄ ∋ C1} Var(C̄)``.

The optima are the exact infimum/supremum of ``|C1| / |C2|`` over models
with ``C2`` nonempty.  *Why exactness despite acceptability being
non-convex*: blending any feasible point with the strictly-positive maximal
witness ``(1-ε)·x* + ε·w`` stays in the restricted cone, is strictly
positive — hence acceptable — and approaches the optimum as ``ε → 0``;
integer models approximate rationals by scaling (homogeneity).  So the LP
bounds are attained in the limit by genuine database states.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..core.errors import LinearSystemError, ReasoningError
from .simplex import INFEASIBLE, UNBOUNDED, solve_lp
from .support import SupportResult

__all__ = ["RatioBounds", "population_ratio_bounds"]


@dataclass(frozen=True)
class RatioBounds:
    """The exact range of ``|numerator| / |denominator|`` over models.

    ``lower`` is the infimum; ``upper`` the supremum, None meaning the
    ratio is unbounded above.  Both are limits over legal database states
    with a nonempty denominator class.
    """

    numerator: str
    denominator: str
    lower: Fraction
    upper: Optional[Fraction]

    def fixed(self) -> Optional[Fraction]:
        """The ratio when the schema forces a single value, else None."""
        if self.upper is not None and self.lower == self.upper:
            return self.lower
        return None

    def __str__(self) -> str:
        upper = "∞" if self.upper is None else str(self.upper)
        return (f"|{self.numerator}| / |{self.denominator}| "
                f"∈ [{self.lower}, {upper}]")


def _grouped_restriction(support: SupportResult, columns: list[int]):
    """Merge interchangeable columns (identical constraint signatures) and
    return ``(groups, dense_rows)`` over the supported unknowns.

    Valid here because the ratio objective and the normalization row only
    weight compound-class unknowns, which stay in singleton groups.
    """
    from .backends import grouped_columns

    groups, sparse_rows = grouped_columns(support.system, columns)
    rows: list[list[Fraction]] = []
    for sparse in sparse_rows:
        row = [Fraction(0)] * len(groups)
        for g, coeff in sparse.items():
            row[g] = coeff
        rows.append(row)
    return groups, rows


def population_ratio_bounds(support: SupportResult, numerator: str,
                            denominator: str) -> RatioBounds:
    """Exact bounds on ``|numerator| / |denominator|`` across all models.

    ``support`` is the maximal acceptable support of the schema's ``Ψ_S``
    (``reasoner.support``).  Raises
    :class:`~repro.core.errors.ReasoningError` when the denominator class is
    unsatisfiable (the ratio is undefined in every model).
    """
    system = support.system
    columns = sorted(support.support)
    if not columns:
        raise ReasoningError("the schema has no populatable compound classes")

    schema = system.expansion.schema
    for name in (numerator, denominator):
        if name not in schema.class_symbols:
            raise ReasoningError(f"class {name!r} does not occur in the schema")

    groups, rows = _grouped_restriction(support, columns)

    def class_weights(name: str) -> list[Fraction]:
        weights = []
        for members in groups:
            inside = sum(
                1 for var in members
                if isinstance(system.unknowns[var], frozenset)
                and name in system.unknowns[var])
            weights.append(Fraction(inside))
        return weights

    numerator_weights = class_weights(numerator)
    denominator_weights = class_weights(denominator)
    if not any(denominator_weights):
        raise ReasoningError(
            f"class {denominator!r} is unsatisfiable; the ratio is undefined")

    rhs = [Fraction(0)] * len(rows)
    # Normalization Σ denominator = 1 as two inequalities.
    rows.append(list(denominator_weights))
    rhs.append(Fraction(1))
    rows.append([-w for w in denominator_weights])
    rhs.append(Fraction(-1))

    outcomes = {}
    for sense, maximize in (("max", True), ("min", False)):
        result = solve_lp(numerator_weights, rows, rhs, maximize=maximize)
        if result.status == INFEASIBLE:
            raise LinearSystemError(
                "normalized system infeasible although the denominator is "
                "satisfiable; this cannot happen")
        outcomes[sense] = result

    lower = outcomes["min"].objective
    if outcomes["max"].status == UNBOUNDED:
        upper: Optional[Fraction] = None
    else:
        upper = outcomes["max"].objective
    return RatioBounds(numerator, denominator, lower, upper)
