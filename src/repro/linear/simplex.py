"""Exact rational linear programming (two-phase primal simplex).

Phase 2 of the paper's method reduces class satisfiability to the existence
of particular solutions of a homogeneous system of linear disequations
(Theorem 3.3), decided "using linear programming techniques" (Theorem 4.3).
Floating-point LP cannot be trusted to distinguish ``x > 0`` from ``x = 0``
— the very distinction the method hinges on — so we implement the simplex
method over :class:`fractions.Fraction`.

Problems are given in the form::

    maximize    c · x
    subject to  A x ≤ b,   x ≥ 0

Bland's anti-cycling rule guarantees termination.  The implementation is a
dense tableau, adequate for the system sizes the expansion produces; the
test suite cross-checks it against ``scipy.optimize.linprog`` on random
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..core.budget import current_budget
from ..core.errors import LinearSystemError

__all__ = ["LpResult", "solve_lp", "OPTIMAL", "UNBOUNDED", "INFEASIBLE"]

OPTIMAL = "optimal"
UNBOUNDED = "unbounded"
INFEASIBLE = "infeasible"


@dataclass(frozen=True)
class LpResult:
    """Outcome of an LP solve.

    ``solution`` and ``objective`` are exact rationals, present only for
    ``status == OPTIMAL``.  ``pivots`` counts the tableau pivots performed
    across both phases — the arithmetic work metric the observability bus
    reports as ``lp.pivots``.
    """

    status: str
    objective: Optional[Fraction] = None
    solution: Optional[tuple[Fraction, ...]] = None
    pivots: int = 0


def _to_fraction_matrix(rows: Sequence[Sequence], width: int) -> list[list[Fraction]]:
    matrix = []
    for row in rows:
        if len(row) != width:
            raise LinearSystemError(f"constraint row of width {len(row)}, expected {width}")
        matrix.append([Fraction(value) for value in row])
    return matrix


class _Tableau:
    """A dense simplex tableau for ``max c·x  s.t.  A x = b, x ≥ 0``.

    Rows: one per constraint; the objective row is kept separately.
    ``basis[i]`` is the variable currently basic in row ``i``.
    """

    def __init__(self, matrix: list[list[Fraction]], rhs: list[Fraction],
                 objective: list[Fraction], basis: list[int]):
        self.matrix = matrix
        self.rhs = rhs
        self.objective = objective  # reduced-cost row (c - z), length n
        self.obj_value = Fraction(0)
        self.basis = basis
        self.pivots = 0

    def price_out(self) -> None:
        """Make reduced costs of basic variables zero."""
        for row_index, var in enumerate(self.basis):
            coeff = self.objective[var]
            if coeff != 0:
                self._add_row_multiple(row_index, -coeff)

    def _add_row_multiple(self, row_index: int, factor: Fraction) -> None:
        # Substituting the basic variable of `row_index` into the objective:
        # z = obj_value + Σ objective_j x_j with x_b = rhs - Σ a_j x_j gives
        # objective += factor·row and obj_value -= factor·rhs.
        row = self.matrix[row_index]
        for j, value in enumerate(row):
            if value:
                self.objective[j] += factor * value
        self.obj_value -= factor * self.rhs[row_index]

    def pivot(self, row_index: int, col: int) -> None:
        pivot_value = self.matrix[row_index][col]
        if pivot_value == 0:
            raise LinearSystemError("pivot on a zero element")
        row = self.matrix[row_index]
        inv = Fraction(1) / pivot_value
        self.matrix[row_index] = [value * inv for value in row]
        self.rhs[row_index] *= inv
        pivot_row = self.matrix[row_index]
        for i, other in enumerate(self.matrix):
            if i == row_index:
                continue
            factor = other[col]
            if factor:
                self.matrix[i] = [a - factor * b for a, b in zip(other, pivot_row)]
                self.rhs[i] -= factor * self.rhs[row_index]
        factor = self.objective[col]
        if factor:
            self.objective = [a - factor * b for a, b in zip(self.objective, pivot_row)]
            self.obj_value += factor * self.rhs[row_index]
        self.basis[row_index] = col
        self.pivots += 1

    def run(self, *, allowed_cols: Optional[set[int]] = None) -> str:
        """Primal simplex iterations with Bland's rule.

        ``allowed_cols`` restricts entering variables (used in phase 2 to
        keep artificial variables out).  Returns OPTIMAL or UNBOUNDED.

        Each iteration (one pivot at most) ticks the ambient
        :class:`~repro.core.budget.Budget`, so a deadline or step bound
        interrupts long pivot sequences with
        :class:`~repro.core.errors.BudgetExceeded`.
        """
        tick = current_budget().tick
        n = len(self.objective)
        while True:
            tick()
            entering = -1
            for j in range(n):
                if allowed_cols is not None and j not in allowed_cols:
                    continue
                if self.objective[j] > 0:
                    entering = j
                    break
            if entering < 0:
                return OPTIMAL
            leaving = -1
            best_ratio: Optional[Fraction] = None
            for i, row in enumerate(self.matrix):
                coeff = row[entering]
                if coeff > 0:
                    ratio = self.rhs[i] / coeff
                    better = best_ratio is None or ratio < best_ratio
                    tie_break = (ratio == best_ratio and leaving >= 0
                                 and self.basis[i] < self.basis[leaving])
                    if better or tie_break:
                        best_ratio = ratio
                        leaving = i
            if leaving < 0:
                return UNBOUNDED
            self.pivot(leaving, entering)


def solve_lp(c: Sequence, a_ub: Sequence[Sequence], b_ub: Sequence,
             *, maximize: bool = True) -> LpResult:
    """Solve ``max (or min) c·x  s.t.  A_ub x ≤ b_ub, x ≥ 0`` exactly.

    All inputs are coerced to :class:`~fractions.Fraction`.  Returns an
    :class:`LpResult` whose status is one of ``optimal``, ``unbounded``,
    ``infeasible``.
    """
    n = len(c)
    m = len(a_ub)
    if len(b_ub) != m:
        raise LinearSystemError(f"{m} constraint rows but {len(b_ub)} right-hand sides")
    cost = [Fraction(value) for value in c]
    if not maximize:
        cost = [-value for value in cost]
    matrix = _to_fraction_matrix(a_ub, n)
    rhs = [Fraction(value) for value in b_ub]

    # Slack variables turn A x ≤ b into equalities; rows with negative rhs
    # are negated (making their slack coefficient -1) and get an artificial
    # variable so that phase 1 can start from an identity basis.
    total = n + m
    artificial_cols: list[int] = []
    rows: list[list[Fraction]] = []
    basis: list[int] = []
    for i in range(m):
        row = matrix[i] + [Fraction(0)] * m
        row[n + i] = Fraction(1)
        if rhs[i] < 0:
            row = [-value for value in row]
            rhs[i] = -rhs[i]
            artificial_cols.append(total)
            row.append(Fraction(1))
            basis.append(total)
            total += 1
        else:
            basis.append(n + i)
        rows.append(row)
    width = total
    for row in rows:
        row.extend([Fraction(0)] * (width - len(row)))

    phase1_pivots = 0
    if artificial_cols:
        phase1_obj = [Fraction(0)] * width
        for col in artificial_cols:
            phase1_obj[col] = Fraction(-1)
        tableau = _Tableau(rows, rhs, phase1_obj, basis)
        tableau.price_out()
        status = tableau.run()
        if status != OPTIMAL or tableau.obj_value != 0:
            return LpResult(INFEASIBLE, pivots=tableau.pivots)
        # Drive any artificial variable still basic (at value 0) out of the
        # basis when possible; a row with no eligible pivot is redundant.
        artificial = set(artificial_cols)
        for i, var in enumerate(tableau.basis):
            if var in artificial:
                for j in range(width):
                    if j not in artificial and tableau.matrix[i][j] != 0:
                        tableau.pivot(i, j)
                        break
        rows = tableau.matrix
        rhs = tableau.rhs
        basis = tableau.basis
        phase1_pivots = tableau.pivots
    else:
        artificial = set()

    phase2_obj = [Fraction(0)] * width
    for j in range(n):
        phase2_obj[j] = cost[j]
    tableau = _Tableau(rows, rhs, phase2_obj, basis)
    tableau.price_out()
    allowed = set(range(width)) - artificial
    status = tableau.run(allowed_cols=allowed)
    total_pivots = phase1_pivots + tableau.pivots
    if status == UNBOUNDED:
        return LpResult(UNBOUNDED, pivots=total_pivots)

    values = [Fraction(0)] * n
    for i, var in enumerate(tableau.basis):
        if var < n:
            values[var] = tableau.rhs[i]
    objective = tableau.obj_value if maximize else -tableau.obj_value
    return LpResult(OPTIMAL, objective, tuple(values), pivots=total_pivots)
