"""The system ``Ψ_S`` of linear disequations derived from an expansion.

Section 3.2: one unknown ``Var(X̄)`` per consistent compound class, compound
attribute, and compound relation, with disequations

* ``Var(X̄) ≥ 0`` for every unknown (implicit: the solver works over the
  nonnegative orthant);
* ``u · Var(C̄) ≤ S(att, C̄) ≤ v · Var(C̄)`` for every ``Natt`` entry
  ``C̄ ⇒ att : (u, v)``, where ``S`` sums the compound-attribute unknowns
  with the matching endpoint;
* ``x · Var(C̄) ≤ Σ Var(R̄) ≤ y · Var(C̄)`` over the compound relations with
  ``R̄[U] = C̄`` for every ``Nrel`` entry ``C̄ ⇒ R[U] : (x, y)``.

The system is homogeneous, so its solution set is a convex cone closed under
addition and positive scaling — the structural fact the support computation
in :mod:`repro.linear.support` exploits, and the reason rational solutions
scale to integer ones (Theorem 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Union

from ..core.cardinality import INFINITY
from ..core.errors import LinearSystemError
from ..expansion.compound import CompoundAttribute, CompoundRelation
from ..expansion.expansion import Expansion

__all__ = ["Unknown", "Constraint", "PsiSystem", "build_system",
           "bound_entries"]

#: An unknown is identified by the compound object it counts.
Unknown = Union[frozenset, CompoundAttribute, CompoundRelation]


@dataclass(frozen=True)
class Constraint:
    """A sparse disequation ``Σ coeff_i · x_i ≤ 0`` over unknown indices.

    ``origin`` records which ``Natt``/``Nrel`` entry produced it (useful in
    diagnostics and in the Theorem 4.3 size measurements).
    """

    coefficients: tuple[tuple[int, Fraction], ...]
    origin: str

    def nonzeros(self) -> int:
        return len(self.coefficients)


class PsiSystem:
    """``Ψ_S``: indexed unknowns plus homogeneous ``≤ 0`` constraints."""

    def __init__(self, expansion: Expansion):
        self.expansion = expansion
        self._unknowns: list[Unknown] = []
        self._index: dict[Unknown, int] = {}
        self._constraints: list[Constraint] = []

        for members in expansion.compound_classes:
            self._register(members)
        for compounds in expansion.compound_attributes.values():
            for compound in compounds:
                self._register(compound)
        for compounds in expansion.compound_relations.values():
            for compound in compounds:
                self._register(compound)

        self._build_attribute_constraints()
        self._build_relation_constraints()

    # ------------------------------------------------------------------
    def _register(self, unknown: Unknown) -> int:
        if unknown in self._index:
            raise LinearSystemError(f"duplicate unknown {unknown!r}")
        index = len(self._unknowns)
        self._unknowns.append(unknown)
        self._index[unknown] = index
        return index

    def index_of(self, unknown: Unknown) -> int:
        try:
            return self._index[unknown]
        except KeyError:
            raise LinearSystemError(f"unknown not in system: {unknown!r}") from None

    # ------------------------------------------------------------------
    def _add_bounds(self, class_index: int, summand_indices: Sequence[int],
                    lower: int, upper, origin: str) -> None:
        """Emit ``lower·x_C - Σ x_i ≤ 0`` and ``Σ x_i - upper·x_C ≤ 0``."""
        if lower > 0:
            coeffs: dict[int, Fraction] = {class_index: Fraction(lower)}
            for i in summand_indices:
                coeffs[i] = coeffs.get(i, Fraction(0)) - 1
            self._constraints.append(Constraint(
                tuple(sorted(coeffs.items())), f"{origin} lower {lower}"))
        if upper is not INFINITY:
            coeffs = {class_index: Fraction(-upper)}
            for i in summand_indices:
                coeffs[i] = coeffs.get(i, Fraction(0)) + 1
            self._constraints.append(Constraint(
                tuple(sorted(coeffs.items())), f"{origin} upper {upper}"))

    def _build_attribute_constraints(self) -> None:
        expansion = self.expansion
        for (members, ref), card in sorted(
                expansion.natt.items(),
                key=lambda item: (sorted(item[0][0]), item[0][1].name, item[0][1].inverse)):
            class_index = self.index_of(members)
            if ref.inverse:
                summands = expansion.attributes_with_right(ref.name, members)
            else:
                summands = expansion.attributes_with_left(ref.name, members)
            indices = [self.index_of(compound) for compound in summands]
            origin = f"Natt {{{', '.join(sorted(members))}}} => {ref}"
            self._add_bounds(class_index, indices, card.lower, card.upper, origin)

    def _build_relation_constraints(self) -> None:
        expansion = self.expansion
        for (members, relation, role), card in sorted(
                expansion.nrel.items(),
                key=lambda item: (sorted(item[0][0]), item[0][1], item[0][2])):
            class_index = self.index_of(members)
            summands = expansion.relations_with_role(relation, role, members)
            indices = [self.index_of(compound) for compound in summands]
            origin = f"Nrel {{{', '.join(sorted(members))}}} => {relation}[{role}]"
            self._add_bounds(class_index, indices, card.lower, card.upper, origin)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def unknowns(self) -> tuple[Unknown, ...]:
        return tuple(self._unknowns)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def n_unknowns(self) -> int:
        return len(self._unknowns)

    def n_constraints(self) -> int:
        return len(self._constraints)

    def n_nonzeros(self) -> int:
        return sum(c.nonzeros() for c in self._constraints)

    def size(self) -> int:
        """The paper's ``|Ψ_S|``: unknowns plus total constraint entries."""
        return self.n_unknowns() + self.n_nonzeros()

    def class_unknown_indices(self) -> list[int]:
        """Indices of the unknowns standing for compound classes."""
        return [i for i, unknown in enumerate(self._unknowns)
                if isinstance(unknown, frozenset)]

    def endpoints_of(self, index: int) -> list[int]:
        """Indices of the compound-class unknowns that must be positive for
        unknown ``index`` to be positive in an *acceptable* solution."""
        unknown = self._unknowns[index]
        if isinstance(unknown, CompoundAttribute):
            return [self.index_of(unknown.left), self.index_of(unknown.right)]
        if isinstance(unknown, CompoundRelation):
            return [self.index_of(members) for _, members in unknown.assignment]
        return []

    def dense_rows(self, columns: Sequence[int]) -> tuple[list[list[Fraction]], list[Fraction]]:
        """Dense ``A, b`` of the constraints restricted to ``columns``;
        dropped columns are treated as pinned to zero."""
        column_pos = {var: j for j, var in enumerate(columns)}
        rows: list[list[Fraction]] = []
        rhs: list[Fraction] = []
        for constraint in self._constraints:
            row = [Fraction(0)] * len(columns)
            touched = False
            for var, coeff in constraint.coefficients:
                j = column_pos.get(var)
                if j is not None:
                    row[j] = coeff
                    touched = True
            if touched:
                rows.append(row)
                rhs.append(Fraction(0))
        return rows, rhs

    def describe(self) -> str:
        lines = [f"Psi_S: {self.n_unknowns()} unknowns, "
                 f"{self.n_constraints()} disequations, "
                 f"{self.n_nonzeros()} nonzero coefficients"]
        return "\n".join(lines)


def build_system(expansion: Expansion) -> PsiSystem:
    """Derive ``Ψ_S`` from the expansion of a schema."""
    return PsiSystem(expansion)


def bound_entries(system: PsiSystem):
    """``(class_index, summand_indices, card, origin)`` per Natt/Nrel entry.

    The per-entry view of the system the combinatorial layers work from:
    the propagation rules of :mod:`repro.linear.support` and the §4.4
    closed form of :mod:`repro.linear.sparse` both reason entry-by-entry
    rather than row-by-row (an entry owns its lower *and* upper row).
    """
    expansion = system.expansion
    entries = []
    for (members, ref), card in expansion.natt.items():
        class_index = system.index_of(members)
        if ref.inverse:
            summands = expansion.attributes_with_right(ref.name, members)
        else:
            summands = expansion.attributes_with_left(ref.name, members)
        origin = f"{{{', '.join(sorted(members))}}} => {ref} : {card}"
        entries.append((class_index,
                        tuple(system.index_of(s) for s in summands), card,
                        origin))
    for (members, relation, role), card in expansion.nrel.items():
        class_index = system.index_of(members)
        summands = expansion.relations_with_role(relation, role, members)
        origin = f"{{{', '.join(sorted(members))}}} => {relation}[{role}] : {card}"
        entries.append((class_index,
                        tuple(system.index_of(s) for s in summands), card,
                        origin))
    return entries
