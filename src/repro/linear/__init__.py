"""Phase 2 of the reasoning method: linear disequations and their solutions."""

from .ratios import RatioBounds, population_ratio_bounds
from .simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, LpResult, solve_lp
from .support import PinEvent, SupportResult, acceptable_support
from .system import Constraint, PsiSystem, Unknown, build_system

__all__ = [
    "RatioBounds", "population_ratio_bounds",
    "INFEASIBLE", "OPTIMAL", "UNBOUNDED", "LpResult", "solve_lp",
    "PinEvent", "SupportResult", "acceptable_support",
    "Constraint", "PsiSystem", "Unknown", "build_system",
]
