"""Phase 2 of the reasoning method: linear disequations and their solutions.

The package splits into the *bookkeeping* layer (``support`` — propagation
rules and the fixpoint loop; ``system`` — building ``Ψ_S``) and the
*arithmetic core* (``backends`` — pluggable LP backends selected by name;
``simplex`` — the exact rational solver the ``"exact"`` backend wraps).
"""

from .backends import (
    AutoBackend,
    ExactBackend,
    FloatFallbackBackend,
    LpBackend,
    RoundSolution,
    available_backends,
    get_backend,
    register_backend,
)
from .ratios import RatioBounds, population_ratio_bounds
from .simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, LpResult, solve_lp
from .support import PinEvent, SupportResult, acceptable_support
from .system import Constraint, PsiSystem, Unknown, build_system

__all__ = [
    "AutoBackend", "ExactBackend", "FloatFallbackBackend", "LpBackend",
    "RoundSolution", "available_backends", "get_backend", "register_backend",
    "RatioBounds", "population_ratio_bounds",
    "INFEASIBLE", "OPTIMAL", "UNBOUNDED", "LpResult", "solve_lp",
    "PinEvent", "SupportResult", "acceptable_support",
    "Constraint", "PsiSystem", "Unknown", "build_system",
]
