"""Phase 2 of the reasoning method: linear disequations and their solutions.

The package splits into the *bookkeeping* layer (``support`` — propagation
rules and the fixpoint loop; ``system`` — building ``Ψ_S``) and the
*arithmetic core* (``backends`` — pluggable LP backends selected by name or
parameterized spec, each carrying a capability contract; ``simplex`` — the
dense exact rational solver behind ``"exact"``; ``sparse`` — the sparse
fraction-free simplex and §4.4 closed form behind ``"exact-sparse"``).
"""

from .backends import (
    AutoBackend,
    BackendCapabilities,
    BackendDescription,
    ExactBackend,
    FloatFallbackBackend,
    LpBackend,
    RoundSolution,
    SparseExactBackend,
    available_backends,
    backend_capabilities,
    describe_backend,
    get_backend,
    register_backend,
)
from .ratios import RatioBounds, population_ratio_bounds
from .simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, LpResult, solve_lp
from .sparse import SparseTableau, hierarchy_witness, solve_max_support_sparse
from .support import PinEvent, SupportResult, acceptable_support
from .system import Constraint, PsiSystem, Unknown, bound_entries, build_system

__all__ = [
    "AutoBackend", "BackendCapabilities", "BackendDescription",
    "ExactBackend", "FloatFallbackBackend", "LpBackend", "RoundSolution",
    "SparseExactBackend", "available_backends", "backend_capabilities",
    "describe_backend", "get_backend", "register_backend",
    "RatioBounds", "population_ratio_bounds",
    "INFEASIBLE", "OPTIMAL", "UNBOUNDED", "LpResult", "solve_lp",
    "SparseTableau", "hierarchy_witness", "solve_max_support_sparse",
    "PinEvent", "SupportResult", "acceptable_support",
    "Constraint", "PsiSystem", "Unknown", "bound_entries", "build_system",
]
