"""Sparse fraction-free Phase-2 simplex and the §4.4 closed form.

``Ψ_S`` is extremely sparse: acceptability couples each compound
attribute/relation only to its endpoint classes, and every ``Natt``/``Nrel``
entry touches one compound-class column plus its summands.  The dense
all-:class:`~fractions.Fraction` tableau of :mod:`repro.linear.simplex`
ignores that structure — every pivot rewrites the full ``m × (n+m)``
rectangle and every entry pays a gcd inside ``Fraction`` arithmetic.

This module keeps the tableau **sparse and integer**:

* each row is a ``{column: int numerator}`` dict with one positive integer
  denominator shared by the whole row (the right-hand side shares it too);
* a column index (``column → set of row ids``) lets a pivot touch only the
  rows actually containing the entering column;
* pivoting is fraction-free in the Bareiss style — rows update by integer
  cross-multiplication ``row_i·p - a_ic·row_r`` followed by **one** gcd
  normalization per updated row, instead of a gcd per arithmetic operation.

The max-support LP (maximize ``Σ t_g`` s.t. ``Ψ rows``, ``t_g ≤ x_g``,
``t_g ≤ 1``) has a nonnegative right-hand side throughout, so the slack
basis is primal feasible from the start: **no Phase 1, no artificial
variables** — a single run of Bland-rule primal simplex suffices, which is
the structural reason this solver can skip half of what the dense two-phase
core does.

The second short-circuit is Section 4.4: for detected generalization
hierarchies the support question has a closed-form answer.  After the
propagation rules reach their fixpoint, every surviving unknown is
supportable, and :func:`hierarchy_witness` *constructs* the certifying
solution directly (classes at 1, each cardinality entry's live summands
sharing the entry's feasible mass) and re-verifies it against every
disequation exactly — soundness rests on the verification, not on the
hierarchy detection, so a schema that fools the shape test still gets the
correct LP answer via the normal solver.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Optional, Sequence

from ..core.budget import current_budget
from ..core.cardinality import INFINITY
from ..core.errors import LinearSystemError
from .system import PsiSystem, bound_entries

__all__ = ["SparseTableau", "solve_max_support_sparse", "hierarchy_witness"]


class SparseTableau:
    """A sparse, fraction-free simplex tableau for ``max c·x, Ax ≤ b, x ≥ 0``
    with ``b ≥ 0`` (slack basis feasible — single-phase).

    ``rows``/``rhs`` are integer; slack columns ``n_structural + i`` are
    appended internally.  Row ``i`` represents the rational row
    ``num[i][j] / den[i]`` with ``den[i] > 0``; ``rhs[i]`` shares the
    denominator, which cancels out of both the ratio test
    (``rhs[i]/num[i][c]``) and the basic-variable readout — the simplex
    never builds a :class:`~fractions.Fraction` until the final solution.
    """

    def __init__(self, rows: Sequence[dict[int, int]], rhs: Sequence[int],
                 objective: dict[int, int], n_structural: int):
        m = len(rows)
        if len(rhs) != m:
            raise LinearSystemError(
                f"{m} constraint rows but {len(rhs)} right-hand sides")
        if any(value < 0 for value in rhs):
            raise LinearSystemError(
                "SparseTableau requires b ≥ 0 (slack-basis feasibility)")
        self.n_structural = n_structural
        self.num: list[dict[int, int]] = []
        self.den: list[int] = [1] * m
        self.rhs: list[int] = list(rhs)
        self.basis: list[int] = []
        self.cols: dict[int, set[int]] = {}
        for i, row in enumerate(rows):
            stored = {j: v for j, v in row.items() if v}
            stored[n_structural + i] = 1  # the slack column
            self.num.append(stored)
            self.basis.append(n_structural + i)
            for j in stored:
                self.cols.setdefault(j, set()).add(i)
        # Reduced costs: the slack basis has zero cost, so c - z == c.
        self.obj_num: dict[int, int] = {j: v for j, v in objective.items() if v}
        self.obj_den: int = 1
        self.pivots = 0

    # ------------------------------------------------------------------
    def _normalize(self, row: dict[int, int], rhs: int,
                   den: int) -> tuple[int, int]:
        """Fix the denominator sign and divide the whole row by its gcd.

        One normalization per row per pivot keeps entries at the size of
        (scaled) minors — the fraction-free analogue of Bareiss division —
        without paying a gcd on every multiply.
        """
        if den < 0:
            den, rhs = -den, -rhs
            for j in row:
                row[j] = -row[j]
        g = gcd(den, rhs)
        for value in row.values():
            if g == 1:
                break
            g = gcd(g, value)
        if g > 1:
            den //= g
            rhs //= g
            for j in row:
                row[j] //= g
        return rhs, den

    def pivot(self, r: int, c: int) -> None:
        prc = self.num[r][c]
        row_r = self.num[r]
        rhs_r = self.rhs[r]
        touched = self.cols.get(c, set())
        for i in list(touched):
            if i == r:
                continue
            row_i = self.num[i]
            nic = row_i[c]
            # row_i ← row_i·prc − nic·row_r  (den_i ← den_i·prc), touching
            # only row_i's nonzeros plus row_r's support.
            for j in row_i:
                row_i[j] *= prc
            for j, vrj in row_r.items():
                delta = nic * vrj
                cur = row_i.get(j)
                if cur is None:
                    row_i[j] = -delta
                    self.cols.setdefault(j, set()).add(i)
                else:
                    new = cur - delta
                    if new:
                        row_i[j] = new
                    else:
                        del row_i[j]
                        self.cols[j].discard(i)
            new_rhs = self.rhs[i] * prc - nic * rhs_r
            new_den = self.den[i] * prc
            self.rhs[i], self.den[i] = self._normalize(row_i, new_rhs, new_den)
        oc = self.obj_num.get(c)
        if oc:
            obj = self.obj_num
            for j in obj:
                obj[j] *= prc
            for j, vrj in row_r.items():
                delta = oc * vrj
                cur = obj.get(j)
                if cur is None:
                    obj[j] = -delta
                else:
                    new = cur - delta
                    if new:
                        obj[j] = new
                    else:
                        del obj[j]
            new_den = self.obj_den * prc
            if new_den < 0:
                new_den = -new_den
                for j in obj:
                    obj[j] = -obj[j]
            g = new_den
            for value in obj.values():
                if g == 1:
                    break
                g = gcd(g, value)
            if g > 1:
                new_den //= g
                for j in obj:
                    obj[j] //= g
            self.obj_den = new_den
        self.basis[r] = c
        self.pivots += 1

    def run(self) -> None:
        """Primal simplex with Bland's rule until optimality.

        Entering: the smallest column with positive reduced cost (the sign
        of the integer numerator — ``obj_den > 0`` is an invariant).
        Leaving: the minimum-ratio row, ties broken toward the smallest
        basic variable; ratios compare by integer cross-multiplication.
        Each iteration ticks the ambient budget, so deadlines and step
        bounds interrupt long pivot sequences exactly as in the dense core.
        """
        tick = current_budget().tick
        while True:
            tick()
            entering = min(
                (j for j, v in self.obj_num.items() if v > 0), default=-1)
            if entering < 0:
                return
            leaving = -1
            best_num = best_den = 0  # best ratio = best_num / best_den
            for i in self.cols.get(entering, ()):  # only rows with the column
                coeff = self.num[i][entering]
                if coeff <= 0:
                    continue
                # ratio rhs[i]/coeff vs best: cross-multiply (both dens > 0)
                if leaving < 0:
                    better = True
                else:
                    lhs = self.rhs[i] * best_den
                    rhs = best_num * coeff
                    better = lhs < rhs or (lhs == rhs
                                           and self.basis[i]
                                           < self.basis[leaving])
                if better:
                    leaving, best_num, best_den = i, self.rhs[i], coeff
            if leaving < 0:
                raise LinearSystemError(
                    "max-support LP is unbounded; it is bounded by "
                    "construction (t ≤ 1), this cannot happen")
            self.pivot(leaving, entering)

    def solution(self) -> list[Fraction]:
        """Structural-variable values at the current (optimal) basis."""
        values = [Fraction(0)] * self.n_structural
        for i, var in enumerate(self.basis):
            if var < self.n_structural:
                values[var] = Fraction(self.rhs[i], self.num[i][var])
        return values


def solve_max_support_sparse(groups, rows) -> tuple[list[Fraction], int]:
    """The max-support LP over grouped columns on the sparse tableau.

    Same contract as
    :func:`repro.linear.backends.solve_exact_groups` — ``groups`` from
    :func:`~repro.linear.backends.grouped_columns`, ``rows`` as sparse
    ``{group: Fraction}`` dicts — but solved by the single-phase sparse
    fraction-free simplex.  Returns ``(group x-values, pivot count)``.
    """
    k = len(groups)
    int_rows: list[dict[int, int]] = []
    rhs: list[int] = []
    for row in rows:
        scale = lcm(*(coeff.denominator for coeff in row.values()))
        int_rows.append({g: int(coeff * scale) for g, coeff in row.items()})
        rhs.append(0)
    for g in range(k):
        int_rows.append({g: -1, k + g: 1})   # t_g - x_g ≤ 0
        rhs.append(0)
        int_rows.append({k + g: 1})          # t_g ≤ 1
        rhs.append(1)
    objective = {k + g: 1 for g in range(k)}
    tableau = SparseTableau(int_rows, rhs, objective, 2 * k)
    tableau.run()
    return tableau.solution()[:k], tableau.pivots


# ----------------------------------------------------------------------
# Section 4.4: the hierarchy closed form
# ----------------------------------------------------------------------
def hierarchy_witness(system: PsiSystem,
                      active: Sequence[int]) -> Optional[dict[int, Fraction]]:
    """Construct-and-verify the §4.4 closed-form answer.

    For a detected generalization hierarchy whose propagation fixpoint left
    ``active`` alive, *every* active unknown is supportable, and a witness
    is directly constructible: each compound class counts 1 object, and the
    live summands of each ``Natt``/``Nrel`` entry share the entry's
    feasible mass (the upper bound when finite, else ``max(lower, 1)``)
    equally.  The construction applies when each active compound unknown is
    governed by at most one bound entry — true of hierarchy-shaped systems,
    where attributes have no inverse declarations and no relations exist.

    Returns the witness only after **exact verification** against every
    disequation (inactive unknowns at zero) and the acceptability condition,
    so a ``None`` result (construction or verification failed) simply sends
    the caller to the ordinary LP — the closed form can never change a
    verdict, only skip the solver.
    """
    active_set = set(active)
    values: dict[int, Fraction] = {}
    for index in active_set:
        if any(endpoint not in active_set
               for endpoint in system.endpoints_of(index)):
            return None  # acceptability not yet propagated; let the LP pin
    for index in system.class_unknown_indices():
        if index in active_set:
            values[index] = Fraction(1)
    assigned: set[int] = set()
    for class_index, summands, card, _origin in bound_entries(system):
        live = [s for s in summands if s in active_set]
        if not live:
            # The lower row needs live partners when the class is active —
            # the propagation rules pin such classes before we get here.
            if class_index in active_set and card.lower >= 1:
                return None
            continue
        if class_index not in active_set:
            if card.upper is not INFINITY:
                return None  # summands should have been pinned already
            continue  # only ``lower·0 ≤ Σ``: vacuous for positive summands
        if card.is_empty():
            return None
        mass = card.upper if card.upper is not INFINITY else max(card.lower, 1)
        if mass <= 0:
            return None
        share = Fraction(mass, len(live))
        for s in live:
            if s in assigned:
                return None  # coupled entries (inverses/relations): use LP
            values[s] = share
            assigned.add(s)
    for index in active_set:
        values.setdefault(index, Fraction(1))  # unconstrained compounds
    # The safety net making the closed form unconditionally sound: every
    # disequation re-checked exactly, like any other backend certificate.
    zero = Fraction(0)
    for constraint in system.constraints:
        total = sum((coeff * values.get(var, zero)
                     for var, coeff in constraint.coefficients), zero)
        if total > 0:
            return None
    return values
