"""Pluggable LP backends — the arithmetic core of the support computation.

The fixpoint loop of :func:`repro.linear.support.acceptable_support` is pure
bookkeeping (propagation rules, pin log, iteration); what distinguishes a
fast deployment from an authoritative one is the *arithmetic core* that
answers each max-support round.  This module separates the two: a backend is
any object satisfying the :class:`LpBackend` protocol —

    ``solve(system, positive_indices, *, merge_columns=True) -> RoundSolution``

— and backends are registered by name so callers (``acceptable_support``,
:class:`~repro.engine.config.EngineConfig`, the CLI ``--backend`` flag)
select one without importing its implementation.

Registered backends:

* ``"exact"`` — the dense two-phase rational simplex of
  :mod:`repro.linear.simplex`.  Authoritative: every value is an exact
  :class:`~fractions.Fraction`, so ``x > 0`` vs ``x = 0`` — the distinction
  Theorem 3.3 hinges on — is decided without numerical doubt.  Kept as the
  differential reference; the sparse core below is the production exact path.
* ``"exact-sparse"`` — the sparse fraction-free (integer-preserving)
  single-phase simplex of :mod:`repro.linear.sparse`, exploiting that
  ``Ψ_S`` couples each compound attribute/relation only to its endpoint
  classes and that the max-support LP is slack-basis feasible.  Same exact
  verdicts as ``"exact"``, far less arithmetic; additionally answers
  detected §4.4 hierarchies in closed form, with zero pivots.
* ``"float-fallback"`` (deprecated alias ``"float"``) — tries ``scipy``'s
  HiGHS solver in floating point first, snaps the result to small
  rationals, and re-verifies every disequation exactly.  On degeneracy
  (values too close to zero to classify), verification failure, or an
  unavailable/failed float solve it falls back to the exact simplex, so its
  verdicts are always identical to ``"exact"`` — a property the
  differential test suite pins.
* ``"auto"`` — the sparse exact core up to :data:`SPARSE_BACKEND_LIMIT` LP
  columns (parameterizable: ``"auto:limit=500"``), ``"float-fallback"``
  beyond; hierarchy systems take the closed form regardless of size.  The
  limit sits at the measured sparse/float crossover (see
  :data:`SPARSE_BACKEND_LIMIT`): the float-first core, exact verification
  included, wins 5-45x on larger systems, so the cutoff is load-bearing,
  not vestigial.

**Capability contract.**  Every registered backend also answers
``capabilities()`` (a :class:`BackendCapabilities`: arithmetic kind,
sparsity, closed-form support, degeneracy handling) and ``describe()`` (a
:class:`BackendDescription` adding name, aliases, and a one-line summary).
Third-party backends may omit them — :func:`backend_capabilities` and
:func:`describe_backend` resolve conservative defaults — but only backends
declaring ``closed_form=True`` are handed the ``hierarchy=True`` hint by
the support loop.

**Backend selection specs.**  :func:`get_backend` accepts a bare name
(``"exact-sparse"``), a parameterized spec (``"auto:limit=500"`` —
``name:key=value,...`` routed to the backend's registered factory), or any
object implementing the protocol; all three forms are valid wherever a
backend is configured (``EngineConfig.lp_backend``, CLI ``--backend``,
``acceptable_support(backend=...)``).

All backends return the same :class:`RoundSolution` shape, and because the
maximal acceptable support is *unique* (solutions of the homogeneous system
are closed under addition), any sound backend must produce the same
``supported`` set — only witness values and wall-clock may differ.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from ..core.errors import LinearSystemError
from .simplex import OPTIMAL, solve_lp
from .sparse import hierarchy_witness, solve_max_support_sparse
from .system import PsiSystem

__all__ = [
    "LpBackend", "RoundSolution", "BackendCapabilities",
    "BackendDescription", "backend_capabilities", "describe_backend",
    "register_backend", "get_backend", "available_backends",
    "ExactBackend", "SparseExactBackend", "FloatFallbackBackend",
    "AutoBackend", "EXACT_BACKEND_LIMIT", "SPARSE_BACKEND_LIMIT",
    "METRIC_KEYS", "bump_metric",
]

#: Column-count threshold below which the *dense* exact core is considered
#: affordable (used by the float path's witness repair).
EXACT_BACKEND_LIMIT = 60

#: Column-count threshold below which ``"auto"`` stays with the sparse
#: exact core; beyond it the float-first path (still exactly verified)
#: takes over.  Parameterizable per selection via ``"auto:limit=N"``.
#:
#: The value is the *measured* crossover, not a guess.  On the ratio-
#: cluster sweep (the Theorem 4.3 workload scaled up) the two cores are
#: within ~2.5x of each other up to ~400 columns (both under 0.15 s);
#: from ~600 columns the float-first core wins 4.8x, growing to 10-12x
#: at ~2,000 columns and ~45x on a 14,763-column wide-attribute system
#: (89 s sparse vs 2 s float).  Below the crossover the sparse core is
#: preferred because it never pays the multi-second cold ``scipy``
#: import and needs no optional dependency at all.
SPARSE_BACKEND_LIMIT = 400

#: The documented :attr:`RoundSolution.metrics` key schema.  Every counter a
#: backend emits must be one of these (``bump_metric`` enforces it); the
#: support loop forwards them verbatim to the observability bus, where
#: ``lp.rounds`` and the ``support.pins_*`` tallies join them.
#:
#: * ``lp.exact_solves`` / ``lp.sparse_solves`` / ``lp.float_solves`` —
#:   solver invocations by arithmetic core (dense exact, sparse exact,
#:   HiGHS float);
#: * ``lp.pivots`` — simplex pivots, dense and sparse combined;
#: * ``lp.hierarchy_closed_form`` — rounds answered by the §4.4 closed
#:   form, no solver invoked;
#: * ``lp.degenerate_detections`` — float solutions inside the ambiguity
#:   band, refused;
#: * ``lp.float_exact_fallbacks`` — rounds the float path handed to the
#:   exact core;
#: * ``lp.rationalize_repairs`` — float witnesses repaired by a restricted
#:   exact re-solve.
METRIC_KEYS = frozenset({
    "lp.exact_solves",
    "lp.sparse_solves",
    "lp.float_solves",
    "lp.pivots",
    "lp.hierarchy_closed_form",
    "lp.degenerate_detections",
    "lp.float_exact_fallbacks",
    "lp.rationalize_repairs",
})


def bump_metric(metrics: Optional[dict[str, int]], name: str,
                amount: int = 1) -> None:
    """Add ``amount`` to a :data:`METRIC_KEYS` counter (schema-checked)."""
    if name not in METRIC_KEYS:
        raise LinearSystemError(
            f"unknown solver metric {name!r}; the documented keys are: "
            f"{', '.join(sorted(METRIC_KEYS))}")
    if metrics is not None and amount:
        metrics[name] = metrics.get(name, 0) + amount


@dataclass(frozen=True)
class RoundSolution:
    """Outcome of one max-support LP round.

    ``values`` maps each candidate unknown to its rational witness value
    (concentrated on one representative per interchangeable group);
    ``supported`` holds the unknowns that can be positive; ``backend_used``
    names the arithmetic core that actually produced the numbers
    (``"exact"``, ``"exact-sparse"``, ``"float"``, ``"closed-form"`` for a
    §4.4 answer, or ``"propagation"`` when no LP was needed).  ``metrics``
    carries the round's arithmetic-work counters, drawn from the documented
    :data:`METRIC_KEYS` schema, which
    :func:`repro.linear.support.acceptable_support` aggregates onto the
    observability bus.
    """

    values: dict[int, Fraction]
    supported: frozenset[int]
    backend_used: str
    metrics: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class BackendCapabilities:
    """What an LP backend can do — the introspection half of the contract.

    ``arithmetic`` is ``"exact-rational"`` (Fraction throughout),
    ``"float-first"`` (float solve, exactly re-verified), or ``"hybrid"``
    (routes between cores); ``sparse`` — whether the core exploits the
    sparsity of ``Ψ_S`` rather than densifying it; ``closed_form`` —
    whether the backend answers detected §4.4 hierarchy systems without
    invoking a solver (only such backends receive the ``hierarchy=True``
    hint); ``degeneracy`` names the anti-degeneracy mechanism
    (``"bland-anticycling"``, ``"ambiguity-band-exact-fallback"``, …).
    """

    arithmetic: str
    sparse: bool
    closed_form: bool
    degeneracy: str

    def as_dict(self) -> dict:
        return {"arithmetic": self.arithmetic, "sparse": self.sparse,
                "closed_form": self.closed_form,
                "degeneracy": self.degeneracy}


@dataclass(frozen=True)
class BackendDescription:
    """One registry entry, described: what :func:`available_backends`
    returns instead of bare alias strings.

    ``parameters`` names the keys a ``"name:key=value"`` spec accepts
    (empty for unparameterized backends); ``deprecated_aliases`` the
    aliases that still resolve but warn.
    """

    name: str
    aliases: tuple[str, ...]
    summary: str
    capabilities: BackendCapabilities
    parameters: tuple[str, ...] = ()
    deprecated_aliases: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "aliases": list(self.aliases),
            "summary": self.summary,
            "capabilities": self.capabilities.as_dict(),
            "parameters": list(self.parameters),
            "deprecated_aliases": list(self.deprecated_aliases),
        }


#: Conservative capabilities assumed for backends that do not implement
#: ``capabilities()`` (third-party protocol objects): no claims made, so
#: the support loop never hands them the closed-form hint.
DEFAULT_CAPABILITIES = BackendCapabilities(
    arithmetic="unspecified", sparse=False, closed_form=False,
    degeneracy="unspecified")


def backend_capabilities(backend: "LpBackend") -> BackendCapabilities:
    """The backend's declared capabilities, or the conservative default."""
    probe = getattr(backend, "capabilities", None)
    return probe() if callable(probe) else DEFAULT_CAPABILITIES


def describe_backend(backend: "LpBackend") -> BackendDescription:
    """The backend's self-description, synthesized when not implemented."""
    probe = getattr(backend, "describe", None)
    if callable(probe):
        return probe()
    return BackendDescription(
        name=backend.name, aliases=(), summary=type(backend).__name__,
        capabilities=backend_capabilities(backend))


@runtime_checkable
class LpBackend(Protocol):
    """The protocol every LP backend implements.

    One call answers one max-support round: given ``Ψ_S`` and the indices
    still considered positive candidates, maximize ``Σ t_i`` subject to the
    system, ``t_i ≤ x_i`` and ``t_i ≤ 1``, and report which candidates the
    optimum keeps positive.  Implementations must be *sound and complete*
    for the support question — the unique-maximal-support argument then
    guarantees backend-independent verdicts.

    Backends additionally carrying the capability contract implement
    ``capabilities() -> BackendCapabilities`` and ``describe() ->
    BackendDescription`` (resolved with conservative defaults by
    :func:`backend_capabilities` / :func:`describe_backend` when absent),
    and a backend declaring ``closed_form=True`` must accept the
    keyword-only ``hierarchy: bool = False`` hint on ``solve`` — the
    support loop passes it only to such backends.
    """

    name: str

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        """Solve one round over the active unknowns."""
        ...


# ----------------------------------------------------------------------
# Shared grouping: interchangeable columns collapse into one LP variable
# ----------------------------------------------------------------------
def grouped_columns(system: PsiSystem, active: Sequence[int],
                    merge_columns: bool = True):
    """Group interchangeable unknowns (identical constraint columns).

    Returns ``(groups, rows)``: ``groups`` is a list of variable-index
    tuples; ``rows`` a list of ``{group_index: coefficient}`` dicts, one per
    constraint that still touches an active unknown.  With
    ``merge_columns=False`` every unknown stays in its own group (the
    ablation baseline).
    """
    active_set = set(active)
    signatures: dict[int, list[tuple[int, Fraction]]] = {v: [] for v in active}
    live_rows = 0
    raw_rows: list[dict[int, Fraction]] = []
    for constraint in system.constraints:
        touched = {var: coeff for var, coeff in constraint.coefficients
                   if var in active_set}
        if not touched:
            continue
        row_index = live_rows
        live_rows += 1
        raw_rows.append(touched)
        for var, coeff in touched.items():
            signatures[var].append((row_index, coeff))

    groups_by_signature: dict[tuple, list[int]] = {}
    unknowns = system.unknowns
    for var in active:
        if not merge_columns or isinstance(unknowns[var], frozenset):
            # Compound-class unknowns stay singleton: the stored witness
            # concentrates each group's value on one representative, and
            # model synthesis needs every supported compound class to carry
            # a positive object count.
            key = ("class", var)
        else:
            key = tuple(signatures[var])
        groups_by_signature.setdefault(key, []).append(var)
    groups = [tuple(members) for members in groups_by_signature.values()]
    group_of = {var: g for g, members in enumerate(groups) for var in members}

    rows: list[dict[int, Fraction]] = []
    for touched in raw_rows:
        row: dict[int, Fraction] = {}
        for var, coeff in touched.items():
            # Identical columns by construction: the group coefficient is the
            # (shared) member coefficient, and the group variable stands for
            # the member sum.
            row[group_of[var]] = coeff
        rows.append(row)
    return groups, rows


def _concentrated(groups, values, backend_used: str,
                  metrics: Optional[dict[str, int]] = None) -> RoundSolution:
    """Turn group values into a per-unknown witness and support set.

    Support is a *group* property (identical columns are interchangeable):
    every member of a positive group can be positive.  The stored witness,
    however, concentrates each group's value on one representative — this
    keeps denominators (and hence the integer witness that synthesis scales
    up) small, and is still an acceptable solution because the constraint
    rows only see group sums.
    """
    per_unknown: dict[int, Fraction] = {}
    supported: set[int] = set()
    for members, value in zip(groups, values):
        for var in members:
            per_unknown[var] = Fraction(0)
        if value > 0:
            per_unknown[members[0]] = value
            supported.update(members)
    return RoundSolution(per_unknown, frozenset(supported), backend_used,
                         metrics if metrics is not None else {})


# ----------------------------------------------------------------------
# Exact cores (dense reference, sparse production path)
# ----------------------------------------------------------------------
def solve_exact_groups(groups, rows,
                       metrics: Optional[dict[str, int]] = None
                       ) -> list[Fraction]:
    """The max-support LP over grouped columns, solved by the dense core.

    ``metrics`` (optional) receives ``lp.exact_solves`` and ``lp.pivots``.
    """
    k = len(groups)
    width = 2 * k
    a_ub: list[list[Fraction]] = []
    b_ub: list[Fraction] = []
    for row in rows:
        dense = [Fraction(0)] * width
        for g, coeff in row.items():
            dense[g] = coeff
        a_ub.append(dense)
        b_ub.append(Fraction(0))
    for g in range(k):
        dense = [Fraction(0)] * width
        dense[g] = Fraction(-1)
        dense[k + g] = Fraction(1)
        a_ub.append(dense)            # t_g - x_g ≤ 0
        b_ub.append(Fraction(0))
        dense = [Fraction(0)] * width
        dense[k + g] = Fraction(1)
        a_ub.append(dense)            # t_g ≤ 1
        b_ub.append(Fraction(1))
    objective = [Fraction(0)] * k + [Fraction(1)] * k
    result = solve_lp(objective, a_ub, b_ub, maximize=True)
    bump_metric(metrics, "lp.exact_solves")
    bump_metric(metrics, "lp.pivots", result.pivots)
    if result.status != OPTIMAL:
        raise LinearSystemError(
            f"max-support LP ended with status {result.status}; it is "
            "feasible at zero and bounded, this cannot happen")
    return list(result.solution[:k])


class ExactBackend:
    """The dense exact-Fraction simplex: authoritative, no numerical doubt.

    Retained as the differential reference the sparse core is pinned
    against; deployments wanting the exact path should prefer
    ``"exact-sparse"``.
    """

    name = "exact"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            arithmetic="exact-rational", sparse=False, closed_form=False,
            degeneracy="bland-anticycling")

    def describe(self) -> BackendDescription:
        return BackendDescription(
            name=self.name, aliases=(),
            summary="dense two-phase rational simplex (reference core)",
            capabilities=self.capabilities())

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        metrics: dict[str, int] = {}
        return _concentrated(groups,
                             solve_exact_groups(groups, rows, metrics),
                             self.name, metrics)


class SparseExactBackend:
    """The sparse fraction-free simplex plus the §4.4 closed form.

    Same exact verdicts as :class:`ExactBackend` — the differential suite
    pins them — produced by the column-indexed integer-preserving solver of
    :mod:`repro.linear.sparse`.  When the caller flags the system as a
    detected generalization hierarchy, the backend first tries the
    construct-and-verify closed form and answers without any simplex at
    all (``lp.hierarchy_closed_form``, zero ``lp.pivots``).
    """

    name = "exact-sparse"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            arithmetic="exact-rational", sparse=True, closed_form=True,
            degeneracy="bland-anticycling")

    def describe(self) -> BackendDescription:
        return BackendDescription(
            name=self.name, aliases=(),
            summary="sparse fraction-free single-phase simplex with the "
                    "§4.4 hierarchy closed form",
            capabilities=self.capabilities())

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True,
              hierarchy: bool = False) -> RoundSolution:
        if hierarchy:
            closed = _closed_form_round(system, positive_indices)
            if closed is not None:
                return closed
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        return self._solve_grouped(groups, rows)

    def _solve_grouped(self, groups, rows) -> RoundSolution:
        metrics: dict[str, int] = {}
        values, pivots = solve_max_support_sparse(groups, rows)
        bump_metric(metrics, "lp.sparse_solves")
        bump_metric(metrics, "lp.pivots", pivots)
        return _concentrated(groups, values, self.name, metrics)


def _closed_form_round(system: PsiSystem,
                       positive_indices: Sequence[int]
                       ) -> Optional[RoundSolution]:
    """One round answered by the §4.4 closed form, or None (use the LP)."""
    witness = hierarchy_witness(system, positive_indices)
    if witness is None:
        return None
    metrics: dict[str, int] = {}
    bump_metric(metrics, "lp.hierarchy_closed_form")
    return RoundSolution(witness, frozenset(positive_indices),
                         "closed-form", metrics)


# ----------------------------------------------------------------------
# Float-first core with exact fallback
# ----------------------------------------------------------------------
def solve_float_groups(groups, rows) -> Optional[list[float]]:
    """HiGHS solve returning raw float group values, or None on failure."""
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix
    except ImportError:
        return None
    k = len(groups)
    width = 2 * k
    data, row_idx, col_idx = [], [], []
    b_ub = []
    r = 0
    for row in rows:
        for g, coeff in row.items():
            data.append(float(coeff))
            row_idx.append(r)
            col_idx.append(g)
        b_ub.append(0.0)
        r += 1
    for g in range(k):
        data.extend([-1.0, 1.0])
        row_idx.extend([r, r])
        col_idx.extend([g, k + g])
        b_ub.append(0.0)
        r += 1
    a_ub = csr_matrix((data, (row_idx, col_idx)), shape=(r, width))
    c = np.zeros(width)
    c[k:] = -1.0  # maximize Σ t == minimize -Σ t
    bounds = [(0, None)] * k + [(0, 1)] * k
    outcome = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not outcome.success:
        return None
    return [float(outcome.x[g]) for g in range(k)]


def rationalize(values: list[float], max_denominator: int) -> list[Fraction]:
    """Snap float values to nearby small rationals, zeroing solver noise."""
    snapped = []
    for value in values:
        rational = Fraction(value).limit_denominator(max_denominator)
        snapped.append(rational if rational > Fraction(1, 10 ** 7) else Fraction(0))
    return snapped


def verify_rows(rows, values) -> bool:
    """Exact check of ``Σ coeff·x ≤ 0`` for a rational candidate."""
    for row in rows:
        total = Fraction(0)
        for g, coeff in row.items():
            total += coeff * values[g]
        if total > 0:
            return False
    return True


def repair_float_witness(groups, rows, values,
                         metrics: Optional[dict[str, int]] = None
                         ) -> Optional[list[Fraction]]:
    """Try to turn a rationalized float solution into an exact one.

    The rationalized values may violate tight constraints by rounding noise.
    A cheap repair that preserves the support often works: re-solve the
    *exact* LP restricted to the support columns only.  Returns None when
    the repair would be as expensive as the full exact solve.
    """
    support_cols = [g for g, value in enumerate(values) if value > 0]
    if not support_cols or len(support_cols) > EXACT_BACKEND_LIMIT:
        return None
    position = {g: j for j, g in enumerate(support_cols)}
    restricted_rows: list[dict[int, Fraction]] = []
    for row in rows:
        touched = {position[g]: coeff for g, coeff in row.items() if g in position}
        # A dropped column with positive coefficient only relaxes the row,
        # with negative coefficient the row is still valid at zero.
        if touched:
            restricted_rows.append(touched)
    sub_groups = [groups[g] for g in support_cols]
    sub_values = solve_exact_groups(sub_groups, restricted_rows, metrics)
    if any(value <= 0 for value in sub_values):
        return None  # exact disagrees with the float support; caller redoes
    bump_metric(metrics, "lp.rationalize_repairs")
    repaired = [Fraction(0)] * len(groups)
    for g, value in zip(support_cols, sub_values):
        repaired[g] = value
    return repaired


class FloatFallbackBackend:
    """Float-first arithmetic with an exact safety net.

    The HiGHS optimum is snapped to small rationals and re-verified against
    every disequation *exactly*; only a verified certificate is accepted.
    The exact simplex takes over whenever the float path is unavailable,
    fails, or is **degenerate**: a raw value inside the ambiguity band
    ``(degenerate_low, degenerate_high)`` is too close to zero to classify
    as supported-vs-pinned, the very distinction the method rests on.
    """

    name = "float-fallback"

    #: Raw float values strictly inside this open band are ambiguous.
    degenerate_low = 1e-9
    degenerate_high = 1e-6

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            arithmetic="float-first", sparse=True, closed_form=False,
            degeneracy="ambiguity-band-exact-fallback")

    def describe(self) -> BackendDescription:
        return BackendDescription(
            name=self.name, aliases=("float",),
            summary="HiGHS float-first with exact re-verification and an "
                    "exact safety net",
            capabilities=self.capabilities(),
            deprecated_aliases=("float",))

    def _degenerate(self, floats: list[float]) -> bool:
        return any(self.degenerate_low < value < self.degenerate_high
                   for value in floats)

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        return self._solve_grouped(groups, rows)

    def _solve_grouped(self, groups, rows) -> RoundSolution:
        metrics: dict[str, int] = {}
        values: Optional[list[Fraction]] = None
        floats = solve_float_groups(groups, rows)
        if floats is not None:
            bump_metric(metrics, "lp.float_solves")
        if floats is not None and self._degenerate(floats):
            bump_metric(metrics, "lp.degenerate_detections")
            floats = None
        if floats is not None:
            # Prefer small-denominator rationalizations: they keep the
            # integer witness (and therefore synthesized models) small.
            for max_denominator in (60, 10 ** 4, 10 ** 9):
                candidate = rationalize(floats, max_denominator)
                if verify_rows(rows, candidate):
                    values = candidate
                    break
            if values is None:
                values = repair_float_witness(
                    groups, rows, rationalize(floats, 10 ** 9), metrics)
        if values is None:
            bump_metric(metrics, "lp.float_exact_fallbacks")
            return _concentrated(groups,
                                 solve_exact_groups(groups, rows, metrics),
                                 "exact", metrics)
        return _concentrated(groups, values, "float", metrics)


class AutoBackend:
    """Pick the core by system size: the sparse exact simplex below the
    column threshold, float-fallback (still exactly verified) beyond it;
    detected hierarchies take the closed form regardless of size.

    The default threshold is the measured crossover on the scaled
    Theorem 4.3 workload (:data:`SPARSE_BACKEND_LIMIT` documents the
    sweep): below it the cores are within noise of each other and the
    sparse side avoids the optional ``scipy`` dependency and its cold
    import; above it the float-first path wins by growing factors."""

    name = "auto"

    def __init__(self, limit: int = SPARSE_BACKEND_LIMIT):
        if limit < 1:
            raise LinearSystemError(
                f"auto backend limit must be positive, got {limit}")
        self._limit = limit
        self._sparse = SparseExactBackend()
        self._float = FloatFallbackBackend()

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            arithmetic="hybrid", sparse=True, closed_form=True,
            degeneracy="ambiguity-band-exact-fallback")

    def describe(self) -> BackendDescription:
        return BackendDescription(
            name=self.name, aliases=(),
            summary=f"exact-sparse up to {self._limit} LP columns, "
                    "float-fallback beyond",
            capabilities=self.capabilities(),
            parameters=("limit",))

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True,
              hierarchy: bool = False) -> RoundSolution:
        if hierarchy:
            closed = _closed_form_round(system, positive_indices)
            if closed is not None:
                return closed
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        if len(groups) <= self._limit:
            return self._sparse._solve_grouped(groups, rows)
        return self._float._solve_grouped(groups, rows)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, LpBackend] = {}
_FACTORIES: dict[str, Callable[..., LpBackend]] = {}
_DEPRECATED_ALIASES: dict[str, str] = {}


def register_backend(backend: LpBackend, *aliases: str,
                     factory: Optional[Callable[..., LpBackend]] = None,
                     deprecated_aliases: Optional[dict[str, str]] = None
                     ) -> LpBackend:
    """Register ``backend`` under its ``name`` plus any ``aliases``.

    ``factory`` (optional) enables parameterized ``"name:key=value"``
    specs: it is called with the parsed keyword arguments and must return
    a backend instance.  ``deprecated_aliases`` maps legacy alias names to
    the :class:`DeprecationWarning` message emitted when they resolve.
    """
    for name in (backend.name, *aliases):
        _REGISTRY[name] = backend
    if factory is not None:
        _FACTORIES[backend.name] = factory
    for alias, message in (deprecated_aliases or {}).items():
        _REGISTRY[alias] = backend
        _DEPRECATED_ALIASES[alias] = message
    return backend


def _parse_spec_params(name: str, params: str) -> dict:
    """``"limit=500,flag=true"`` → ``{"limit": 500, "flag": True}``."""
    parsed: dict = {}
    for item in params.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise LinearSystemError(
                f"malformed backend spec parameter {item!r} in "
                f"{name}:{params!r}; expected key=value[,key=value...]")
        if value.lstrip("-").isdigit():
            parsed[key] = int(value)
        elif value.lower() in ("true", "false"):
            parsed[key] = value.lower() == "true"
        else:
            parsed[key] = value
    return parsed


def _unknown_backend(name: str) -> LinearSystemError:
    known = ", ".join(sorted(_REGISTRY))
    return LinearSystemError(
        f"unknown LP backend {name!r}; available: {known}")


def get_backend(backend: "str | LpBackend") -> LpBackend:
    """Resolve a backend selection to an instance.

    Accepts a registry name (``"exact-sparse"``), a parameterized spec
    (``"auto:limit=500"`` — routed to the backend's registered factory),
    or any object implementing the :class:`LpBackend` protocol (passed
    through).  Deprecated aliases resolve with a
    :class:`DeprecationWarning`; unknown names, unparameterizable
    backends, and malformed or rejected parameters raise
    :class:`~repro.core.errors.LinearSystemError`.
    """
    if isinstance(backend, str):
        name, _, params = backend.partition(":")
        if name in _DEPRECATED_ALIASES:
            warnings.warn(_DEPRECATED_ALIASES[name], DeprecationWarning,
                          stacklevel=2)
        if params:
            canonical = _REGISTRY.get(name)
            if canonical is None:
                raise _unknown_backend(name)
            factory = _FACTORIES.get(canonical.name)
            if factory is None:
                raise LinearSystemError(
                    f"LP backend {canonical.name!r} takes no spec "
                    f"parameters (got {backend!r})")
            try:
                return factory(**_parse_spec_params(name, params))
            except TypeError as exc:
                raise LinearSystemError(
                    f"bad parameters for LP backend spec {backend!r}: "
                    f"{exc}") from None
        try:
            return _REGISTRY[name]
        except KeyError:
            raise _unknown_backend(name) from None
    if not isinstance(backend, LpBackend):
        raise LinearSystemError(
            f"object {backend!r} does not implement the LpBackend protocol")
    return backend


def available_backends() -> tuple[BackendDescription, ...]:
    """Every registered backend, described, sorted by canonical name.

    Aliases fold into their canonical entry's ``aliases`` /
    ``deprecated_aliases`` instead of appearing as separate rows (the
    pre-redesign API returned every alias as a bare string).
    """
    by_identity: dict[int, list[str]] = {}
    canonical: dict[int, LpBackend] = {}
    for name, backend in _REGISTRY.items():
        canonical[id(backend)] = backend
        if name != backend.name:
            by_identity.setdefault(id(backend), []).append(name)
    entries = []
    for key, backend in canonical.items():
        description = describe_backend(backend)
        aliases = tuple(sorted(set(by_identity.get(key, ()))
                        | set(description.aliases)))
        deprecated = tuple(sorted(
            alias for alias in aliases if alias in _DEPRECATED_ALIASES))
        entries.append(BackendDescription(
            name=description.name, aliases=aliases,
            summary=description.summary,
            capabilities=description.capabilities,
            parameters=description.parameters,
            deprecated_aliases=deprecated))
    return tuple(sorted(entries, key=lambda entry: entry.name))


register_backend(ExactBackend())
register_backend(SparseExactBackend())
#: ``"float"`` is the historical name of the float-first path; it still
#: resolves, with a DeprecationWarning pointing at ``"float-fallback"``.
register_backend(
    FloatFallbackBackend(),
    deprecated_aliases={
        "float": 'LP backend alias "float" is deprecated; use '
                 '"float-fallback" (e.g. EngineConfig('
                 'lp_backend="float-fallback"))'})
register_backend(AutoBackend(), factory=AutoBackend)
