"""Pluggable LP backends — the arithmetic core of the support computation.

The fixpoint loop of :func:`repro.linear.support.acceptable_support` is pure
bookkeeping (propagation rules, pin log, iteration); what distinguishes a
fast deployment from an authoritative one is the *arithmetic core* that
answers each max-support round.  This module separates the two: a backend is
any object satisfying the :class:`LpBackend` protocol —

    ``solve(system, positive_indices, *, merge_columns=True) -> RoundSolution``

— and backends are registered by name so callers (``acceptable_support``,
:class:`~repro.engine.config.EngineConfig`, the CLI ``--backend`` flag)
select one without importing its implementation.

Registered backends:

* ``"exact"`` — the two-phase rational simplex of
  :mod:`repro.linear.simplex`.  Authoritative: every value is an exact
  :class:`~fractions.Fraction`, so ``x > 0`` vs ``x = 0`` — the distinction
  Theorem 3.3 hinges on — is decided without numerical doubt.
* ``"float-fallback"`` (alias ``"float"``) — tries ``scipy``'s HiGHS solver
  in floating point first, snaps the result to small rationals, and
  re-verifies every disequation exactly.  On degeneracy (values too close to
  zero to classify), verification failure, or an unavailable/failed float
  solve it falls back to the exact simplex, so its verdicts are always
  identical to ``"exact"`` — a property the differential test suite pins.
* ``"auto"`` — ``"exact"`` for small systems (≤ :data:`EXACT_BACKEND_LIMIT`
  LP columns), ``"float-fallback"`` beyond.

All backends return the same :class:`RoundSolution` shape, and because the
maximal acceptable support is *unique* (solutions of the homogeneous system
are closed under addition), any sound backend must produce the same
``supported`` set — only witness values and wall-clock may differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Protocol, Sequence, runtime_checkable

from ..core.errors import LinearSystemError
from .simplex import OPTIMAL, solve_lp
from .system import PsiSystem

__all__ = [
    "LpBackend", "RoundSolution", "register_backend", "get_backend",
    "available_backends", "ExactBackend", "FloatFallbackBackend",
    "AutoBackend", "EXACT_BACKEND_LIMIT",
]

#: Column-count threshold below which ``"auto"`` stays with the exact core.
EXACT_BACKEND_LIMIT = 60


@dataclass(frozen=True)
class RoundSolution:
    """Outcome of one max-support LP round.

    ``values`` maps each candidate unknown to its rational witness value
    (concentrated on one representative per interchangeable group);
    ``supported`` holds the unknowns that can be positive; ``backend_used``
    names the arithmetic core that actually produced the numbers
    (``"exact"``, ``"float"``, or ``"propagation"`` when no LP was needed).
    ``metrics`` carries the round's arithmetic-work counters — ``lp.pivots``
    (exact simplex pivots), ``lp.exact_solves`` / ``lp.float_solves``,
    ``lp.degenerate_detections`` (float values inside the ambiguity band),
    ``lp.float_exact_fallbacks`` (rounds the float path handed to the exact
    core), and ``lp.rationalize_repairs`` (float witnesses repaired by a
    restricted exact re-solve) — which
    :func:`repro.linear.support.acceptable_support` aggregates onto the
    observability bus.
    """

    values: dict[int, Fraction]
    supported: frozenset[int]
    backend_used: str
    metrics: dict[str, int] = field(default_factory=dict)


@runtime_checkable
class LpBackend(Protocol):
    """The protocol every LP backend implements.

    One call answers one max-support round: given ``Ψ_S`` and the indices
    still considered positive candidates, maximize ``Σ t_i`` subject to the
    system, ``t_i ≤ x_i`` and ``t_i ≤ 1``, and report which candidates the
    optimum keeps positive.  Implementations must be *sound and complete*
    for the support question — the unique-maximal-support argument then
    guarantees backend-independent verdicts.
    """

    name: str

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        """Solve one round over the active unknowns."""
        ...


# ----------------------------------------------------------------------
# Shared grouping: interchangeable columns collapse into one LP variable
# ----------------------------------------------------------------------
def grouped_columns(system: PsiSystem, active: Sequence[int],
                    merge_columns: bool = True):
    """Group interchangeable unknowns (identical constraint columns).

    Returns ``(groups, rows)``: ``groups`` is a list of variable-index
    tuples; ``rows`` a list of ``{group_index: coefficient}`` dicts, one per
    constraint that still touches an active unknown.  With
    ``merge_columns=False`` every unknown stays in its own group (the
    ablation baseline).
    """
    active_set = set(active)
    signatures: dict[int, list[tuple[int, Fraction]]] = {v: [] for v in active}
    live_rows = 0
    raw_rows: list[dict[int, Fraction]] = []
    for constraint in system.constraints:
        touched = {var: coeff for var, coeff in constraint.coefficients
                   if var in active_set}
        if not touched:
            continue
        row_index = live_rows
        live_rows += 1
        raw_rows.append(touched)
        for var, coeff in touched.items():
            signatures[var].append((row_index, coeff))

    groups_by_signature: dict[tuple, list[int]] = {}
    unknowns = system.unknowns
    for var in active:
        if not merge_columns or isinstance(unknowns[var], frozenset):
            # Compound-class unknowns stay singleton: the stored witness
            # concentrates each group's value on one representative, and
            # model synthesis needs every supported compound class to carry
            # a positive object count.
            key = ("class", var)
        else:
            key = tuple(signatures[var])
        groups_by_signature.setdefault(key, []).append(var)
    groups = [tuple(members) for members in groups_by_signature.values()]
    group_of = {var: g for g, members in enumerate(groups) for var in members}

    rows: list[dict[int, Fraction]] = []
    for touched in raw_rows:
        row: dict[int, Fraction] = {}
        for var, coeff in touched.items():
            # Identical columns by construction: the group coefficient is the
            # (shared) member coefficient, and the group variable stands for
            # the member sum.
            row[group_of[var]] = coeff
        rows.append(row)
    return groups, rows


def _bump(metrics: Optional[dict[str, int]], name: str, amount: int = 1) -> None:
    if metrics is not None and amount:
        metrics[name] = metrics.get(name, 0) + amount


def _concentrated(groups, values, backend_used: str,
                  metrics: Optional[dict[str, int]] = None) -> RoundSolution:
    """Turn group values into a per-unknown witness and support set.

    Support is a *group* property (identical columns are interchangeable):
    every member of a positive group can be positive.  The stored witness,
    however, concentrates each group's value on one representative — this
    keeps denominators (and hence the integer witness that synthesis scales
    up) small, and is still an acceptable solution because the constraint
    rows only see group sums.
    """
    per_unknown: dict[int, Fraction] = {}
    supported: set[int] = set()
    for members, value in zip(groups, values):
        for var in members:
            per_unknown[var] = Fraction(0)
        if value > 0:
            per_unknown[members[0]] = value
            supported.update(members)
    return RoundSolution(per_unknown, frozenset(supported), backend_used,
                         metrics if metrics is not None else {})


# ----------------------------------------------------------------------
# Exact core
# ----------------------------------------------------------------------
def solve_exact_groups(groups, rows,
                       metrics: Optional[dict[str, int]] = None
                       ) -> list[Fraction]:
    """The max-support LP over grouped columns, solved exactly.

    ``metrics`` (optional) receives ``lp.exact_solves`` and ``lp.pivots``.
    """
    k = len(groups)
    width = 2 * k
    a_ub: list[list[Fraction]] = []
    b_ub: list[Fraction] = []
    for row in rows:
        dense = [Fraction(0)] * width
        for g, coeff in row.items():
            dense[g] = coeff
        a_ub.append(dense)
        b_ub.append(Fraction(0))
    for g in range(k):
        dense = [Fraction(0)] * width
        dense[g] = Fraction(-1)
        dense[k + g] = Fraction(1)
        a_ub.append(dense)            # t_g - x_g ≤ 0
        b_ub.append(Fraction(0))
        dense = [Fraction(0)] * width
        dense[k + g] = Fraction(1)
        a_ub.append(dense)            # t_g ≤ 1
        b_ub.append(Fraction(1))
    objective = [Fraction(0)] * k + [Fraction(1)] * k
    result = solve_lp(objective, a_ub, b_ub, maximize=True)
    _bump(metrics, "lp.exact_solves")
    _bump(metrics, "lp.pivots", result.pivots)
    if result.status != OPTIMAL:
        raise LinearSystemError(
            f"max-support LP ended with status {result.status}; it is "
            "feasible at zero and bounded, this cannot happen")
    return list(result.solution[:k])


class ExactBackend:
    """The exact-Fraction simplex: authoritative, no numerical doubt."""

    name = "exact"

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        metrics: dict[str, int] = {}
        return _concentrated(groups,
                             solve_exact_groups(groups, rows, metrics),
                             self.name, metrics)


# ----------------------------------------------------------------------
# Float-first core with exact fallback
# ----------------------------------------------------------------------
def solve_float_groups(groups, rows) -> Optional[list[float]]:
    """HiGHS solve returning raw float group values, or None on failure."""
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix
    except ImportError:
        return None
    k = len(groups)
    width = 2 * k
    data, row_idx, col_idx = [], [], []
    b_ub = []
    r = 0
    for row in rows:
        for g, coeff in row.items():
            data.append(float(coeff))
            row_idx.append(r)
            col_idx.append(g)
        b_ub.append(0.0)
        r += 1
    for g in range(k):
        data.extend([-1.0, 1.0])
        row_idx.extend([r, r])
        col_idx.extend([g, k + g])
        b_ub.append(0.0)
        r += 1
    a_ub = csr_matrix((data, (row_idx, col_idx)), shape=(r, width))
    c = np.zeros(width)
    c[k:] = -1.0  # maximize Σ t == minimize -Σ t
    bounds = [(0, None)] * k + [(0, 1)] * k
    outcome = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not outcome.success:
        return None
    return [float(outcome.x[g]) for g in range(k)]


def rationalize(values: list[float], max_denominator: int) -> list[Fraction]:
    """Snap float values to nearby small rationals, zeroing solver noise."""
    snapped = []
    for value in values:
        rational = Fraction(value).limit_denominator(max_denominator)
        snapped.append(rational if rational > Fraction(1, 10 ** 7) else Fraction(0))
    return snapped


def verify_rows(rows, values) -> bool:
    """Exact check of ``Σ coeff·x ≤ 0`` for a rational candidate."""
    for row in rows:
        total = Fraction(0)
        for g, coeff in row.items():
            total += coeff * values[g]
        if total > 0:
            return False
    return True


def repair_float_witness(groups, rows, values,
                         metrics: Optional[dict[str, int]] = None
                         ) -> Optional[list[Fraction]]:
    """Try to turn a rationalized float solution into an exact one.

    The rationalized values may violate tight constraints by rounding noise.
    A cheap repair that preserves the support often works: re-solve the
    *exact* LP restricted to the support columns only.  Returns None when
    the repair would be as expensive as the full exact solve.
    """
    support_cols = [g for g, value in enumerate(values) if value > 0]
    if not support_cols or len(support_cols) > EXACT_BACKEND_LIMIT:
        return None
    position = {g: j for j, g in enumerate(support_cols)}
    restricted_rows: list[dict[int, Fraction]] = []
    for row in rows:
        touched = {position[g]: coeff for g, coeff in row.items() if g in position}
        # A dropped column with positive coefficient only relaxes the row,
        # with negative coefficient the row is still valid at zero.
        if touched:
            restricted_rows.append(touched)
    sub_groups = [groups[g] for g in support_cols]
    sub_values = solve_exact_groups(sub_groups, restricted_rows, metrics)
    if any(value <= 0 for value in sub_values):
        return None  # exact disagrees with the float support; caller redoes
    _bump(metrics, "lp.rationalize_repairs")
    repaired = [Fraction(0)] * len(groups)
    for g, value in zip(support_cols, sub_values):
        repaired[g] = value
    return repaired


class FloatFallbackBackend:
    """Float-first arithmetic with an exact safety net.

    The HiGHS optimum is snapped to small rationals and re-verified against
    every disequation *exactly*; only a verified certificate is accepted.
    The exact simplex takes over whenever the float path is unavailable,
    fails, or is **degenerate**: a raw value inside the ambiguity band
    ``(degenerate_low, degenerate_high)`` is too close to zero to classify
    as supported-vs-pinned, the very distinction the method rests on.
    """

    name = "float-fallback"

    #: Raw float values strictly inside this open band are ambiguous.
    degenerate_low = 1e-9
    degenerate_high = 1e-6

    def _degenerate(self, floats: list[float]) -> bool:
        return any(self.degenerate_low < value < self.degenerate_high
                   for value in floats)

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        return self._solve_grouped(groups, rows)

    def _solve_grouped(self, groups, rows) -> RoundSolution:
        metrics: dict[str, int] = {}
        values: Optional[list[Fraction]] = None
        floats = solve_float_groups(groups, rows)
        if floats is not None:
            _bump(metrics, "lp.float_solves")
        if floats is not None and self._degenerate(floats):
            _bump(metrics, "lp.degenerate_detections")
            floats = None
        if floats is not None:
            # Prefer small-denominator rationalizations: they keep the
            # integer witness (and therefore synthesized models) small.
            for max_denominator in (60, 10 ** 4, 10 ** 9):
                candidate = rationalize(floats, max_denominator)
                if verify_rows(rows, candidate):
                    values = candidate
                    break
            if values is None:
                values = repair_float_witness(
                    groups, rows, rationalize(floats, 10 ** 9), metrics)
        if values is None:
            _bump(metrics, "lp.float_exact_fallbacks")
            return _concentrated(groups,
                                 solve_exact_groups(groups, rows, metrics),
                                 "exact", metrics)
        return _concentrated(groups, values, "float", metrics)


class AutoBackend:
    """Pick the core by system size: exact below the column threshold,
    float-fallback (still exactly verified) beyond it."""

    name = "auto"

    def __init__(self, limit: int = EXACT_BACKEND_LIMIT):
        self._limit = limit
        self._exact = ExactBackend()
        self._float = FloatFallbackBackend()

    def solve(self, system: PsiSystem, positive_indices: Sequence[int], *,
              merge_columns: bool = True) -> RoundSolution:
        groups, rows = grouped_columns(system, positive_indices, merge_columns)
        if not groups:
            return RoundSolution({}, frozenset(), "propagation")
        if len(groups) <= self._limit:
            metrics: dict[str, int] = {}
            return _concentrated(groups,
                                 solve_exact_groups(groups, rows, metrics),
                                 "exact", metrics)
        return self._float._solve_grouped(groups, rows)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, LpBackend] = {}


def register_backend(backend: LpBackend, *aliases: str) -> LpBackend:
    """Register ``backend`` under its ``name`` plus any ``aliases``."""
    for name in (backend.name, *aliases):
        _REGISTRY[name] = backend
    return backend


def get_backend(backend: str | LpBackend) -> LpBackend:
    """Resolve a backend by registry name; instances pass through."""
    if isinstance(backend, str):
        try:
            return _REGISTRY[backend]
        except KeyError:
            raise LinearSystemError(
                f"unknown LP backend {backend!r}; "
                f"available: {', '.join(available_backends())}") from None
    if not isinstance(backend, LpBackend):
        raise LinearSystemError(
            f"object {backend!r} does not implement the LpBackend protocol")
    return backend


def available_backends() -> tuple[str, ...]:
    """All registered backend names (including aliases), sorted."""
    return tuple(sorted(_REGISTRY))


register_backend(ExactBackend())
#: ``"float"`` is the historical name of the float-first path; it keeps
#: working as an alias so pre-registry call sites stay valid.
register_backend(FloatFallbackBackend(), "float")
register_backend(AutoBackend())
