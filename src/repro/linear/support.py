"""Maximal acceptable support of ``Ψ_S`` — the engine behind Theorem 3.3.

Theorem 3.3: a class ``Cs`` is satisfiable iff ``Ψ_S`` extended with
``Σ_{C̄ ∋ Cs} Var(C̄) ≥ 1`` admits an **acceptable** integer solution
(acceptable: a compound attribute/relation unknown is zero whenever one of
its endpoint compound-class unknowns is zero).

Because ``Ψ_S`` is homogeneous, its solutions form a cone closed under
addition, and acceptability is preserved by addition too (an endpoint of a
sum is zero iff it is zero in both summands).  Hence a unique **maximal
support** exists: the largest set of unknowns simultaneously positive in
some acceptable solution.  Every satisfiability question reduces to a
membership test against this one support; rational witnesses scale to
integer ones by homogeneity (Theorem 4.3).

The computation:

1. **Combinatorial propagation** — cheap sound rules pin obviously-dead
   unknowns: empty merged intervals, positive lower bounds with no live
   summands, zero upper bounds, upper bounds whose compound class is
   already pinned, and the acceptability rule itself (pin a compound
   attribute/relation when an endpoint is pinned).
2. **Max-support LP** — maximize ``Σ t_i`` subject to ``Ψ_S``,
   ``t_i ≤ x_i``, ``t_i ≤ 1`` over the surviving unknowns, delegated to a
   pluggable :class:`~repro.linear.backends.LpBackend`.  The optimum is
   positive on exactly the supportable unknowns.
3. Pin everything the LP zeroed and repeat until nothing changes.

The LP arithmetic lives behind the backend registry of
:mod:`repro.linear.backends`: ``"exact"`` (the dense rational simplex,
the reference core), ``"exact-sparse"`` (the sparse fraction-free simplex
with the §4.4 hierarchy closed form), ``"float-fallback"`` (HiGHS
float-first with exact re-verification and an exact safety net), and
``"auto"`` (size-based choice).  Because the maximal support is unique,
every sound backend yields the same verdicts — the differential suite in
``tests/test_backends.py`` pins all of them to identical support sets.

When the caller knows the schema is a detected generalization hierarchy it
passes ``hierarchy=True``; the hint is forwarded only to backends whose
declared capabilities include closed-form support, which then answer via
the Section 4.4 construct-and-verify path with zero simplex pivots.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import lcm
from typing import Optional, Sequence

from ..core.cardinality import INFINITY
from ..core.errors import LinearSystemError
from ..expansion.expansion import Expansion
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from .backends import (
    EXACT_BACKEND_LIMIT,
    LpBackend,
    backend_capabilities,
    get_backend,
    grouped_columns,
    rationalize,
    verify_rows,
)
from .simplex import OPTIMAL, solve_lp
from .system import PsiSystem, Unknown, bound_entries, build_system

__all__ = ["SupportResult", "acceptable_support", "minimize_witness", "PinEvent"]


@dataclass(frozen=True)
class PinEvent:
    """Why an unknown was pinned to zero during the support computation.

    ``phase`` is ``"acceptability"`` (an endpoint died first),
    ``"propagation"`` (a cardinality rule refuted it outright), or
    ``"linear"`` (only the LP round could zero it — a global counting
    conflict).  ``reason`` is human-readable; ``round`` the iteration.
    """

    index: int
    phase: str
    reason: str
    round: int


@dataclass(frozen=True)
class SupportResult:
    """The maximal acceptable support of ``Ψ_S`` plus a witness solution.

    ``support`` holds the indices of unknowns that can be positive in an
    acceptable solution; ``solution`` maps every unknown index to its
    rational witness value.  The witness is an acceptable solution positive
    on every supported compound-class unknown; for interchangeable compound
    attributes/relations (identical constraint columns) it concentrates the
    group's value on one representative, keeping denominators small.
    ``rounds`` counts propagation/LP iterations; ``backend_used`` records
    which LP backend produced the final witness; ``pin_log`` the reason each
    pinned unknown was excluded (consumed by unsatisfiability explanations).
    """

    system: PsiSystem
    support: frozenset[int]
    solution: dict[int, Fraction]
    rounds: int
    backend_used: str
    pin_log: tuple[PinEvent, ...] = ()

    def pin_events_for(self, unknown: Unknown) -> list[PinEvent]:
        """The recorded reasons a given unknown was pinned (possibly empty)."""
        index = self.system.index_of(unknown)
        return [event for event in self.pin_log if event.index == index]

    def is_supported(self, unknown: Unknown) -> bool:
        return self.system.index_of(unknown) in self.support

    def supported_compound_classes(self) -> list[frozenset]:
        """Compound classes that can be simultaneously nonempty."""
        return [unknown for i, unknown in enumerate(self.system.unknowns)
                if i in self.support and isinstance(unknown, frozenset)]

    def integer_solution(self, scale: int = 1) -> dict[int, int]:
        """An integer witness: clear denominators, then multiply by ``scale``.

        Homogeneity of ``Ψ_S`` makes any positive multiple a solution again
        (the integrality argument of Theorem 4.3).
        """
        if scale < 1:
            raise LinearSystemError(f"scale must be positive, got {scale}")
        denominators = [value.denominator for value in self.solution.values()] or [1]
        factor = lcm(*denominators) * scale
        return {index: int(value * factor) for index, value in self.solution.items()}


# ----------------------------------------------------------------------
# Combinatorial propagation
# ----------------------------------------------------------------------
def _propagate(system: PsiSystem, active: set[int], entries,
               log: list, round_number: int) -> bool:
    """One pass of the sound pinning rules; returns True when ``active``
    shrank.  Every pin is recorded in ``log`` for explanations."""
    changed = False

    def pin(index: int, phase: str, reason: str) -> None:
        nonlocal changed
        active.discard(index)
        log.append(PinEvent(index, phase, reason, round_number))
        changed = True

    # Acceptability: an endpoint outside `active` kills the compound.
    for index in list(active):
        if any(endpoint not in active for endpoint in system.endpoints_of(index)):
            pin(index, "acceptability",
                "an endpoint compound class cannot be populated")
    for class_index, summands, card, origin in entries:
        live = [s for s in summands if s in active]
        if class_index in active:
            if card.is_empty():
                pin(class_index, "propagation",
                    f"merged cardinality interval {card} is empty [{origin}]")
                continue
            if card.lower >= 1 and not live:
                pin(class_index, "propagation",
                    f"lower bound {card.lower} but no possible partner "
                    f"[{origin}]")
                continue
        if card.upper is not INFINITY:
            # S ≤ upper · Var(C̄): a pinned class or a zero upper bound
            # forces every summand to zero.
            if card.upper == 0 or class_index not in active:
                for s in live:
                    pin(s, "propagation",
                        f"upper bound forces zero links [{origin}]")
    return changed


# ----------------------------------------------------------------------
# Witness minimization (model-synthesis support)
# ----------------------------------------------------------------------
def minimize_witness(result: "SupportResult",
                     merge_columns: bool = True) -> Optional[dict[int, Fraction]]:
    """Public wrapper: a small acceptable witness over ``result.support``."""
    per_unknown = _minimized_witness(result.system, sorted(result.support),
                                     merge_columns)
    if per_unknown is None:
        return None
    return {index: per_unknown.get(index, Fraction(0))
            for index in range(result.system.n_unknowns())}


def _minimized_witness(system: PsiSystem, active: list[int],
                       merge_columns: bool) -> Optional[dict[int, Fraction]]:
    """A small acceptable witness: minimize total mass subject to ``Ψ_S``
    and ``x ≥ 1`` on every supported compound-class unknown.

    The max-support LP certifies *which* unknowns can be positive but its
    vertex can carry large values; model synthesis scales with them, so a
    dedicated minimization pass keeps synthesized databases small.  Returns
    None when no small exact certificate could be produced (the caller then
    keeps the max-support witness).
    """
    groups, rows = grouped_columns(system, active, merge_columns)
    if not groups:
        return {}
    unknowns = system.unknowns
    is_class_group = [isinstance(unknowns[members[0]], frozenset)
                      for members in groups]

    lower_rows: list[dict[int, Fraction]] = []
    for g, is_class in enumerate(is_class_group):
        if is_class:
            lower_rows.append({g: Fraction(-1)})  # -x_g ≤ -1

    values: Optional[list[Fraction]] = None
    floats = _solve_float_min(groups, rows, lower_rows)
    if floats is not None:
        for max_denominator in (60, 10 ** 4, 10 ** 9):
            candidate = rationalize(floats, max_denominator)
            if (verify_rows(rows, candidate)
                    and all(candidate[g] >= 1
                            for g, c in enumerate(is_class_group) if c)):
                values = candidate
                break
    if values is None and len(groups) <= EXACT_BACKEND_LIMIT:
        k = len(groups)
        a_ub: list[list[Fraction]] = []
        b_ub: list[Fraction] = []
        for row in rows:
            dense = [Fraction(0)] * k
            for g, coeff in row.items():
                dense[g] = coeff
            a_ub.append(dense)
            b_ub.append(Fraction(0))
        for row in lower_rows:
            dense = [Fraction(0)] * k
            for g, coeff in row.items():
                dense[g] = coeff
            a_ub.append(dense)
            b_ub.append(Fraction(-1))
        outcome = solve_lp([Fraction(1)] * k, a_ub, b_ub, maximize=False)
        if outcome.status == OPTIMAL:
            values = list(outcome.solution)
    if values is None:
        return None

    per_unknown: dict[int, Fraction] = {}
    for members, value in zip(groups, values):
        for var in members:
            per_unknown[var] = Fraction(0)
        if value > 0:
            per_unknown[members[0]] = value
    return per_unknown


def _solve_float_min(groups, rows, lower_rows) -> Optional[list[float]]:
    """HiGHS: minimize Σ x subject to the grouped rows plus lower rows."""
    try:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix
    except ImportError:
        return None
    k = len(groups)
    data, row_idx, col_idx = [], [], []
    r = 0
    for row in list(rows) + list(lower_rows):
        for g, coeff in row.items():
            data.append(float(coeff))
            row_idx.append(r)
            col_idx.append(g)
        r += 1
    b_ub = [0.0] * len(rows) + [-1.0] * len(lower_rows)
    a_ub = csr_matrix((data, (row_idx, col_idx)), shape=(r, k))
    outcome = linprog(np.ones(k), A_ub=a_ub, b_ub=b_ub,
                      bounds=[(0, None)] * k, method="highs")
    if not outcome.success:
        return None
    return [float(outcome.x[g]) for g in range(k)]


# ----------------------------------------------------------------------
# The fixpoint loop
# ----------------------------------------------------------------------
def acceptable_support(source: Expansion | PsiSystem,
                       backend: str | LpBackend = "auto", *,
                       use_propagation: bool = True,
                       merge_columns: bool = True,
                       restrict_to: Optional[Sequence[int]] = None,
                       hierarchy: bool = False,
                       tracer: "Tracer | NullTracer" = NULL_TRACER
                       ) -> SupportResult:
    """Compute the maximal acceptable support of ``Ψ_S``.

    Accepts either an :class:`Expansion` (the system is built on the fly) or
    a prebuilt :class:`PsiSystem`.  ``backend`` selects the LP arithmetic
    core by registry name or parameterized spec — ``"auto"`` (default),
    ``"exact"``, ``"exact-sparse"``, ``"float-fallback"``,
    ``"auto:limit=500"`` — or may be any object implementing the
    :class:`~repro.linear.backends.LpBackend` protocol.

    ``hierarchy`` asserts the source schema was detected as a
    generalization hierarchy (Section 4.4).  Backends whose capabilities
    declare closed-form support then construct the witness directly and
    verify it exactly instead of running the simplex; the hint is never
    forwarded to backends without that capability, and a failed
    construction silently falls back to the LP, so it can only skip work,
    never change a verdict.

    ``use_propagation`` and ``merge_columns`` disable the two engineering
    optimizations (combinatorial pre-pinning and interchangeable-column
    merging); they exist for the ablation benchmarks and must never change
    the result — a property the test suite asserts.

    ``restrict_to`` limits the computation to a subset of unknown indices,
    treating every other unknown as pinned to zero from the start.  It is
    only sound when the restriction is closed under constraint rows and
    acceptability edges (no constraint or endpoint couples an inside
    unknown to an outside one) — the delta-revalidation path passes whole
    connected components of ``Ψ_S`` here, recombining the result with
    reused verdicts for the untouched components.

    ``tracer`` receives the LP work counters: ``lp.rounds`` (fixpoint
    iterations), each round's :attr:`RoundSolution.metrics
    <repro.linear.backends.RoundSolution.metrics>` (the documented
    :data:`~repro.linear.backends.METRIC_KEYS` schema — ``lp.pivots``,
    ``lp.exact_solves``, ``lp.sparse_solves``, ``lp.float_solves``,
    ``lp.hierarchy_closed_form``, ``lp.degenerate_detections``,
    ``lp.float_exact_fallbacks``, ``lp.rationalize_repairs``), and the pin
    tallies ``support.pins_acceptability`` / ``support.pins_propagation`` /
    ``support.pins_linear``.
    """
    lp = get_backend(backend)
    forward_hierarchy = hierarchy and backend_capabilities(lp).closed_form
    system = source if isinstance(source, PsiSystem) else build_system(source)
    entries = bound_entries(system)
    if restrict_to is None:
        active = set(range(system.n_unknowns()))
    else:
        active = set(restrict_to)
    rounds = 0
    backend_used = "propagation"
    values: dict[int, Fraction] = {}
    log: list[PinEvent] = []
    while True:
        rounds += 1
        if use_propagation:
            while _propagate(system, active, entries, log, rounds):
                pass
        if forward_hierarchy:
            solution = lp.solve(system, sorted(active),
                                merge_columns=merge_columns, hierarchy=True)
        else:
            solution = lp.solve(system, sorted(active),
                                merge_columns=merge_columns)
        for name, amount in solution.metrics.items():
            tracer.add(name, amount)
        values, support, backend_used = (solution.values,
                                         set(solution.supported),
                                         solution.backend_used)
        if support == active:
            break
        for index in sorted(active - support):
            log.append(PinEvent(
                index, "linear",
                "the system of disequations admits no acceptable solution "
                "with this unknown positive (a global counting conflict)",
                rounds))
        active = support
        if not active:
            break
    tracer.add("lp.rounds", rounds)
    if log:
        tally: dict[str, int] = {}
        for event in log:
            tally[event.phase] = tally.get(event.phase, 0) + 1
        for phase, count in tally.items():
            tracer.add(f"support.pins_{phase}", count)
    full_solution = {index: values.get(index, Fraction(0))
                     for index in range(system.n_unknowns())}
    return SupportResult(system, frozenset(active), full_solution, rounds,
                         backend_used, tuple(log))
