"""Model checking: does an interpretation satisfy a CAR schema?

Implements the satisfaction conditions of Section 2.3 verbatim:

* class definitions — isa containment, attribute filler types and link-count
  bounds (for direct and inverse references), participation-count bounds;
* relation definitions — role arity of every tuple and at least one satisfied
  role-literal per role-clause.

:func:`check_model` returns a list of :class:`Violation` diagnostics (empty
iff the interpretation is a model), and :func:`is_model` the boolean view.
The checker is deliberately independent from the reasoner so it can serve as
an oracle in tests and as the safety net behind model synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.schema import ClassDef, RelationDef, Schema
from .interpretation import Interpretation, LabeledTuple

__all__ = ["Violation", "check_model", "is_model", "check_class_definition",
           "check_relation_definition"]

Obj = Hashable


@dataclass(frozen=True, slots=True)
class Violation:
    """One failed satisfaction condition.

    ``kind`` is a stable machine-readable tag; ``subject`` names the
    definition that failed; ``detail`` is a human-readable account naming the
    offending object or tuple.
    """

    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


def check_class_definition(interp: Interpretation, cdef: ClassDef) -> list[Violation]:
    """All violations of one class definition in ``interp``."""
    violations: list[Violation] = []
    instances = interp.class_ext(cdef.name)

    for obj in instances:
        if not interp.satisfies_formula(obj, cdef.isa):
            violations.append(Violation(
                "isa", cdef.name,
                f"instance {obj!r} is not an instance of isa-formula {cdef.isa}",
            ))

    for spec in cdef.attributes:
        for obj in instances:
            fillers = interp.attr_fillers(spec.ref, obj)
            for filler in fillers:
                if not interp.satisfies_formula(filler, spec.filler):
                    violations.append(Violation(
                        "attribute-type", cdef.name,
                        f"{spec.ref}-filler {filler!r} of instance {obj!r} "
                        f"is not an instance of {spec.filler}",
                    ))
            count = interp.attr_link_count(spec.ref, obj)
            if not spec.card.contains(count):
                violations.append(Violation(
                    "attribute-cardinality", cdef.name,
                    f"instance {obj!r} has {count} {spec.ref}-links, "
                    f"outside {spec.card}",
                ))

    for spec in cdef.participates:
        for obj in instances:
            count = interp.participation_count(spec.relation, spec.role, obj)
            if not spec.card.contains(count):
                violations.append(Violation(
                    "participation-cardinality", cdef.name,
                    f"instance {obj!r} occurs in {count} tuples of "
                    f"{spec.relation}[{spec.role}], outside {spec.card}",
                ))

    return violations


def check_relation_definition(interp: Interpretation,
                              rdef: RelationDef) -> list[Violation]:
    """All violations of one relation definition in ``interp``."""
    violations: list[Violation] = []
    declared = frozenset(rdef.roles)

    for tup in interp.relation_ext(rdef.name):
        if tup.roles() != declared:
            violations.append(Violation(
                "relation-arity", rdef.name,
                f"tuple {tup} does not assign exactly the roles {sorted(declared)}",
            ))
            continue
        for clause in rdef.constraints:
            if not _tuple_satisfies_clause(interp, tup, clause):
                violations.append(Violation(
                    "role-clause", rdef.name,
                    f"tuple {tup} satisfies no role-literal of clause {clause}",
                ))

    return violations


def _tuple_satisfies_clause(interp: Interpretation, tup: LabeledTuple,
                            clause) -> bool:
    return any(
        interp.satisfies_formula(tup[lit.role], lit.formula) for lit in clause
    )


def check_model(interp: Interpretation, schema: Schema) -> list[Violation]:
    """Every violated satisfaction condition of ``schema`` in ``interp``.

    An empty result means ``interp`` is a model (a legal database state).
    """
    violations: list[Violation] = []
    for cdef in schema.class_definitions:
        violations.extend(check_class_definition(interp, cdef))
    for rdef in schema.relation_definitions:
        violations.extend(check_relation_definition(interp, rdef))
    return violations


def is_model(interp: Interpretation, schema: Schema) -> bool:
    """True iff ``interp`` satisfies every definition of ``schema``."""
    return not check_model(interp, schema)
