"""Interpretations: finite database states for a CAR schema.

An interpretation ``I = (Δ, ·^I)`` (Section 2.3) consists of a nonempty
finite universe ``Δ`` and an interpretation function mapping every class to a
subset of ``Δ``, every attribute to a set of pairs over ``Δ``, and every
relation to a set of **labeled tuples** over ``Δ``.

The objects in the universe can be any hashable Python values; examples and
the model synthesizer use small integers or descriptive strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Hashable, Iterable, Mapping

from ..core.errors import SemanticsError
from ..core.formulas import Formula
from ..core.schema import AttrRef, Schema

__all__ = ["LabeledTuple", "Interpretation"]

Obj = Hashable


@dataclass(frozen=True, slots=True)
class LabeledTuple:
    """A labeled tuple ``⟨U1: o1, …, UK: oK⟩``: a function from roles to objects.

    Stored as a canonical sorted tuple of ``(role, object)`` pairs so that
    labeled tuples are hashable and compare structurally (relations are *sets*
    of labeled tuples, so duplicates collapse).
    """

    items: tuple[tuple[str, Obj], ...]

    def __init__(self, assignment: Mapping[str, Obj] | Iterable[tuple[str, Obj]]):
        if isinstance(assignment, Mapping):
            pairs = tuple(sorted(assignment.items()))
        else:
            pairs = tuple(sorted(assignment))
        roles = [role for role, _ in pairs]
        if len(roles) != len(set(roles)):
            raise SemanticsError(f"labeled tuple assigns a role twice: {pairs!r}")
        if not pairs:
            raise SemanticsError("labeled tuple must assign at least one role")
        object.__setattr__(self, "items", pairs)

    def __getitem__(self, role: str) -> Obj:
        """The value ``t[U]`` associated with the ``U``-component."""
        for name, obj in self.items:
            if name == role:
                return obj
        raise KeyError(role)

    def roles(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.items)

    def objects(self) -> tuple[Obj, ...]:
        return tuple(obj for _, obj in self.items)

    def as_dict(self) -> dict[str, Obj]:
        return dict(self.items)

    def __str__(self) -> str:
        inner = ", ".join(f"{role}: {obj!r}" for role, obj in self.items)
        return f"<{inner}>"


class Interpretation:
    """A finite database state.

    Parameters
    ----------
    universe:
        Nonempty finite iterable of hashable objects (``Δ``).
    classes:
        Mapping from class symbol to the set of its instances.
    attributes:
        Mapping from attribute symbol to a set of ``(source, target)`` pairs.
    relations:
        Mapping from relation symbol to a set of :class:`LabeledTuple`.

    All extensions are checked to stay inside the universe.  Symbols not
    mentioned get the empty extension, matching the paper's observation that
    the everything-empty interpretation satisfies every schema.
    """

    def __init__(self, universe: Iterable[Obj],
                 classes: Mapping[str, AbstractSet[Obj]] | None = None,
                 attributes: Mapping[str, AbstractSet[tuple[Obj, Obj]]] | None = None,
                 relations: Mapping[str, AbstractSet[LabeledTuple]] | None = None):
        self._universe = frozenset(universe)
        if not self._universe:
            raise SemanticsError("the universe of an interpretation must be nonempty")
        self._classes = {name: frozenset(ext) for name, ext in (classes or {}).items()}
        self._attributes = {
            name: frozenset(ext) for name, ext in (attributes or {}).items()
        }
        self._relations = {
            name: frozenset(ext) for name, ext in (relations or {}).items()
        }
        self._check_containment()

    def _check_containment(self) -> None:
        for name, ext in self._classes.items():
            stray = ext - self._universe
            if stray:
                raise SemanticsError(
                    f"class {name} contains objects outside the universe: {sorted(map(repr, stray))}"
                )
        for name, ext in self._attributes.items():
            for pair in ext:
                if not (isinstance(pair, tuple) and len(pair) == 2):
                    raise SemanticsError(f"attribute {name} extension must hold pairs, got {pair!r}")
                if pair[0] not in self._universe or pair[1] not in self._universe:
                    raise SemanticsError(
                        f"attribute {name} pair {pair!r} leaves the universe"
                    )
        for name, ext in self._relations.items():
            for tup in ext:
                if not isinstance(tup, LabeledTuple):
                    raise SemanticsError(
                        f"relation {name} extension must hold LabeledTuple, got {tup!r}"
                    )
                for obj in tup.objects():
                    if obj not in self._universe:
                        raise SemanticsError(
                            f"relation {name} tuple {tup} leaves the universe"
                        )

    # ------------------------------------------------------------------
    # Extensions
    # ------------------------------------------------------------------
    @property
    def universe(self) -> frozenset[Obj]:
        return self._universe

    def class_ext(self, name: str) -> frozenset[Obj]:
        """``C^I`` — empty for symbols the interpretation does not mention."""
        return self._classes.get(name, frozenset())

    def attribute_ext(self, name: str) -> frozenset[tuple[Obj, Obj]]:
        """``A^I`` as a set of ``(source, target)`` pairs."""
        return self._attributes.get(name, frozenset())

    def attr_ref_ext(self, ref: AttrRef) -> frozenset[tuple[Obj, Obj]]:
        """``att^I`` for a direct or inverse attribute reference.

        The inverse extension is ``{(a, b) | (b, a) ∈ A^I}`` (Section 2.3).
        """
        ext = self.attribute_ext(ref.name)
        if ref.inverse:
            return frozenset((b, a) for a, b in ext)
        return ext

    def relation_ext(self, name: str) -> frozenset[LabeledTuple]:
        """``R^I`` as a set of labeled tuples."""
        return self._relations.get(name, frozenset())

    def mentioned_classes(self) -> frozenset[str]:
        return frozenset(self._classes)

    def mentioned_attributes(self) -> frozenset[str]:
        return frozenset(self._attributes)

    def mentioned_relations(self) -> frozenset[str]:
        return frozenset(self._relations)

    # ------------------------------------------------------------------
    # Formula evaluation
    # ------------------------------------------------------------------
    def classes_of(self, obj: Obj) -> frozenset[str]:
        """The set of class symbols whose extension contains ``obj``."""
        return frozenset(name for name, ext in self._classes.items() if obj in ext)

    def satisfies_formula(self, obj: Obj, formula: Formula) -> bool:
        """``obj ∈ F^I`` for a class-formula ``F`` (inductive semantics)."""
        return formula.satisfied_by(self.classes_of(obj))

    def formula_ext(self, formula: Formula) -> frozenset[Obj]:
        """``F^I`` — the extension of a class-formula."""
        return frozenset(
            obj for obj in self._universe if self.satisfies_formula(obj, formula)
        )

    # ------------------------------------------------------------------
    # Link counting (used by the model checker)
    # ------------------------------------------------------------------
    def attr_link_count(self, ref: AttrRef, obj: Obj) -> int:
        """Number of pairs ``(obj, _)`` in ``att^I`` (Section 2.3's count)."""
        if ref.inverse:
            return sum(1 for _, b in self.attribute_ext(ref.name) if b == obj)
        return sum(1 for a, _ in self.attribute_ext(ref.name) if a == obj)

    def attr_fillers(self, ref: AttrRef, obj: Obj) -> frozenset[Obj]:
        """Objects reachable from ``obj`` through ``ref``."""
        if ref.inverse:
            return frozenset(a for a, b in self.attribute_ext(ref.name) if b == obj)
        return frozenset(b for a, b in self.attribute_ext(ref.name) if a == obj)

    def participation_count(self, relation: str, role: str, obj: Obj) -> int:
        """Number of tuples ``r ∈ R^I`` with ``r[role] = obj``."""
        count = 0
        for tup in self.relation_ext(relation):
            try:
                value = tup[role]
            except KeyError:
                continue
            if value == obj:
                count += 1
        return count

    # ------------------------------------------------------------------
    @classmethod
    def empty_over(cls, universe: Iterable[Obj]) -> "Interpretation":
        """The interpretation assigning every symbol the empty extension."""
        return cls(universe)

    def summary(self) -> str:
        """A short human-readable account of the database state."""
        lines = [f"universe: {len(self._universe)} objects"]
        for name in sorted(self._classes):
            lines.append(f"  class {name}: {len(self._classes[name])} instances")
        for name in sorted(self._attributes):
            lines.append(f"  attribute {name}: {len(self._attributes[name])} pairs")
        for name in sorted(self._relations):
            lines.append(f"  relation {name}: {len(self._relations[name])} tuples")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Interpretation(|Δ|={len(self._universe)}, "
                f"{len(self._classes)} classes, {len(self._attributes)} attributes, "
                f"{len(self._relations)} relations)")


def restrict_to_schema(interp: Interpretation, schema: Schema) -> Interpretation:
    """Drop extensions of symbols that do not occur in ``schema``.

    Handy when reusing a synthesized model after schema edits.
    """
    return Interpretation(
        interp.universe,
        {n: interp.class_ext(n) for n in interp.mentioned_classes()
         if n in schema.class_symbols},
        {n: interp.attribute_ext(n) for n in interp.mentioned_attributes()
         if n in schema.attribute_symbols},
        {n: interp.relation_ext(n) for n in interp.mentioned_relations()
         if n in schema.relation_symbols},
    )


__all__ += ["restrict_to_schema"]
