"""Formal semantics of CAR: interpretations, model checking, brute force."""

from .bruteforce import BruteForceBudget, brute_force_find_model, brute_force_satisfiable
from .database import Database, IntegrityError
from .checker import (
    Violation,
    check_class_definition,
    check_model,
    check_relation_definition,
    is_model,
)
from .interpretation import Interpretation, LabeledTuple, restrict_to_schema
from .query import ObjectSet, objects

__all__ = [
    "BruteForceBudget", "brute_force_find_model", "brute_force_satisfiable",
    "Database", "IntegrityError",
    "Violation", "check_class_definition", "check_model",
    "check_relation_definition", "is_model",
    "Interpretation", "LabeledTuple", "restrict_to_schema",
    "ObjectSet", "objects",
]
