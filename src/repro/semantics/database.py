"""An incremental in-memory instance store governed by a CAR schema.

:class:`Database` is the "legal database state" of Section 2.3 made
operational: objects, attribute links, and relation tuples are inserted and
removed incrementally, and integrity is enforced transactionally — a
transaction that would leave the state violating any satisfaction condition
of the schema rolls back with an :class:`IntegrityError` listing the
violations.

Beyond storage, the store answers the type-inference questions the paper
lists as applications of schema reasoning:

* :meth:`Database.implied_classes` — classes an object *must* also belong
  to in any completion of the state (from the supported compound classes);
* :meth:`Database.admissible_classes` — classes an object could still be
  added to without making its membership combination unsatisfiable.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable, Iterator, Optional

from ..core.errors import SemanticsError
from ..core.schema import Schema
from .checker import Violation, check_model
from .interpretation import Interpretation, LabeledTuple

__all__ = ["Database", "IntegrityError"]

Obj = Hashable


class IntegrityError(SemanticsError):
    """A transaction would violate the schema; carries the violations."""

    def __init__(self, violations: list[Violation]):
        lines = "\n  ".join(str(v) for v in violations[:8])
        more = "" if len(violations) <= 8 else f"\n  … {len(violations) - 8} more"
        super().__init__(f"transaction violates the schema:\n  {lines}{more}")
        self.violations = tuple(violations)


class Database:
    """A mutable database state validated against a CAR schema."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._objects: set[Obj] = set()
        self._classes: dict[str, set[Obj]] = {}
        self._attributes: dict[str, set[tuple[Obj, Obj]]] = {}
        self._relations: dict[str, set[LabeledTuple]] = {}
        self._in_transaction = False
        self._supported_compounds: Optional[list[frozenset]] = None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, obj: Obj, *classes: str) -> Obj:
        """Add an object, optionally into the given classes."""
        self._objects.add(obj)
        for name in classes:
            self.add_to_class(obj, name)
        return obj

    def delete(self, obj: Obj) -> None:
        """Remove an object and every link/tuple that touches it."""
        if obj not in self._objects:
            raise SemanticsError(f"object {obj!r} is not in the database")
        self._objects.discard(obj)
        for ext in self._classes.values():
            ext.discard(obj)
        for name, pairs in self._attributes.items():
            self._attributes[name] = {
                p for p in pairs if obj not in (p[0], p[1])}
        for name, tuples in self._relations.items():
            self._relations[name] = {
                t for t in tuples if obj not in t.objects()}

    def add_to_class(self, obj: Obj, name: str) -> None:
        if name not in self._schema.class_symbols:
            raise SemanticsError(f"class {name!r} is not in the schema")
        if obj not in self._objects:
            raise SemanticsError(f"object {obj!r} is not in the database")
        self._classes.setdefault(name, set()).add(obj)

    def remove_from_class(self, obj: Obj, name: str) -> None:
        self._classes.get(name, set()).discard(obj)

    def set_attribute(self, attr: str, source: Obj, target: Obj) -> None:
        """Add the pair ``(source, target)`` to the attribute's extension."""
        if attr not in self._schema.attribute_symbols:
            raise SemanticsError(f"attribute {attr!r} is not in the schema")
        for obj in (source, target):
            if obj not in self._objects:
                raise SemanticsError(f"object {obj!r} is not in the database")
        self._attributes.setdefault(attr, set()).add((source, target))

    def unset_attribute(self, attr: str, source: Obj, target: Obj) -> None:
        self._attributes.get(attr, set()).discard((source, target))

    def add_tuple(self, relation: str, **assignment: Obj) -> LabeledTuple:
        """Add a labeled tuple to a relation's extension."""
        rdef = self._schema.relation(relation)
        if set(assignment) != set(rdef.roles):
            raise SemanticsError(
                f"relation {relation} needs exactly roles {list(rdef.roles)}, "
                f"got {sorted(assignment)}")
        for obj in assignment.values():
            if obj not in self._objects:
                raise SemanticsError(f"object {obj!r} is not in the database")
        tup = LabeledTuple(assignment)
        self._relations.setdefault(relation, set()).add(tup)
        return tup

    def remove_tuple(self, relation: str, **assignment: Obj) -> None:
        self._relations.get(relation, set()).discard(LabeledTuple(assignment))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def snapshot(self) -> Interpretation:
        """The current state as an immutable interpretation."""
        universe = self._objects or {object()}
        return Interpretation(
            universe,
            {name: frozenset(ext) for name, ext in self._classes.items()},
            {name: frozenset(ext) for name, ext in self._attributes.items()},
            {name: frozenset(ext) for name, ext in self._relations.items()},
        )

    def violations(self) -> list[Violation]:
        """Every satisfaction condition the current state violates."""
        if not self._objects:
            return []
        return check_model(self.snapshot(), self._schema)

    def is_consistent(self) -> bool:
        return not self.violations()

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """All-or-nothing mutation scope.

        On exit the state is validated; violations roll everything back and
        raise :class:`IntegrityError`.  Transactions do not nest.
        """
        if self._in_transaction:
            raise SemanticsError("transactions do not nest")
        saved = (set(self._objects),
                 {k: set(v) for k, v in self._classes.items()},
                 {k: set(v) for k, v in self._attributes.items()},
                 {k: set(v) for k, v in self._relations.items()})
        self._in_transaction = True
        try:
            yield self
            found = self.violations()
            if found:
                raise IntegrityError(found)
        except BaseException:
            self._objects, self._classes, self._attributes, self._relations = saved
            raise
        finally:
            self._in_transaction = False

    # ------------------------------------------------------------------
    # Type inference (applications named in Section 2.3)
    # ------------------------------------------------------------------
    def _compounds(self) -> list[frozenset]:
        if self._supported_compounds is None:
            from ..reasoner.satisfiability import Reasoner

            reasoner = Reasoner(self._schema)
            self._supported_compounds = reasoner.supported_compound_classes()
        return self._supported_compounds

    def classes_of(self, obj: Obj) -> frozenset[str]:
        return frozenset(name for name, ext in self._classes.items()
                         if obj in ext)

    def implied_classes(self, obj: Obj) -> frozenset[str]:
        """Classes the object must belong to in any legal completion.

        Intersection of the supported compound classes extending its current
        memberships; empty when the current combination is unsatisfiable.
        """
        current = self.classes_of(obj)
        candidates = [members for members in self._compounds()
                      if current <= members]
        if not candidates:
            return frozenset()
        implied = frozenset.intersection(*map(frozenset, candidates))
        return frozenset(implied) - current

    def admissible_classes(self, obj: Obj) -> frozenset[str]:
        """Classes the object could still join without refuting its type."""
        current = self.classes_of(obj)
        admissible: set[str] = set()
        for members in self._compounds():
            if current <= members:
                admissible.update(members)
        return frozenset(admissible) - current

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: Obj) -> bool:
        return obj in self._objects

    def __repr__(self) -> str:
        return (f"Database({len(self._objects)} objects, "
                f"{sum(map(len, self._classes.values()))} memberships, "
                f"{sum(map(len, self._attributes.values()))} links, "
                f"{sum(map(len, self._relations.values()))} tuples)")
