"""Navigational queries over database states.

A tiny, composable query layer for interpretations — the consumer side of
synthesized models and :class:`~repro.semantics.database.Database`
snapshots.  Queries are object-set pipelines::

    from repro.semantics.query import objects

    heavy_teachers = (objects(interp)
                      .where(parse_formula("Professor"))
                      .having_links(inv("taught_by"), at_least=2))
    their_courses = heavy_teachers.follow(inv("taught_by"))
    buyers = objects(interp).partners("Order_Line", at="item", to="buyer")

Every step returns a new immutable :class:`ObjectSet`; nothing mutates the
underlying interpretation.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Optional

from ..core.errors import SemanticsError
from ..core.formulas import FormulaLike, as_formula
from ..core.schema import AttrRef
from .interpretation import Interpretation

__all__ = ["ObjectSet", "objects"]

Obj = Hashable


class ObjectSet:
    """An immutable set of objects of one interpretation, with pipeline
    operators for filtering and link navigation."""

    def __init__(self, interp: Interpretation, members: Iterable[Obj]):
        self._interp = interp
        self._members = frozenset(members)
        stray = self._members - interp.universe
        if stray:
            raise SemanticsError(
                f"objects outside the universe: {sorted(map(repr, stray))}")

    # ------------------------------------------------------------------
    # Set behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Obj]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, obj: Obj) -> bool:
        return obj in self._members

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectSet):
            return (self._interp is other._interp
                    and self._members == other._members)
        return NotImplemented

    def __hash__(self):
        return hash(self._members)

    def to_set(self) -> frozenset[Obj]:
        return self._members

    def _derive(self, members: Iterable[Obj]) -> "ObjectSet":
        return ObjectSet(self._interp, members)

    def union(self, other: "ObjectSet") -> "ObjectSet":
        self._check_same_state(other)
        return self._derive(self._members | other._members)

    def intersect(self, other: "ObjectSet") -> "ObjectSet":
        self._check_same_state(other)
        return self._derive(self._members & other._members)

    def minus(self, other: "ObjectSet") -> "ObjectSet":
        self._check_same_state(other)
        return self._derive(self._members - other._members)

    def _check_same_state(self, other: "ObjectSet") -> None:
        if self._interp is not other._interp:
            raise SemanticsError(
                "cannot combine object sets over different interpretations")

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def where(self, formula: FormulaLike) -> "ObjectSet":
        """Keep the objects satisfying a class-formula."""
        formula = as_formula(formula)
        return self._derive(
            obj for obj in self._members
            if self._interp.satisfies_formula(obj, formula))

    def where_not(self, formula: FormulaLike) -> "ObjectSet":
        """Drop the objects satisfying a class-formula."""
        formula = as_formula(formula)
        return self._derive(
            obj for obj in self._members
            if not self._interp.satisfies_formula(obj, formula))

    def filter(self, predicate: Callable[[Obj], bool]) -> "ObjectSet":
        """Keep the objects a Python predicate accepts."""
        return self._derive(obj for obj in self._members if predicate(obj))

    def having_links(self, ref: AttrRef, *, at_least: int = 1,
                     at_most: Optional[int] = None) -> "ObjectSet":
        """Keep objects whose ``ref`` link count falls in the given range."""
        def accepts(obj: Obj) -> bool:
            count = self._interp.attr_link_count(ref, obj)
            if count < at_least:
                return False
            return at_most is None or count <= at_most

        return self._derive(obj for obj in self._members if accepts(obj))

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def follow(self, ref: AttrRef) -> "ObjectSet":
        """All ``ref``-fillers of the current objects (one hop)."""
        result: set[Obj] = set()
        for obj in self._members:
            result.update(self._interp.attr_fillers(ref, obj))
        return self._derive(result)

    def follow_path(self, refs: Iterable[AttrRef]) -> "ObjectSet":
        """Compose several hops: ``follow(r1).follow(r2)…``."""
        current = self
        for ref in refs:
            current = current.follow(ref)
        return current

    def in_relation(self, relation: str, role: str) -> "ObjectSet":
        """Keep objects occurring in at least one tuple of ``relation`` at
        ``role``."""
        return self._derive(
            obj for obj in self._members
            if self._interp.participation_count(relation, role, obj) > 0)

    def partners(self, relation: str, *, at: str, to: str) -> "ObjectSet":
        """Objects joined to the current ones through a relation.

        For every tuple of ``relation`` whose ``at`` component is in the
        current set, collect its ``to`` component — the navigational join
        over an n-ary relation.
        """
        result: set[Obj] = set()
        for tup in self._interp.relation_ext(relation):
            try:
                source = tup[at]
                target = tup[to]
            except KeyError:
                raise SemanticsError(
                    f"relation {relation} has no role {at!r}/{to!r}") from None
            if source in self._members:
                result.add(target)
        return self._derive(result)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        preview = ", ".join(sorted(map(repr, list(self._members)[:4])))
        suffix = ", …" if len(self._members) > 4 else ""
        return f"ObjectSet({len(self._members)}: {preview}{suffix})"


def objects(interp: Interpretation,
            of: Optional[FormulaLike] = None) -> ObjectSet:
    """The whole universe of an interpretation as an :class:`ObjectSet`,
    optionally pre-filtered by a class-formula."""
    base = ObjectSet(interp, interp.universe)
    return base.where(of) if of is not None else base
