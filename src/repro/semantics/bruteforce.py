"""Exhaustive tiny-domain satisfiability search — the test oracle.

This module decides, by brute force, whether a class of a (small) CAR schema
has a model with at most ``max_size`` objects.  It is *independent* from the
two-phase reasoner of Section 3 and is used in tests as ground truth:

* if the brute force finds a model, the reasoner must report satisfiable;
* if the reasoner reports unsatisfiable, the brute force must find nothing.

The search exploits a structural fact of CAR: once the class membership of
every object is fixed, the satisfaction conditions for each attribute and
each relation are independent of one another.  Hence instead of enumerating
full interpretations (a product space), we enumerate class assignments and,
per assignment, search for each attribute extension and each relation
extension separately (a sum space).  Object symmetry is broken by assigning
compound classes as multisets.
"""

from __future__ import annotations

from itertools import combinations, combinations_with_replacement, chain, product
from typing import Iterable, Optional, Sequence

from ..core.errors import SemanticsError
from ..core.schema import RelationDef, Schema
from .interpretation import Interpretation, LabeledTuple
from .checker import is_model

__all__ = ["brute_force_satisfiable", "brute_force_find_model", "BruteForceBudget"]


class BruteForceBudget(SemanticsError):
    """The exhaustive search would exceed the configured work limit."""


def _powerset(items: Sequence) -> Iterable[tuple]:
    return chain.from_iterable(combinations(items, k) for k in range(len(items) + 1))


def _estimated_work(schema: Schema, size: int) -> int:
    """A coarse upper bound on the number of candidate extensions tried."""
    n_compound = 2 ** len(schema.class_symbols)
    # combinations with replacement: (n_compound + size - 1) choose size
    assignments = 1
    for i in range(size):
        assignments = assignments * (n_compound + i) // (i + 1)
    per_assignment = 0
    for _ in schema.attribute_symbols:
        per_assignment += 2 ** (size * size)
    for rdef in schema.relation_definitions:
        per_assignment += 2 ** (size ** rdef.arity)
    return assignments * max(per_assignment, 1)


def _class_assignments(schema: Schema, size: int):
    """Yield class-membership maps ``obj -> frozenset of classes`` that satisfy
    every isa constraint, up to object symmetry."""
    symbols = sorted(schema.class_symbols)
    compound_choices = [frozenset(subset) for subset in _powerset(symbols)]
    # Precompute which compound classes locally satisfy all isa constraints of
    # their members (exactly the paper's consistency of compound classes).
    consistent = []
    for compound in compound_choices:
        if all(schema.definition(name).isa.satisfied_by(compound) for name in compound):
            consistent.append(compound)
    for assignment in combinations_with_replacement(consistent, size):
        yield {obj: compound for obj, compound in enumerate(assignment)}


def _attribute_extension(schema: Schema, membership: dict, attr: str) -> Optional[frozenset]:
    """Search for an extension of ``attr`` satisfying every class definition,
    given fixed class memberships.  Returns None when none exists."""
    objects = sorted(membership)
    pairs = [(a, b) for a in objects for b in objects]
    # Collect the constraints each class imposes through this attribute.
    direct_specs: list[tuple[frozenset, object]] = []
    inverse_specs: list[tuple[frozenset, object]] = []
    for cdef in schema.class_definitions:
        instances = frozenset(o for o, cs in membership.items() if cdef.name in cs)
        for spec in cdef.attributes:
            if spec.ref.name != attr:
                continue
            target = inverse_specs if spec.ref.inverse else direct_specs
            target.append((instances, spec))

    def valid(extension: frozenset) -> bool:
        for instances, spec in direct_specs:
            for obj in instances:
                count = 0
                for a, b in extension:
                    if a == obj:
                        count += 1
                        if not spec.filler.satisfied_by(membership[b]):
                            return False
                if not spec.card.contains(count):
                    return False
        for instances, spec in inverse_specs:
            for obj in instances:
                count = 0
                for a, b in extension:
                    if b == obj:
                        count += 1
                        if not spec.filler.satisfied_by(membership[a]):
                            return False
                if not spec.card.contains(count):
                    return False
        return True

    for subset in _powerset(pairs):
        extension = frozenset(subset)
        if valid(extension):
            return extension
    return None


def _relation_extension(schema: Schema, membership: dict,
                        rdef: RelationDef) -> Optional[frozenset]:
    """Search for an extension of relation ``rdef`` satisfying role clauses
    and every participation constraint, given fixed class memberships."""
    objects = sorted(membership)
    candidate_tuples = [
        LabeledTuple(dict(zip(rdef.roles, combo)))
        for combo in product(objects, repeat=rdef.arity)
    ]
    # Tuples violating a role-clause can never appear; filter them up front.
    admissible = []
    for tup in candidate_tuples:
        if all(
            any(lit.formula.satisfied_by(membership[tup[lit.role]]) for lit in clause)
            for clause in rdef.constraints
        ):
            admissible.append(tup)

    participation: list[tuple[frozenset, str, object]] = []
    for cdef in schema.class_definitions:
        instances = frozenset(o for o, cs in membership.items() if cdef.name in cs)
        for spec in cdef.participates:
            if spec.relation == rdef.name:
                participation.append((instances, spec.role, spec.card))

    def valid(extension) -> bool:
        for instances, role, card in participation:
            for obj in instances:
                count = sum(1 for tup in extension if tup[role] == obj)
                if not card.contains(count):
                    return False
        return True

    for subset in _powerset(admissible):
        if valid(subset):
            return frozenset(subset)
    return None


def brute_force_find_model(schema: Schema, class_name: str, max_size: int = 3,
                           work_limit: int = 5_000_000) -> Optional[Interpretation]:
    """Search exhaustively for a model in which ``class_name`` is nonempty.

    Returns a verified :class:`Interpretation` or None when no model with at
    most ``max_size`` objects exists.  Raises :class:`BruteForceBudget` when
    the search space exceeds ``work_limit`` candidate extensions.
    """
    if class_name not in schema.class_symbols:
        raise SemanticsError(f"class {class_name!r} does not occur in the schema")
    total_work = sum(_estimated_work(schema, size) for size in range(1, max_size + 1))
    if total_work > work_limit:
        raise BruteForceBudget(
            f"brute-force search space ~{total_work} exceeds limit {work_limit}"
        )

    for size in range(1, max_size + 1):
        for membership in _class_assignments(schema, size):
            if not any(class_name in cs for cs in membership.values()):
                continue
            attr_exts: dict[str, frozenset] = {}
            feasible = True
            for attr in sorted(schema.attribute_symbols):
                ext = _attribute_extension(schema, membership, attr)
                if ext is None:
                    feasible = False
                    break
                attr_exts[attr] = ext
            if not feasible:
                continue
            rel_exts: dict[str, frozenset] = {}
            for rdef in schema.relation_definitions:
                ext = _relation_extension(schema, membership, rdef)
                if ext is None:
                    feasible = False
                    break
                rel_exts[rdef.name] = ext
            if not feasible:
                continue
            classes = {
                name: frozenset(o for o, cs in membership.items() if name in cs)
                for name in schema.class_symbols
            }
            interp = Interpretation(membership.keys(), classes, attr_exts, rel_exts)
            if is_model(interp, schema):
                return interp
    return None


def brute_force_satisfiable(schema: Schema, class_name: str, max_size: int = 3,
                            work_limit: int = 5_000_000) -> bool:
    """True when some model with at most ``max_size`` objects populates
    ``class_name``.  Note the one-sided nature: ``False`` only refutes models
    up to the size bound."""
    return brute_force_find_model(schema, class_name, max_size, work_limit) is not None
