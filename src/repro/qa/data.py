"""Loading database states from the wire/CLI JSON document shape.

The document mirrors the v1 envelope's ``database`` field of
``POST /v1/query`` and the ``--database`` file of ``repro query``::

    {
      "objects": {"alice": ["Person"], "acme": ["Dept"], "bob": []},
      "attributes": [["advisor", "alice", "bob"]],
      "relations": [["works_for", {"emp": "alice", "dept": "acme"}]]
    }

``objects`` maps object names to their asserted classes (open world: the
listed facts are asserted, not complete).  ``attributes`` holds
``[name, source, filler]`` triples; ``relations`` holds
``[name, {role: object, …}]`` pairs with exactly the declared roles.
Malformed documents raise :class:`~repro.core.errors.SemanticsError`
(sysexit 65); unknown symbols surface the
:class:`~repro.semantics.database.Database` errors unchanged.
"""

from __future__ import annotations

from typing import Mapping

from ..core.errors import SemanticsError
from ..core.schema import Schema
from ..semantics.database import Database

__all__ = ["database_from_document"]


def database_from_document(schema: Schema, document: Mapping) -> Database:
    """Build a :class:`Database` over ``schema`` from the JSON shape above."""
    if not isinstance(document, Mapping):
        raise SemanticsError(
            f"database document must be an object, got "
            f"{type(document).__name__}")
    unknown = set(document) - {"objects", "attributes", "relations"}
    if unknown:
        raise SemanticsError(
            f"database document has unknown keys: {sorted(unknown)}")
    database = Database(schema)

    objects = document.get("objects", {})
    if not isinstance(objects, Mapping):
        raise SemanticsError('"objects" must map object names to class lists')
    for name, classes in objects.items():
        if not isinstance(classes, (list, tuple)) \
                or not all(isinstance(c, str) for c in classes):
            raise SemanticsError(
                f"classes of object {name!r} must be a list of strings")
        database.insert(name, *classes)

    attributes = document.get("attributes", [])
    if not isinstance(attributes, (list, tuple)):
        raise SemanticsError('"attributes" must be a list of '
                             '[name, source, filler] triples')
    for entry in attributes:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise SemanticsError(
                f"attribute entry {entry!r} is not [name, source, filler]")
        name, source, filler = entry
        database.set_attribute(name, source, filler)

    relations = document.get("relations", [])
    if not isinstance(relations, (list, tuple)):
        raise SemanticsError('"relations" must be a list of '
                             '[name, {role: object}] pairs')
    for entry in relations:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2 \
                or not isinstance(entry[1], Mapping):
            raise SemanticsError(
                f"relation entry {entry!r} is not [name, {{role: object}}]")
        name, assignment = entry
        database.add_tuple(name, **dict(assignment))
    return database
