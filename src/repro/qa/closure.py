"""The schema's implication closure, compiled for query rewriting.

One :class:`ClosureIndex` holds every implication the rewriter consumes,
precomputed from the reasoner's supported compound classes so that
rewriting any number of queries shares the single Phase-1/Phase-2 build:

* ``subclasses`` — the implied subsumption preorder of
  :func:`repro.reasoner.implication.classify`, inverted (atom
  *specialization*: an asserted ``D`` certainly is a ``C`` when
  ``D ⊑ C``);
* ``mandatory_relations`` / ``mandatory_attributes`` — (class, link)
  pairs whose implied lower cardinality bound is ≥ 1 (atom
  *elimination*: ``C(x)`` certainly has a ``works_for``-tuple, so an
  unbound relation atom on ``x`` follows from ``C(x)`` alone);
* ``role_fillers`` — named classes every tuple of a relation puts its
  role filler in (*domain/range specialization*: an asserted
  ``works_for`` tuple certainly makes its ``emp`` filler a ``Person``).

The index is a plain picklable value object: it optionally rides inside
:class:`~repro.engine.artifact.CompiledSchema` (artifact v3) so service
replicas and CLI runs skip the closure computation on artifact-cache
hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.budget import current_budget
from ..core.cardinality import Card, INFINITY
from ..core.schema import AttrRef
from ..core.formulas import Lit
from ..reasoner.implication import (
    _has_supported_partner,
    _possible_compound_relations,
    classify,
    implied_role_constraint,
)
from ..reasoner.satisfiability import Reasoner

__all__ = ["ClosureIndex", "build_closure_index"]

#: Relations whose compound-relation candidate space exceeds this are left
#: out of the closure (sound: the rewriter just derives fewer facts).
RELATION_ENUMERATION_CAP = 50_000


@dataclass(frozen=True)
class ClosureIndex:
    """The precompiled implication facts driving query rewriting."""

    satisfiable: frozenset[str]
    unsatisfiable: tuple[str, ...]
    #: class → its implied proper subclasses (satisfiable ones only).
    subclasses: dict[str, frozenset[str]]
    #: class → sorted ``(relation, role)`` pairs with implied lower ≥ 1.
    mandatory_relations: dict[str, tuple[tuple[str, str], ...]]
    #: class → attribute refs with implied lower ≥ 1.
    mandatory_attributes: dict[str, tuple[AttrRef, ...]]
    #: ``(relation, role)`` → named classes every filler certainly has.
    role_fillers: dict[tuple[str, str], frozenset[str]]
    #: relation → declared role order (for synthesizing probe atoms).
    relation_roles: dict[str, tuple[str, ...]]

    def summary(self) -> dict:
        """Size counters for logs and ``/metrics``-adjacent introspection."""
        return {
            "satisfiable": len(self.satisfiable),
            "unsatisfiable": len(self.unsatisfiable),
            "subsumptions": sum(len(subs) for subs
                                in self.subclasses.values()),
            "mandatory_relations": sum(len(pairs) for pairs
                                       in self.mandatory_relations.values()),
            "mandatory_attributes": sum(len(refs) for refs
                                        in self.mandatory_attributes.values()),
            "role_fillers": sum(len(classes) for classes
                                in self.role_fillers.values()),
        }


def build_closure_index(reasoner: Reasoner) -> ClosureIndex:
    """Compile the rewriting closure from a (built) reasoner pipeline.

    Every fact is read off the supported compound classes — the same
    source :mod:`repro.reasoner.implication` answers one-off queries
    from — so soundness matches the implication API.  Cooperative
    budgets are ticked throughout (exit 75 via
    :class:`~repro.core.errors.BudgetExceeded`).
    """
    tick = current_budget().tick
    tracer = reasoner.tracer
    schema = reasoner.schema
    with tracer.span("qa.closure_build"):
        classification = classify(reasoner)
        satisfiable = frozenset(schema.class_symbols) \
            - set(classification.unsatisfiable)
        subclasses: dict[str, frozenset[str]] = {}
        for sub, sup in classification.subsumptions:
            subclasses.setdefault(sup, frozenset())
            subclasses[sup] = subclasses[sup] | {sub}
        tick(len(classification.subsumptions) + len(schema.class_symbols))

        supported = reasoner.supported_compound_classes()
        containing = {name: [m for m in supported if name in m]
                      for name in satisfiable}

        mandatory_attributes = _mandatory_attributes(
            reasoner, containing, tick)
        mandatory_relations, role_fillers = _relation_facts(
            reasoner, containing, tick)

        index = ClosureIndex(
            satisfiable=satisfiable,
            unsatisfiable=classification.unsatisfiable,
            subclasses=subclasses,
            mandatory_relations=mandatory_relations,
            mandatory_attributes=mandatory_attributes,
            role_fillers=role_fillers,
            relation_roles={rdef.name: tuple(rdef.roles)
                            for rdef in schema.relation_definitions},
        )
    for key, value in index.summary().items():
        tracer.add(f"qa.closure_{key}", value)
    return index


def _mandatory_attributes(reasoner: Reasoner, containing: dict,
                          tick) -> dict[str, tuple[AttrRef, ...]]:
    """Attribute refs whose implied lower bound is ≥ 1 per class.

    The hull logic of
    :func:`~repro.reasoner.implication.implied_attribute_bounds`, run for
    every declared ref at once: the implied lower bound is the minimum
    over the supported compound classes the class inhabits.
    """
    expansion = reasoner.expansion
    supported = reasoner.supported_compound_classes()
    declared_refs: set[AttrRef] = set()
    for cdef in reasoner.schema.class_definitions:
        declared_refs.update(spec.ref for spec in cdef.attributes)
    result: dict[str, tuple[AttrRef, ...]] = {}
    for name, members_list in containing.items():
        mandatory: list[AttrRef] = []
        for ref in sorted(declared_refs, key=lambda r: (r.name, r.inverse)):
            lower = None
            for members in members_list:
                tick()
                card = expansion.natt.get((members, ref),
                                          Card(0, INFINITY))
                if card.lower == 0:
                    lower = 0
                    break
                if not _has_supported_partner(reasoner, members, ref,
                                              supported):
                    lower = 0
                    break
                lower = card.lower if lower is None \
                    else min(lower, card.lower)
            if lower is not None and lower >= 1:
                mandatory.append(ref)
        if mandatory:
            result[name] = tuple(mandatory)
    return result


def _relation_facts(reasoner: Reasoner, containing: dict, tick):
    """Mandatory participations and certain role fillers, per relation.

    One ``_possible_compound_relations`` enumeration per relation is
    shared by both fact families (the API functions recompute it per
    query).  Relations whose candidate space exceeds
    :data:`RELATION_ENUMERATION_CAP` are skipped — sound, the rewriter
    simply derives fewer facts — and counted on the tracer.
    """
    expansion = reasoner.expansion
    schema = reasoner.schema
    n_supported = len(reasoner.supported_compound_classes())
    mandatory: dict[str, list[tuple[str, str]]] = {}
    role_fillers: dict[tuple[str, str], frozenset[str]] = {}
    for rdef in schema.relation_definitions:
        if n_supported ** rdef.arity > RELATION_ENUMERATION_CAP:
            reasoner.tracer.add("qa.closure_relations_skipped")
            continue
        possible = list(_possible_compound_relations(reasoner, rdef.name))
        tick(max(len(possible), 1))
        for role in rdef.roles:
            at_role = [candidate[role] for candidate in possible]
            populatable = set(at_role)
            # Mandatory participation: implied lower bound ≥ 1.
            for name, members_list in containing.items():
                lower = None
                for members in members_list:
                    tick()
                    if members not in populatable:
                        lower = 0
                        break
                    card = expansion.nrel.get((members, rdef.name, role),
                                              Card(0, INFINITY))
                    if card.lower == 0:
                        lower = 0
                        break
                    lower = card.lower if lower is None \
                        else min(lower, card.lower)
                if lower is not None and lower >= 1:
                    mandatory.setdefault(name, []).append((rdef.name, role))
            # Certain role fillers.  The enumerated candidates are a
            # subset of the realizable ones, so "in every candidate" is
            # only a prefilter; survivors are confirmed either by a
            # complete enumeration or by implied_role_constraint's probe
            # fallback (strategic enumeration may miss cross-cluster
            # compounds).
            if possible:
                mentioned = rdef.mentioned_classes()
                fillers = set()
                for name in containing:
                    if not all(name in members for members in at_role):
                        continue
                    tick()
                    if reasoner.enumeration_complete_for(
                            mentioned | {name}) \
                            or implied_role_constraint(
                                reasoner, rdef.name, role, Lit(name)):
                        fillers.add(name)
                if fillers:
                    role_fillers[(rdef.name, role)] = frozenset(fillers)
    return ({name: tuple(sorted(pairs)) for name, pairs
             in mandatory.items()}, role_fillers)


def closure_for_pipeline(pipeline) -> ClosureIndex:
    """The closure index of a pipeline, via a reasoner façade."""
    return build_closure_index(Reasoner.from_pipeline(pipeline))


__all__ += ["closure_for_pipeline", "RELATION_ENUMERATION_CAP"]
