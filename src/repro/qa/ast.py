"""Conjunctive-query AST: terms, atoms, and the query itself.

A conjunctive query (CQ) over a CAR schema is an existentially quantified
conjunction of atoms::

    q(x) :- Person(x), works_for(x, y), Dept(y)

* **terms** are variables (``x``) or quoted constants (``"alice"``,
  naming database objects);
* a **class atom** ``C(t)`` asserts membership of ``t`` in class ``C``;
* an **attribute atom** ``a(s, f)`` asserts an ``a``-link from ``s`` to
  ``f``;
* a **relation atom** ``R(t1, …, tk)`` asserts a tuple of the k-ary
  relation ``R``, terms bound to roles positionally in declaration order.

Head variables are the *distinguished* (answer) variables; every other
variable is existential.  A query with an empty head (``q() :- …``) is
**boolean**.  All types are immutable and hashable so queries can key
caches directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..core.errors import SchemaError
from ..core.schema import Schema

__all__ = [
    "Var", "Const", "Term", "ClassAtom", "AttributeAtom", "RelationAtom",
    "Atom", "ConjunctiveQuery", "QueryValidationError", "render_query",
]


class QueryValidationError(SchemaError):
    """A syntactically valid query mentions symbols the schema lacks or
    uses them at the wrong arity (sysexit 65, like every schema error)."""


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant naming a database object (quoted in the surface syntax)."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


Term = Union[Var, Const]


@dataclass(frozen=True, slots=True)
class ClassAtom:
    """``C(t)`` — membership of ``t`` in class ``C``."""

    name: str
    term: Term

    def terms(self) -> tuple[Term, ...]:
        return (self.term,)

    def with_terms(self, terms: tuple[Term, ...]) -> "ClassAtom":
        return ClassAtom(self.name, terms[0])

    def __str__(self) -> str:
        return f"{self.name}({self.term})"


@dataclass(frozen=True, slots=True)
class AttributeAtom:
    """``a(s, f)`` — an ``a``-link from source ``s`` to filler ``f``."""

    name: str
    source: Term
    filler: Term

    def terms(self) -> tuple[Term, ...]:
        return (self.source, self.filler)

    def with_terms(self, terms: tuple[Term, ...]) -> "AttributeAtom":
        return AttributeAtom(self.name, terms[0], terms[1])

    def __str__(self) -> str:
        return f"{self.name}({self.source}, {self.filler})"


@dataclass(frozen=True, slots=True)
class RelationAtom:
    """``R(t1, …, tk)`` — a tuple of ``R``, terms aligned with the
    relation's declared roles."""

    name: str
    roles: tuple[str, ...]
    args: tuple[Term, ...]

    def terms(self) -> tuple[Term, ...]:
        return self.args

    def with_terms(self, terms: tuple[Term, ...]) -> "RelationAtom":
        return RelationAtom(self.name, self.roles, tuple(terms))

    def term_at(self, role: str) -> Term:
        return self.args[self.roles.index(role)]

    def __str__(self) -> str:
        rendered = ", ".join(str(term) for term in self.args)
        return f"{self.name}({rendered})"


Atom = Union[ClassAtom, AttributeAtom, RelationAtom]


@dataclass(frozen=True, slots=True)
class ConjunctiveQuery:
    """An existentially quantified conjunction of atoms with a head.

    ``head`` holds the distinguished variables in answer order; every
    variable in ``atoms`` not in the head is existential.
    """

    head: tuple[Var, ...]
    atoms: tuple[Atom, ...]
    name: str = "q"

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def variables(self) -> tuple[Var, ...]:
        """Every variable, head first, then by first body occurrence."""
        seen: dict[Var, None] = {}
        for var in self.head:
            seen.setdefault(var, None)
        for atom in self.atoms:
            for term in atom.terms():
                if isinstance(term, Var):
                    seen.setdefault(term, None)
        return tuple(seen)

    def term_occurrences(self) -> dict[Term, int]:
        """How many times each term occurs across the body atoms."""
        counts: dict[Term, int] = {}
        for atom in self.atoms:
            for term in atom.terms():
                counts[term] = counts.get(term, 0) + 1
        return counts

    def is_unshared_existential(self, term: Term) -> bool:
        """True for a variable that is not distinguished and occurs exactly
        once in the body — the *unbound* witnesses atom elimination needs."""
        if not isinstance(term, Var) or term in self.head:
            return False
        return self.term_occurrences().get(term, 0) == 1

    def validate(self, schema: Schema) -> None:
        """Check every atom against the schema's alphabets and arities.

        Raises :class:`QueryValidationError` (sysexit 65) on unknown class,
        attribute, or relation symbols, arity mismatches, and head
        variables that never occur in the body (unsafe queries).
        """
        body_vars = {term for atom in self.atoms for term in atom.terms()
                     if isinstance(term, Var)}
        for var in self.head:
            if var not in body_vars:
                raise QueryValidationError(
                    f"head variable {var} does not occur in the query body")
        for atom in self.atoms:
            if isinstance(atom, ClassAtom):
                if atom.name not in schema.class_symbols:
                    raise QueryValidationError(
                        f"class {atom.name!r} does not occur in the schema")
            elif isinstance(atom, AttributeAtom):
                if atom.name not in schema.attribute_symbols:
                    raise QueryValidationError(
                        f"attribute {atom.name!r} does not occur in the "
                        f"schema")
            else:
                if atom.name not in schema.relation_symbols:
                    raise QueryValidationError(
                        f"relation {atom.name!r} does not occur in the "
                        f"schema")
                declared = schema.relation(atom.name).roles
                if atom.roles != tuple(declared):
                    raise QueryValidationError(
                        f"relation {atom.name!r} used with roles "
                        f"{atom.roles}, declared {tuple(declared)}")

    def __str__(self) -> str:
        return render_query(self)


def render_query(query: ConjunctiveQuery) -> str:
    """The concrete syntax of a query (parses back to an equal query)."""
    head = ", ".join(str(var) for var in query.head)
    body = ", ".join(str(atom) for atom in query.atoms) or "true"
    return f"{query.name}({head}) :- {body}"


def canonical_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A canonically renamed, canonically ordered copy of ``query``.

    Variables are renamed ``x0, x1, …`` by first occurrence and atoms
    sorted by a rename-independent key, iterated to a fixpoint, so that
    syntactic variants of one query usually collapse onto one
    representative.  The renaming is *deterministic* (equal inputs give
    equal outputs) but not a perfect graph canonicalization — distinct
    keys for α-equivalent queries only cost a cache miss, never a wrong
    answer.
    """
    atoms = list(query.atoms)
    for _ in range(max(len(atoms), 1)):
        naming = _occurrence_naming(query.head, atoms)
        keyed = sorted(atoms, key=lambda atom: _atom_key(atom, naming))
        if keyed == atoms:
            break
        atoms = keyed
    naming = _occurrence_naming(query.head, atoms)
    renamed = [atom.with_terms(tuple(naming.get(t, t) for t in atom.terms()))
               for atom in atoms]
    head = tuple(naming[var] for var in query.head)
    return ConjunctiveQuery(head, tuple(renamed), "q")


def _occurrence_naming(head: Iterable[Var],
                       atoms: Iterable[Atom]) -> dict[Term, Var]:
    naming: dict[Term, Var] = {}
    for var in head:
        naming.setdefault(var, Var(f"x{len(naming)}"))
    for atom in atoms:
        for term in atom.terms():
            if isinstance(term, Var):
                naming.setdefault(term, Var(f"x{len(naming)}"))
    return naming


def _atom_key(atom: Atom, naming: dict[Term, Var]) -> tuple:
    kind = type(atom).__name__
    terms = tuple(
        ("v", naming[t].name) if isinstance(t, Var) else ("c", t.value)
        for t in atom.terms())
    return (kind, atom.name, terms)


__all__ += ["canonical_query"]
