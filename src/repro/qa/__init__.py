"""Conjunctive-query answering over validated CAR schemas.

The paper's Ψ_S machinery decides satisfiability and implication; this
package turns those implications into *query answering*: given a schema
``S`` and a database ``D`` (a :class:`~repro.semantics.database.Database`
holding asserted facts), compute the **certain answers** of a conjunctive
query — the tuples of database objects the query retrieves in *every*
model of ``S`` extending ``D``.

The route is rewriting (the DL-Lite "PerfectRef" idiom adapted to CAR):

1. :func:`build_closure_index` compiles the schema's implication closure —
   subsumptions, mandatory participations, role-filler constraints — once
   per compiled schema (it rides in :class:`CompiledSchema` artifacts);
2. :class:`QueryRewriter` rewrites the query into a union of conjunctive
   queries whose *plain* evaluation over the asserted facts yields the
   certain answers;
3. :func:`certain_answers` evaluates the union over the database snapshot,
   falling back to the reasoner for inconsistent/unsatisfiable edge cases.

Soundness caveat: certain answers computed this way are sound only for
*satisfiable* schemas — see ``docs/architecture.md``.
"""

from .ast import (
    AttributeAtom,
    ClassAtom,
    ConjunctiveQuery,
    Const,
    QueryValidationError,
    RelationAtom,
    Var,
    render_query,
)
from .closure import ClosureIndex, build_closure_index
from .data import database_from_document
from .evaluator import QueryAnswer, certain_answers, evaluate_disjuncts
from .parser import parse_query
from .rewriter import QueryRewriter, RewriteResult

__all__ = [
    "Var", "Const", "ClassAtom", "AttributeAtom", "RelationAtom",
    "ConjunctiveQuery", "QueryValidationError", "render_query",
    "parse_query", "ClosureIndex", "build_closure_index",
    "QueryRewriter", "RewriteResult", "QueryAnswer", "certain_answers",
    "evaluate_disjuncts", "database_from_document",
]
