"""Parser for the conjunctive-query surface syntax.

Grammar::

    query   := IDENT "(" [term ("," term)*] ")" ":-" body
    body    := "true" | atom ("," atom)*
    atom    := IDENT "(" term ("," term)* ")"
    term    := IDENT | STRING

``IDENT`` terms are variables; ``STRING`` terms (double-quoted) are
constants naming database objects.  ``#`` starts a comment to end of
line.  Atoms are classified against the schema: arity-1 symbols must be
class symbols; arity-2+ symbols resolve to an attribute (binary,
``(source, filler)``) or a relation (terms bound to the declared roles
positionally).

The schema lexer is *not* reused: it treats ``--`` as a comment opener
and has no ``-`` token, so the query connective ``:-`` needs its own
tiny tokenizer — the parser mirrors ``parser/parser.py``'s
recursive-descent idioms instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ParseError
from ..core.schema import Schema
from .ast import (
    AttributeAtom,
    Atom,
    ClassAtom,
    ConjunctiveQuery,
    Const,
    QueryValidationError,
    RelationAtom,
    Term,
    Var,
)

__all__ = ["parse_query", "QueryParser"]


@dataclass(frozen=True, slots=True)
class QToken:
    kind: str  # IDENT, STRING, LPAREN, RPAREN, COMMA, ARROW, EOF
    text: str
    line: int
    column: int


def _tokenize(source: str) -> list[QToken]:
    tokens: list[QToken] = []
    line, column = 1, 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == ":" and index + 1 < length and source[index + 1] == "-":
            tokens.append(QToken("ARROW", ":-", line, column))
            index += 2
            column += 2
            continue
        if char == '"':
            end = source.find('"', index + 1)
            if end < 0:
                raise ParseError("unterminated constant", line, column)
            text = source[index + 1:end]
            tokens.append(QToken("STRING", text, line, column))
            column += end - index + 1
            index = end + 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            tokens.append(QToken("IDENT", text, line, column))
            column += index - start
            continue
        punct = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA"}.get(char)
        if punct is None:
            raise ParseError(f"unexpected character {char!r} in query",
                             line, column)
        tokens.append(QToken(punct, char, line, column))
        index += 1
        column += 1
    tokens.append(QToken("EOF", "", line, column))
    return tokens


class QueryParser:
    """Stateful recursive-descent parser over the query token list."""

    def __init__(self, source: str, schema: Schema):
        self._tokens = _tokenize(source)
        self._pos = 0
        self._schema = schema

    # ------------------------------------------------------------------
    # Token plumbing (the schema parser's idiom)
    # ------------------------------------------------------------------
    def _peek(self) -> QToken:
        return self._tokens[self._pos]

    def _next(self) -> QToken:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _eat(self, kind: str, what: str) -> QToken:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(f"expected {what}, found {token.text!r}",
                             token.line, token.column)
        return self._next()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse_query(self) -> ConjunctiveQuery:
        name = self._eat("IDENT", "query name").text
        self._eat("LPAREN", "'('")
        head: list[Var] = []
        if self._peek().kind != "RPAREN":
            head.append(self._parse_head_var())
            while self._peek().kind == "COMMA":
                self._next()
                head.append(self._parse_head_var())
        self._eat("RPAREN", "')'")
        self._eat("ARROW", "':-'")
        atoms: list[Atom] = []
        token = self._peek()
        if token.kind == "IDENT" and token.text == "true" \
                and self._tokens[self._pos + 1].kind != "LPAREN":
            self._next()
        else:
            atoms.append(self._parse_atom())
            while self._peek().kind == "COMMA":
                self._next()
                atoms.append(self._parse_atom())
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(f"unexpected trailing input {token.text!r}",
                             token.line, token.column)
        query = ConjunctiveQuery(tuple(head), tuple(atoms), name)
        query.validate(self._schema)
        return query

    def _parse_head_var(self) -> Var:
        token = self._peek()
        if token.kind == "STRING":
            raise ParseError("head terms must be variables, not constants",
                             token.line, token.column)
        return Var(self._eat("IDENT", "head variable").text)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "STRING":
            return Const(self._next().text)
        return Var(self._eat("IDENT", "variable or constant").text)

    def _parse_atom(self) -> Atom:
        token = self._peek()
        name = self._eat("IDENT", "class, attribute, or relation name").text
        self._eat("LPAREN", "'('")
        terms = [self._parse_term()]
        while self._peek().kind == "COMMA":
            self._next()
            terms.append(self._parse_term())
        self._eat("RPAREN", "')'")
        return self._classify_atom(name, tuple(terms), token)

    def _classify_atom(self, name: str, terms: tuple[Term, ...],
                       token: QToken) -> Atom:
        schema = self._schema
        if len(terms) == 1:
            if name not in schema.class_symbols:
                raise QueryValidationError(
                    f"class {name!r} does not occur in the schema "
                    f"(line {token.line})")
            return ClassAtom(name, terms[0])
        if name in schema.relation_symbols:
            roles = tuple(schema.relation(name).roles)
            if len(terms) != len(roles):
                raise QueryValidationError(
                    f"relation {name!r} has roles {roles}, got "
                    f"{len(terms)} terms (line {token.line})")
            return RelationAtom(name, roles, terms)
        if name in schema.attribute_symbols:
            if len(terms) != 2:
                raise QueryValidationError(
                    f"attribute {name!r} takes (source, filler), got "
                    f"{len(terms)} terms (line {token.line})")
            return AttributeAtom(name, terms[0], terms[1])
        raise QueryValidationError(
            f"{name!r} is neither an attribute nor a relation of the "
            f"schema (line {token.line})")


def parse_query(source: str, schema: Schema) -> ConjunctiveQuery:
    """Parse and validate one conjunctive query against ``schema``.

    Raises :class:`~repro.core.errors.ParseError` on malformed syntax and
    :class:`~repro.qa.ast.QueryValidationError` on unknown symbols or
    arity mismatches — both sysexit 65.
    """
    return QueryParser(source, schema).parse_query()
