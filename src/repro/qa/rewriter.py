"""PerfectRef-style rewriting of conjunctive queries into unions of CQs.

Given the schema's precompiled :class:`~repro.qa.closure.ClosureIndex`,
the rewriter saturates a query under three step families until no new
disjunct appears:

* **atom specialization** — replace ``C(t)`` by ``D(t)`` for every
  implied subclass ``D ⊑ C``, and by a relation atom placing ``t`` at a
  role whose fillers are certainly ``C`` (domain/range constraints);
* **atom elimination** — drop a relation/attribute atom whose other
  positions are unbound existential variables, replacing it by ``C(t)``
  for a class with implied *mandatory* participation (lower bound ≥ 1):
  every ``C``-object certainly carries such a link, named or not;
* **unification/reduction** — unify two atoms of the same predicate
  (most-general unifier, head variables and constants rigid); the merged
  query may unlock eliminations the shared variable blocked.

Every generated disjunct is canonically renamed, so saturation
terminates: atom counts never grow and the predicate alphabet is finite.
A final subsumption pass drops disjuncts a more general disjunct maps
into homomorphically.  Results are cached per canonicalized query — the
cache key is effectively ``(schema fingerprint, canonical query)``
because one rewriter serves exactly one compiled schema.

Evaluating the union over the *asserted* database facts then yields the
certain answers — sound for satisfiable schemas (see
``docs/architecture.md``), complete for the implication families above.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

from ..core.budget import current_budget
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from .ast import (
    Atom,
    AttributeAtom,
    ClassAtom,
    ConjunctiveQuery,
    Const,
    RelationAtom,
    Term,
    Var,
    canonical_query,
    render_query,
)
from .closure import ClosureIndex

__all__ = ["QueryRewriter", "RewriteResult"]

#: Bound on the rewriter's per-schema result cache (LRU eviction beyond).
REWRITE_CACHE_LIMIT = 256


@dataclass(frozen=True)
class RewriteResult:
    """A rewritten query: the union of CQs plus how it was produced."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    steps: int
    generated: int
    pruned: int
    cached: bool


class QueryRewriter:
    """Rewrites queries against one schema's implication closure.

    Instances are cheap — all heavy lifting happened in
    :func:`~repro.qa.closure.build_closure_index` — and hold the
    per-schema rewrite cache, keyed by the canonical rendering of the
    input query (the schema-fingerprint half of the documented cache key
    is the rewriter's identity).
    """

    def __init__(self, closure: ClosureIndex,
                 tracer: Optional[Union[Tracer, NullTracer]] = None,
                 cache_limit: int = REWRITE_CACHE_LIMIT):
        self._closure = closure
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._cache: OrderedDict[str, RewriteResult] = OrderedDict()
        self._cache_limit = cache_limit

    @property
    def closure(self) -> ClosureIndex:
        return self._closure

    def rewrite(self, query: ConjunctiveQuery) -> RewriteResult:
        """The union of CQs whose plain evaluation gives certain answers."""
        tracer = self._tracer
        seed = canonical_query(query)
        key = render_query(seed)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            tracer.add("qa.rewrite_cache_hits")
            return RewriteResult(cached.disjuncts, cached.steps,
                                 cached.generated, cached.pruned,
                                 cached=True)
        tracer.add("qa.rewrite_cache_misses")
        with tracer.span("qa.rewrite"):
            result = self._saturate(seed)
        self._cache[key] = result
        if len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)
        tracer.add("qa.rewrite_steps", result.steps)
        tracer.add("qa.disjuncts_generated", result.generated)
        tracer.add("qa.disjuncts_pruned", result.pruned)
        return result

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def _saturate(self, seed: ConjunctiveQuery) -> RewriteResult:
        tick = current_budget().tick
        seen: dict[str, ConjunctiveQuery] = {render_query(seed): seed}
        frontier = [seed]
        steps = 0
        while frontier:
            query = frontier.pop()
            for candidate in self._one_step(query):
                steps += 1
                tick()
                canonical = canonical_query(candidate)
                key = render_query(canonical)
                if key not in seen:
                    seen[key] = canonical
                    frontier.append(canonical)
        disjuncts = list(seen.values())
        kept = _prune_subsumed(disjuncts, tick)
        return RewriteResult(tuple(kept), steps, len(disjuncts),
                             len(disjuncts) - len(kept), cached=False)

    def _one_step(self, query: ConjunctiveQuery):
        closure = self._closure
        atoms = query.atoms
        for index, atom in enumerate(atoms):
            if isinstance(atom, ClassAtom):
                # Specialization along implied subsumptions.
                for sub in sorted(closure.subclasses.get(atom.name, ())):
                    yield _replace(query, index, ClassAtom(sub, atom.term))
                # Domain/range specialization: any tuple placing the term
                # at a role whose fillers are certainly this class.
                for (relation, role), fillers in closure.role_fillers.items():
                    if atom.name not in fillers:
                        continue
                    roles = closure.relation_roles[relation]
                    yield _replace(query, index,
                                   _relation_probe(query, relation, roles,
                                                   role, atom.term))
            elif isinstance(atom, AttributeAtom):
                yield from self._eliminate_attribute(query, index, atom)
            else:
                yield from self._eliminate_relation(query, index, atom)
        # Unification/reduction of same-predicate atom pairs.
        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                unified = _unify_atoms(query, i, j)
                if unified is not None:
                    yield unified

    def _eliminate_attribute(self, query: ConjunctiveQuery, index: int,
                             atom: AttributeAtom):
        from ..core.schema import AttrRef

        closure = self._closure
        if query.is_unshared_existential(atom.filler):
            for name, refs in closure.mandatory_attributes.items():
                if AttrRef(atom.name) in refs:
                    yield _replace(query, index, ClassAtom(name, atom.source))
        if query.is_unshared_existential(atom.source):
            for name, refs in closure.mandatory_attributes.items():
                if AttrRef(atom.name, inverse=True) in refs:
                    yield _replace(query, index, ClassAtom(name, atom.filler))

    def _eliminate_relation(self, query: ConjunctiveQuery, index: int,
                            atom: RelationAtom):
        closure = self._closure
        occurrences = query.term_occurrences()

        def unbound_except(keep: int) -> bool:
            return all(
                isinstance(term, Var) and term not in query.head
                and occurrences.get(term, 0) == 1
                for pos, term in enumerate(atom.args) if pos != keep)

        for pos, role in enumerate(atom.roles):
            if not unbound_except(pos):
                continue
            for name, pairs in closure.mandatory_relations.items():
                if (atom.name, role) in pairs:
                    yield _replace(query, index,
                                   ClassAtom(name, atom.args[pos]))


# ----------------------------------------------------------------------
# Step helpers
# ----------------------------------------------------------------------
def _replace(query: ConjunctiveQuery, index: int,
             atom: Atom) -> ConjunctiveQuery:
    atoms = query.atoms[:index] + (atom,) + query.atoms[index + 1:]
    return ConjunctiveQuery(query.head, atoms, query.name)


def _relation_probe(query: ConjunctiveQuery, relation: str,
                    roles: tuple[str, ...], role: str,
                    term: Term) -> RelationAtom:
    """A relation atom placing ``term`` at ``role``, every other position a
    fresh existential variable."""
    taken = {var.name for var in query.variables()}
    args: list[Term] = []
    counter = 0
    for candidate in roles:
        if candidate == role:
            args.append(term)
            continue
        name = f"w{counter}"
        while name in taken:
            counter += 1
            name = f"w{counter}"
        taken.add(name)
        args.append(Var(name))
    return RelationAtom(relation, roles, tuple(args))


def _unify_atoms(query: ConjunctiveQuery, i: int,
                 j: int) -> Optional[ConjunctiveQuery]:
    """Unify atoms ``i`` and ``j`` if they share a predicate; None otherwise.

    Head variables and constants are rigid; existential variables bind
    freely.  The substitution applies to the whole query and the now
    duplicate atom is dropped.
    """
    a, b = query.atoms[i], query.atoms[j]
    if type(a) is not type(b) or a.name != b.name:
        return None
    substitution: dict[Term, Term] = {}

    def resolve(term: Term) -> Term:
        while term in substitution:
            term = substitution[term]
        return term

    def rigid(term: Term) -> bool:
        return isinstance(term, Const) or term in query.head

    for left, right in zip(a.terms(), b.terms()):
        left, right = resolve(left), resolve(right)
        if left == right:
            continue
        if rigid(left) and rigid(right):
            return None
        if rigid(left):
            substitution[right] = left
        else:
            substitution[left] = right
    if not substitution:
        return None

    def apply(term: Term) -> Term:
        return resolve(term)

    atoms: list[Atom] = []
    for index, atom in enumerate(query.atoms):
        if index == j:
            continue
        atoms.append(atom.with_terms(tuple(apply(t) for t in atom.terms())))
    deduped: list[Atom] = []
    for atom in atoms:
        if atom not in deduped:
            deduped.append(atom)
    return ConjunctiveQuery(query.head, tuple(deduped), query.name)


# ----------------------------------------------------------------------
# Subsumption pruning
# ----------------------------------------------------------------------
def _prune_subsumed(disjuncts: list[ConjunctiveQuery],
                    tick) -> list[ConjunctiveQuery]:
    """Drop disjuncts a *more general* disjunct maps into.

    If there is a homomorphism from ``P`` to ``Q`` fixing head variables,
    every answer ``Q`` retrieves ``P`` retrieves too, so ``Q`` is
    redundant in the union.  Kept disjuncts are scanned in ascending atom
    count — smaller queries are the more general candidates.
    """
    ordered = sorted(disjuncts, key=lambda q: (len(q.atoms),
                                               render_query(q)))
    kept: list[ConjunctiveQuery] = []
    for query in ordered:
        tick()
        if any(_maps_into(general, query) for general in kept):
            continue
        kept.append(query)
    return kept


def _maps_into(general: ConjunctiveQuery,
               specific: ConjunctiveQuery) -> bool:
    """Is there a homomorphism ``general → specific`` fixing the head?"""
    if general.head != specific.head:
        return False

    atoms = general.atoms
    targets = specific.atoms

    def compatible(atom: Atom, target: Atom,
                   mapping: dict[Term, Term]) -> Optional[dict[Term, Term]]:
        if type(atom) is not type(target) or atom.name != target.name:
            return None
        extended = dict(mapping)
        for src, dst in zip(atom.terms(), target.terms()):
            if isinstance(src, Const):
                if src != dst:
                    return None
                continue
            bound = extended.get(src)
            if bound is None:
                if src in general.head and src != dst:
                    return None
                extended[src] = dst
            elif bound != dst:
                return None
        return extended

    def search(index: int, mapping: dict[Term, Term]) -> bool:
        if index == len(atoms):
            return True
        for target in targets:
            extended = compatible(atoms[index], target, mapping)
            if extended is not None and search(index + 1, extended):
                return True
        return False

    return search(0, {var: var for var in general.head})
