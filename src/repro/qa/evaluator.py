"""Certain-answer evaluation of rewritten queries over database states.

The rewriter's union of CQs is *complete* for the compiled implication
families, so the certain answers of the original query are exactly the
plain answers of the union over the asserted facts — no reasoning at
evaluation time.  :func:`certain_answers` adds the edge-case handling
rewriting cannot express:

* **inconsistent database** — an object asserted into a class
  combination no model realizes (including any unsatisfiable class)
  makes schema+database unsatisfiable, so *every* tuple is a certain
  answer and every boolean query is entailed; detected by falling back
  to the reasoner's formula satisfiability;
* **boolean entailment** — CAR schemas always admit the empty model, so
  a boolean query is certain iff the rewritten union matches the
  asserted facts (or the database is inconsistent).

Soundness requires a *satisfiable* schema in the sense above; see the
rewriting data-flow notes in ``docs/architecture.md``.  Detection is
limited to class-membership inconsistency: a database overfilling a
declared *upper* cardinality bound is not flagged here (use
:meth:`Database.violations <repro.semantics.database.Database.violations>`
for closed-world integrity).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Optional, Sequence, Union

from ..core.budget import current_budget
from ..core.formulas import Lit, conjunction
from ..core.schema import AttrRef
from ..obs.tracer import NULL_TRACER
from ..semantics.database import Database
from ..semantics.interpretation import Interpretation
from .ast import (
    AttributeAtom,
    Atom,
    ClassAtom,
    ConjunctiveQuery,
    Const,
    RelationAtom,
    Term,
    Var,
)
from .rewriter import QueryRewriter, RewriteResult

__all__ = ["QueryAnswer", "certain_answers", "evaluate_disjuncts"]


@dataclass(frozen=True)
class QueryAnswer:
    """The outcome of one certain-answer computation."""

    variables: tuple[str, ...]
    answers: tuple[tuple, ...]
    boolean: bool
    is_boolean: bool
    disjuncts: int
    rewrite_steps: int
    disjuncts_generated: int
    disjuncts_pruned: int
    rewrite_cached: bool
    inconsistent: bool

    def as_document(self) -> dict:
        """The wire/JSON shape served by ``/v1/query`` and the CLI."""
        return {
            "variables": list(self.variables),
            "answers": [list(row) for row in self.answers],
            "boolean": self.boolean,
            "is_boolean": self.is_boolean,
            "disjuncts": self.disjuncts,
            "rewrite": {
                "steps": self.rewrite_steps,
                "generated": self.disjuncts_generated,
                "pruned": self.disjuncts_pruned,
                "cached": self.rewrite_cached,
            },
            "inconsistent": self.inconsistent,
        }


def evaluate_disjuncts(disjuncts: Iterable[ConjunctiveQuery],
                       interpretation: Interpretation) -> set[tuple]:
    """Plain (closed) evaluation of a union of CQs over asserted facts."""
    tick = current_budget().tick
    answers: set[tuple] = set()
    for disjunct in disjuncts:
        answers.update(_evaluate_one(disjunct, interpretation, tick))
    return answers


def _evaluate_one(query: ConjunctiveQuery,
                  interpretation: Interpretation, tick) -> set[tuple]:
    """Backtracking join over the atoms, most selective candidates first."""
    candidates: list[tuple[Atom, list[tuple]]] = []
    for atom in query.atoms:
        rows = _atom_rows(atom, interpretation)
        if not rows:
            return set()
        candidates.append((atom, rows))
    candidates.sort(key=lambda pair: len(pair[1]))

    answers: set[tuple] = set()

    def search(index: int, binding: dict[Var, object]) -> None:
        if index == len(candidates):
            answers.add(tuple(binding[var] for var in query.head))
            return
        atom, rows = candidates[index]
        terms = atom.terms()
        for row in rows:
            tick()
            extended = dict(binding)
            ok = True
            for term, value in zip(terms, row):
                if isinstance(term, Const):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = extended.get(term)
                    if bound is None:
                        extended[term] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                search(index + 1, extended)

    search(0, {})
    return answers


def _atom_rows(atom: Atom,
               interpretation: Interpretation) -> list[tuple]:
    if isinstance(atom, ClassAtom):
        return [(obj,) for obj in interpretation.class_ext(atom.name)]
    if isinstance(atom, AttributeAtom):
        return [tuple(pair)
                for pair in interpretation.attr_ref_ext(AttrRef(atom.name))]
    return [tuple(tup[role] for role in atom.roles)
            for tup in interpretation.relation_ext(atom.name)]


def certain_answers(rewriter: QueryRewriter, query: ConjunctiveQuery,
                    database: Optional[Database] = None, *,
                    reasoner=None,
                    tracer=None) -> QueryAnswer:
    """The certain answers of ``query`` over ``database`` (may be None).

    ``reasoner`` (a :class:`~repro.reasoner.satisfiability.Reasoner`) is
    consulted only for the inconsistency fallback; pass None to skip the
    check when the caller already knows the database is consistent.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    rewrite = rewriter.rewrite(query)
    interpretation = database.snapshot() if database is not None else None

    inconsistent = False
    if database is not None and reasoner is not None:
        inconsistent = _database_inconsistent(database, reasoner, rewriter)
    if inconsistent:
        tracer.add("qa.inconsistent_databases")
        objects = sorted(interpretation.universe, key=str) \
            if interpretation is not None else []
        rows = tuple(product(objects, repeat=query.arity)) \
            if not query.is_boolean else ()
        return _answer(query, rows, boolean=True, rewrite=rewrite,
                       inconsistent=True)

    with tracer.span("qa.evaluate"):
        if interpretation is None:
            answers: set[tuple] = set()
            if query.is_boolean and not query.atoms:
                answers.add(())
        else:
            answers = evaluate_disjuncts(rewrite.disjuncts, interpretation)
    rows = tuple(sorted(answers, key=lambda row: tuple(map(str, row))))
    tracer.add("qa.answers", len(rows))
    return _answer(query, rows, boolean=bool(rows), rewrite=rewrite,
                   inconsistent=False)


def _answer(query: ConjunctiveQuery, rows: tuple,
            boolean: bool, rewrite: RewriteResult,
            inconsistent: bool) -> QueryAnswer:
    return QueryAnswer(
        variables=tuple(var.name for var in query.head),
        answers=rows if not query.is_boolean else (),
        boolean=boolean,
        is_boolean=query.is_boolean,
        disjuncts=len(rewrite.disjuncts),
        rewrite_steps=rewrite.steps,
        disjuncts_generated=rewrite.generated,
        disjuncts_pruned=rewrite.pruned,
        rewrite_cached=rewrite.cached,
        inconsistent=inconsistent,
    )


def _database_inconsistent(database: Database, reasoner,
                           rewriter: QueryRewriter) -> bool:
    """Is some object's asserted class combination unrealizable?

    The cheap pre-check uses the closure's unsatisfiable set; the full
    check asks the reasoner for formula satisfiability of each distinct
    membership combination (memoized by combination).
    """
    tick = current_budget().tick
    snapshot = database.snapshot()
    unsatisfiable = set(rewriter.closure.unsatisfiable)
    combinations: set[frozenset[str]] = set()
    for obj in snapshot.universe:
        classes = snapshot.classes_of(obj)
        if not classes:
            continue
        if classes & unsatisfiable:
            return True
        combinations.add(frozenset(classes))
    for combination in combinations:
        tick()
        formula = conjunction(Lit(name) for name in sorted(combination))
        if not reasoner.is_formula_satisfiable(formula):
            return True
    return False
