"""Enumeration of consistent compound classes — naive and strategic.

The trivial method of Section 4.2 filters all ``2^|C|`` subsets.  The
strategic method of Section 4.3 enumerates, per cluster of ``G_S``
(Theorem 4.6), the models of the propositional theory ``{C → F_C}`` with a
DPLL-style backtracking search pruned by the preselection tables.  Both
methods return the same satisfiability verdicts; the strategic one can be
exponentially smaller and faster on clustered schemas, which benchmark
``bench_theorem46_strategies`` measures.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Optional, Sequence, Union

from ..core.budget import current_budget
from ..core.schema import Schema
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from .compound import is_consistent_compound_class
from .graph import clusters, hierarchy_compound_classes
from .tables import SchemaTables, build_tables

__all__ = [
    "naive_compound_classes",
    "dpll_compound_classes",
    "strategic_compound_classes",
    "compound_classes",
]


def naive_compound_classes(schema: Schema) -> list[frozenset[str]]:
    """Reference implementation: filter every subset of the class alphabet.

    Exponential in ``|C|`` always; kept as the baseline the paper's
    strategies are measured against.
    """
    tick = current_budget().tick
    symbols = sorted(schema.class_symbols)
    subsets = chain.from_iterable(
        combinations(symbols, k) for k in range(len(symbols) + 1)
    )
    results: list[frozenset[str]] = []
    for subset in subsets:
        tick()
        if is_consistent_compound_class(schema, frozenset(subset)):
            results.append(frozenset(subset))
    return results


def dpll_compound_classes(schema: Schema, universe: Sequence[str],
                          tables: Optional[SchemaTables] = None,
                          tracer: Union[Tracer, NullTracer] = NULL_TRACER
                          ) -> list[frozenset[str]]:
    """All consistent compound classes drawn from ``universe``.

    Classes outside ``universe`` are treated as false (the Theorem 4.6
    cluster assumption).  The search assigns classes one by one, tracking the
    clauses activated by true assignments; a branch dies as soon as an
    activated clause is falsified or the tables prove a disjointness/empty
    violation.

    ``tracer`` receives the search counters once per call:
    ``expansion.dpll_branches`` (assignments explored),
    ``expansion.dpll_clause_refuted`` (branches killed by a falsified
    clause), and ``expansion.dpll_table_pruned`` (branches killed by the
    preselection tables before any clause was evaluated).

    The search is governed by the ambient
    :class:`~repro.core.budget.Budget`: every node visit ticks it, so a
    deadline or step bound cuts the (worst-case exponential) search off
    with :class:`~repro.core.errors.BudgetExceeded`.
    """
    tick = current_budget().tick
    order = sorted(universe)
    inside = frozenset(order)

    # Pre-simplify each class's isa clauses against the all-false outside:
    # positive outside literals drop, negative outside literals satisfy the
    # whole clause.  Each remaining clause is a list of (name, wanted) pairs.
    simplified: dict[str, list[list[tuple[str, bool]]]] = {}
    for name in order:
        clause_list: list[list[tuple[str, bool]]] = []
        for clause in schema.definition(name).isa:
            pairs: list[tuple[str, bool]] = []
            satisfied_outside = False
            for lit in clause:
                if lit.name in inside:
                    pairs.append((lit.name, lit.positive))
                elif not lit.positive:
                    satisfied_outside = True
                    break
            if satisfied_outside:
                continue
            clause_list.append(pairs)
        simplified[name] = clause_list

    results: list[frozenset[str]] = []
    assignment: dict[str, bool] = {}
    chosen: list[str] = []
    # Search counters, kept as plain locals so the disabled-tracing path
    # pays integer increments only; reported to the tracer once at the end.
    counts = {"branches": 0, "clause_refuted": 0, "table_pruned": 0}

    def clause_status(pairs: list[tuple[str, bool]]) -> str:
        """'sat', 'unsat', or 'open' under the current partial assignment."""
        open_literal = False
        for name, wanted in pairs:
            value = assignment.get(name)
            if value is None:
                open_literal = True
            elif value == wanted:
                return "sat"
        return "open" if open_literal else "unsat"

    def active_clauses_ok() -> bool:
        for name in chosen:
            for pairs in simplified[name]:
                if clause_status(pairs) == "unsat":
                    return False
        return True

    def search(index: int) -> None:
        tick()
        if index == len(order):
            results.append(frozenset(chosen))
            return
        name = order[index]

        # Branch: name is false.
        counts["branches"] += 1
        assignment[name] = False
        if active_clauses_ok():
            search(index + 1)
        else:
            counts["clause_refuted"] += 1
        del assignment[name]

        # Branch: name is true.
        if tables is not None:
            if name in tables.empty_classes:
                counts["table_pruned"] += 1
                return
            if any(tables.are_disjoint(name, other) for other in chosen):
                counts["table_pruned"] += 1
                return
            # A provable superclass assigned false refutes the branch early.
            for sup in tables.superclasses(name):
                if sup in inside and assignment.get(sup) is False:
                    counts["table_pruned"] += 1
                    return
        counts["branches"] += 1
        assignment[name] = True
        chosen.append(name)
        if active_clauses_ok():
            search(index + 1)
        else:
            counts["clause_refuted"] += 1
        chosen.pop()
        del assignment[name]

    search(0)
    tracer.add("expansion.dpll_branches", counts["branches"])
    tracer.add("expansion.dpll_clause_refuted", counts["clause_refuted"])
    tracer.add("expansion.dpll_table_pruned", counts["table_pruned"])
    return results


def strategic_compound_classes(schema: Schema,
                               tables: Optional[SchemaTables] = None,
                               tracer: Union[Tracer, NullTracer] = NULL_TRACER
                               ) -> list[frozenset[str]]:
    """Section 4.3 strategy: preselection tables + per-cluster enumeration.

    Returns the consistent compound classes of the Theorem 4.6 schema ``S'``:
    each is contained in a single cluster of ``G_S``.
    """
    if tables is None:
        tables = build_tables(schema)
    results: list[frozenset[str]] = [frozenset()]
    for component in clusters(schema, tables):
        for compound in dpll_compound_classes(schema, sorted(component),
                                              tables, tracer=tracer):
            if compound:
                results.append(compound)
    return results


def compound_classes(schema: Schema, strategy: str = "auto",
                     tables: Optional[SchemaTables] = None,
                     tracer: Union[Tracer, NullTracer] = NULL_TRACER
                     ) -> list[frozenset[str]]:
    """Enumerate consistent compound classes with the requested strategy.

    * ``"naive"`` — filter all subsets (Section 4.2's trivial method);
    * ``"strategic"`` — tables + clusters + DPLL (Section 4.3);
    * ``"hierarchy"`` — the closed form for generalization hierarchies
      (Section 4.4); falls back to ``"strategic"`` when the schema is not a
      hierarchy;
    * ``"auto"`` — ``"hierarchy"`` when applicable, else ``"strategic"``.

    ``tables`` optionally supplies prebuilt preselection tables, shared by
    the caller across pipeline stages so the preselection pass runs once per
    schema (the naive strategy ignores them).
    """
    if strategy not in ("auto", "naive", "strategic", "hierarchy"):
        raise ValueError(f"unknown enumeration strategy {strategy!r}")
    if strategy == "naive":
        results = naive_compound_classes(schema)
        tracer.add("expansion.compound_classes", len(results))
        return results
    if tables is None:
        tables = build_tables(schema)
    if strategy in ("auto", "hierarchy"):
        from_hierarchy = hierarchy_compound_classes(schema, tables)
        if from_hierarchy is not None:
            tracer.add("expansion.hierarchy_closed_form")
            tracer.add("expansion.compound_classes", len(from_hierarchy))
            return from_hierarchy
    results = strategic_compound_classes(schema, tables, tracer=tracer)
    tracer.add("expansion.compound_classes", len(results))
    return results
