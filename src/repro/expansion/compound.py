"""Compound classes, compound attributes, compound relations (Section 3.1).

A **compound class** ``C̄`` is a subset of the class alphabet; it stands for
the objects that are instances of *exactly* the classes in ``C̄``.  We
represent it as a plain ``frozenset[str]`` (cheap, hashable) and provide the
paper's notions as functions:

* ``C̄`` *realizes* a class-formula ``F`` when the truth assignment ``Φ_C̄``
  (member classes true, all others false) satisfies ``F``;
* ``C̄`` is **consistent** when it realizes the isa-formula of each member;
* a **compound attribute** ``⟨C̄1, C̄2⟩_A`` is consistent when both endpoints
  are consistent and the attribute's filler formulae (direct on ``C̄1``,
  inverse on ``C̄2``) are realized by the opposite endpoint;
* a **compound relation** ``⟨U1: C̄1, …, UK: C̄K⟩_R`` is consistent when all
  endpoints are consistent and every role-clause of ``R`` has a realized
  role-literal.

The cardinality merges ``(u_max, v_min)`` of Definition 3.1 are
:func:`merged_attr_card` and :func:`merged_participation_card`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Optional

from ..core.cardinality import Card
from ..core.schema import AttrRef, Schema

__all__ = [
    "CompoundClass",
    "CompoundAttribute",
    "CompoundRelation",
    "AttributeTyping",
    "RelationTyping",
    "is_consistent_compound_class",
    "is_consistent_compound_attribute",
    "is_consistent_compound_relation",
    "merged_attr_card",
    "merged_participation_card",
]

#: A compound class is simply a frozen set of class symbols.
CompoundClass = frozenset


def is_consistent_compound_class(schema: Schema, members: AbstractSet[str]) -> bool:
    """Consistency of a compound class with respect to the schema.

    ``C̄`` is consistent iff for every class ``C ∈ C̄``, ``C̄`` realizes the
    class-formula in the isa part of the definition of ``C``.
    """
    return all(schema.definition(name).isa.satisfied_by(members) for name in members)


@dataclass(frozen=True, slots=True)
class CompoundAttribute:
    """An indexed pair ``⟨C̄1, C̄2⟩_A``: edges of attribute ``attr`` whose
    source lies exactly in ``left`` and target exactly in ``right``."""

    attr: str
    left: CompoundClass
    right: CompoundClass

    def __str__(self) -> str:
        return (f"<{{{', '.join(sorted(self.left))}}}, "
                f"{{{', '.join(sorted(self.right))}}}>_{self.attr}")


@dataclass(frozen=True, slots=True)
class CompoundRelation:
    """A labeled tuple of compound classes ``⟨U1: C̄1, …, UK: C̄K⟩_R``.

    ``assignment`` is stored sorted by role so instances hash structurally.
    """

    relation: str
    assignment: tuple[tuple[str, CompoundClass], ...]

    def __init__(self, relation: str,
                 assignment: Mapping[str, CompoundClass] | tuple):
        if isinstance(assignment, Mapping):
            pairs = tuple(sorted(assignment.items()))
        else:
            pairs = tuple(sorted(assignment))
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "assignment", pairs)

    def __getitem__(self, role: str) -> CompoundClass:
        for name, compound in self.assignment:
            if name == role:
                return compound
        raise KeyError(role)

    def roles(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.assignment)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{role}: {{{', '.join(sorted(compound))}}}"
            for role, compound in self.assignment
        )
        return f"<{inner}>_{self.relation}"


def _forward_fillers_ok(schema: Schema, attr: str, left: AbstractSet[str],
                        right: AbstractSet[str]) -> bool:
    """Every ``A : (u, v) F`` spec of a class in ``left`` must have ``F``
    realized by ``right``."""
    ref = AttrRef(attr)
    for name in left:
        spec = schema.definition(name).attribute_specs.get(ref)
        if spec is not None and not spec.filler.satisfied_by(right):
            return False
    return True


def _inverse_fillers_ok(schema: Schema, attr: str, left: AbstractSet[str],
                        right: AbstractSet[str]) -> bool:
    """Every ``(inv A) : (u, v) F`` spec of a class in ``right`` must have
    ``F`` realized by ``left``."""
    ref = AttrRef(attr, inverse=True)
    for name in right:
        spec = schema.definition(name).attribute_specs.get(ref)
        if spec is not None and not spec.filler.satisfied_by(left):
            return False
    return True


def is_consistent_compound_attribute(schema: Schema, compound: CompoundAttribute,
                                     *, endpoints_consistent: bool = False) -> bool:
    """Consistency of ``⟨C̄1, C̄2⟩_A`` (Section 3.1).

    Pass ``endpoints_consistent=True`` when both endpoints are already known
    to be consistent compound classes (the expansion builder does) to skip
    re-checking them.
    """
    if not endpoints_consistent:
        if not is_consistent_compound_class(schema, compound.left):
            return False
        if not is_consistent_compound_class(schema, compound.right):
            return False
    return (_forward_fillers_ok(schema, compound.attr, compound.left, compound.right)
            and _inverse_fillers_ok(schema, compound.attr, compound.left,
                                    compound.right))


def is_consistent_compound_relation(schema: Schema, compound: CompoundRelation,
                                    *, endpoints_consistent: bool = False) -> bool:
    """Consistency of ``⟨U1: C̄1, …, UK: C̄K⟩_R`` (Section 3.1)."""
    rdef = schema.relation(compound.relation)
    if frozenset(compound.roles()) != frozenset(rdef.roles):
        return False
    if not endpoints_consistent:
        for _, members in compound.assignment:
            if not is_consistent_compound_class(schema, members):
                return False
    for clause in rdef.constraints:
        if not any(lit.formula.satisfied_by(compound[lit.role]) for lit in clause):
            return False
    return True


class AttributeTyping:
    """Memoized per-endpoint typing checks for one attribute.

    The expansion builder probes ``O(|binding| · |classes|)`` candidate
    ``⟨C̄1, C̄2⟩_A`` pairs; the naive check re-fetches every member's
    attribute spec per pair.  This helper caches, per endpoint compound
    class, the tuple of filler formulae it imposes (source side for the
    direct reference, target side for the inverse), and caches each
    ``filler ⊨ endpoint`` evaluation, so a pair check degenerates to a few
    dictionary hits.  ``consistent(left, right)`` equals
    :func:`is_consistent_compound_attribute` with
    ``endpoints_consistent=True`` — an equivalence the test suite asserts.
    """

    __slots__ = ("_schema", "attr", "_direct", "_inverse",
                 "_forward", "_backward", "_satisfied",
                 "memo_hits", "memo_misses")

    def __init__(self, schema: Schema, attr: str):
        self._schema = schema
        self.attr = attr
        self._direct = AttrRef(attr)
        self._inverse = AttrRef(attr, inverse=True)
        self._forward: dict[frozenset, tuple] = {}
        self._backward: dict[frozenset, tuple] = {}
        self._satisfied: dict[tuple, bool] = {}
        #: ``filler ⊨ endpoint`` evaluations answered from / added to the
        #: memo — plain counters the expansion builder reports per attribute.
        self.memo_hits = 0
        self.memo_misses = 0

    def _fillers(self, members: frozenset, ref: AttrRef,
                 cache: dict[frozenset, tuple]) -> tuple:
        fillers = cache.get(members)
        if fillers is None:
            collected = []
            for name in members:
                spec = self._schema.definition(name).attribute_specs.get(ref)
                if spec is not None:
                    collected.append(spec.filler)
            fillers = cache[members] = tuple(collected)
        return fillers

    def _holds(self, filler, members: frozenset) -> bool:
        key = (filler, members)
        verdict = self._satisfied.get(key)
        if verdict is None:
            self.memo_misses += 1
            verdict = self._satisfied[key] = filler.satisfied_by(members)
        else:
            self.memo_hits += 1
        return verdict

    def consistent(self, left: frozenset, right: frozenset) -> bool:
        """Typing consistency of ``⟨left, right⟩`` for this attribute,
        assuming both endpoints are already consistent compound classes."""
        return (all(self._holds(filler, right)
                    for filler in self._fillers(left, self._direct, self._forward))
                and all(self._holds(filler, left)
                        for filler in self._fillers(right, self._inverse,
                                                    self._backward)))


class RelationTyping:
    """Memoized role-clause checks for one relation's compound candidates.

    Caches every ``role-literal ⊨ compound class`` evaluation, keyed by the
    literal's position and the endpoint, so enumerating the Cartesian
    candidate space re-evaluates no formula twice.  ``consistent`` over a
    role assignment equals :func:`is_consistent_compound_relation` with
    ``endpoints_consistent=True`` (roles assumed complete)."""

    __slots__ = ("_constraints", "_satisfied", "memo_hits", "memo_misses")

    def __init__(self, schema: Schema, relation: str):
        self._constraints = schema.relation(relation).constraints
        self._satisfied: dict[tuple, bool] = {}
        #: Role-literal evaluations answered from / added to the memo.
        self.memo_hits = 0
        self.memo_misses = 0

    def _lit_holds(self, clause_index: int, lit_index: int, lit,
                   members: frozenset) -> bool:
        key = (clause_index, lit_index, members)
        verdict = self._satisfied.get(key)
        if verdict is None:
            self.memo_misses += 1
            verdict = self._satisfied[key] = lit.formula.satisfied_by(members)
        else:
            self.memo_hits += 1
        return verdict

    def consistent(self, assignment: Mapping[str, frozenset]) -> bool:
        """Every role-clause has a realized role-literal under ``assignment``."""
        for clause_index, clause in enumerate(self._constraints):
            if not any(self._lit_holds(clause_index, lit_index, lit,
                                       assignment[lit.role])
                       for lit_index, lit in enumerate(clause)):
                return False
        return True


def merged_attr_card(schema: Schema, members: AbstractSet[str],
                     ref: AttrRef) -> Optional[Card]:
    """The ``(u_max, v_min)`` entry of ``Natt`` for compound class ``members``
    and attribute reference ``ref`` — None when no member constrains ``ref``.

    The merged interval may be empty (e.g. specs ``(2, 3)`` and ``(0, 1)``
    in two member classes); an empty interval forces the compound class to be
    empty, which the linear system encodes as ``Var(C̄) = 0``.
    """
    merged: Optional[Card] = None
    for name in members:
        spec = schema.definition(name).attribute_specs.get(ref)
        if spec is None:
            continue
        merged = spec.card if merged is None else merged.intersect(spec.card)
    return merged


def merged_participation_card(schema: Schema, members: AbstractSet[str],
                              relation: str, role: str) -> Optional[Card]:
    """The ``(x_max, y_min)`` entry of ``Nrel`` for compound class ``members``
    and relation role ``relation[role]`` — None when unconstrained."""
    merged: Optional[Card] = None
    for name in members:
        spec = schema.definition(name).participation_specs.get((relation, role))
        if spec is None:
            continue
        merged = spec.card if merged is None else merged.intersect(spec.card)
    return merged
