"""Inclusion and disjointness tables — the preselection step of Section 4.3.

The paper proposes two data structures filled during a *preselection* pass:

* an **inclusion table** storing pairs ``(C1, C2)`` such that ``C1`` is
  necessarily included in ``C2`` in every model;
* a **disjointness table** storing pairs that are disjoint in every model.

Criterion (a): derive inclusion/disjointness that *logically follows* from
the isa parts.  Complete deduction is NP-complete, so — as the paper
suggests, citing [Dal92]'s tractable fragments — we use a sound,
polynomial, incomplete procedure with two strength levels:

* ``deduction="unit"`` — unit-clause propagation: a unit clause ``(D)`` in
  the isa of ``C`` yields ``C ⊑ D``, a unit ``(¬D)`` yields disjointness,
  closed transitively.
* ``deduction="binary"`` (default) — additionally resolves **two-literal
  clauses** against already-derived literals: from ``C ⊑ D``, a clause
  ``(L1 ∨ L2)`` in the isa of ``D``, and a derived ``¬L1``, conclude
  ``L2`` — iterated to a fixpoint (the Krom-fragment closure).

The tables prune the compound-class enumeration: every entry removes the
quarter of candidate compound classes violating it.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from ..core.formulas import Lit
from ..core.schema import Schema

__all__ = ["SchemaTables", "build_tables"]


class SchemaTables:
    """Preselection tables: derived inclusions, disjointnesses, empty classes.

    For every class ``C`` the closure computes ``implied(C)`` — literals
    true of every instance of ``C``.  ``superclasses(C)`` is its positive
    part; ``are_disjoint(C1, C2)`` holds when the closures clash;
    ``empty_classes`` holds classes whose own closure is contradictory.
    """

    def __init__(self, schema: Schema, deduction: str = "binary"):
        if deduction not in ("unit", "binary"):
            raise ValueError(f"unknown deduction level {deduction!r}")
        self._schema = schema
        self._deduction = deduction
        symbols = sorted(schema.class_symbols)
        self._symbols = symbols

        # implied[C]: literals that hold for every instance of C.
        implied: dict[str, set[Lit]] = {
            name: {Lit(name)} for name in symbols}
        # Short clauses per class: units seed directly, binaries resolve.
        units: dict[str, list[Lit]] = {name: [] for name in symbols}
        binaries: dict[str, list[tuple[Lit, Lit]]] = {name: [] for name in symbols}
        for name in symbols:
            for clause in schema.definition(name).isa:
                if len(clause) == 1:
                    units[name].append(clause.literals[0])
                elif len(clause) == 2 and deduction == "binary":
                    first, second = clause.literals
                    binaries[name].append((first, second))

        changed = True
        while changed:
            changed = False
            for name in symbols:
                bag = implied[name]
                before = len(bag)
                for lit in list(bag):
                    if not lit.positive:
                        continue
                    # Inherit the closure of every implied superclass.
                    bag.update(units[lit.name])
                    bag.update(implied[lit.name])
                    # Resolve its binary clauses against derived negations.
                    for first, second in binaries[lit.name]:
                        if ~first in bag:
                            bag.add(second)
                        if ~second in bag:
                            bag.add(first)
                if len(bag) != before:
                    changed = True

        # Retained for the incremental extension path (extended_with).
        self._units = {name: tuple(lits) for name, lits in units.items()}
        self._binaries = {name: tuple(pairs) for name, pairs in binaries.items()}
        self._implied = {name: frozenset(bag) for name, bag in implied.items()}
        self._up = {
            name: frozenset(lit.name for lit in bag if lit.positive)
            for name, bag in self._implied.items()
        }
        self._neg = {
            name: frozenset(lit.name for lit in bag if not lit.positive)
            for name, bag in self._implied.items()
        }

        self._empty: set[str] = set()
        for name in symbols:
            if self._up[name] & self._neg[name]:
                self._empty.add(name)
        # A class included in an empty class is itself empty.
        for name in symbols:
            if self._up[name] & self._empty:
                self._empty.add(name)

        self._disjoint: set[frozenset[str]] = set()
        for i, c1 in enumerate(symbols):
            for c2 in symbols[i + 1:]:
                if self._clash(c1, c2):
                    self._disjoint.add(frozenset((c1, c2)))

    def _clash(self, c1: str, c2: str) -> bool:
        """Do the closures of ``c1`` and ``c2`` contradict each other?"""
        if self._up[c1] & self._neg[c2] or self._up[c2] & self._neg[c1]:
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def deduction(self) -> str:
        return self._deduction

    def implied_literals(self, name: str) -> frozenset[Lit]:
        """Every literal the closure derives for instances of ``name``."""
        return self._implied.get(name, frozenset((Lit(name),)))

    def superclasses(self, name: str) -> frozenset[str]:
        """Classes that provably include ``name`` (reflexive)."""
        return self._up.get(name, frozenset((name,)))

    def includes(self, sub: str, sup: str) -> bool:
        """True when the table proves ``sub ⊑ sup``."""
        return sup in self.superclasses(sub)

    def are_disjoint(self, c1: str, c2: str) -> bool:
        """True when the table proves ``c1`` and ``c2`` share no instance."""
        if c1 == c2:
            return c1 in self._empty
        return frozenset((c1, c2)) in self._disjoint

    @property
    def empty_classes(self) -> frozenset[str]:
        """Classes refuted outright by the closure."""
        return frozenset(self._empty)

    @property
    def disjoint_pairs(self) -> frozenset[frozenset[str]]:
        return frozenset(self._disjoint)

    def why_empty(self, name: str) -> str | None:
        """A human-readable derivation of why ``name`` is provably empty.

        Names the contradicting pair from the closure; None when the table
        has no refutation for ``name``.
        """
        if name not in self._empty:
            return None
        conflicting = sorted(self._up[name] & self._neg[name])
        if conflicting:
            witness = conflicting[0]
            includer = next(
                (anc for anc in sorted(self._up[name])
                 if witness in self._neg.get(anc, frozenset()) and anc != name),
                None)
            via = f" via {includer}" if includer else ""
            return (f"{name} provably implies both {witness} and "
                    f"not {witness}{via}")
        ancestor = next(iter(sorted(self._up[name] & self._empty - {name})),
                        None)
        if ancestor:
            return f"{name} is included in the provably empty class {ancestor}"
        return f"{name} is refuted by propagation over the isa parts"

    # ------------------------------------------------------------------
    # Incremental extension (augmented-query fast path)
    # ------------------------------------------------------------------
    def extended_with(self, schema: Schema, name: str) -> "SchemaTables":
        """Tables for ``schema`` — this schema plus the *fresh* class ``name``.

        Requires that no pre-existing definition mentions ``name`` (the
        reasoner's query classes satisfy this by construction).  Then every
        base closure row is already final — the fixpoint for an old class
        never inspects the new one — so only the new class's row, its empty
        check, and its disjointness pairs need computing: ``O(|C|)`` clash
        checks instead of the full ``O(|C|²)`` preselection pass.  The
        equivalence with :func:`build_tables` on the augmented schema is
        asserted by the test suite.
        """
        cdef = schema.definition(name)
        if name in self._implied:
            raise ValueError(f"class {name!r} already has a table row")

        units: list[Lit] = []
        binaries: list[tuple[Lit, Lit]] = []
        for clause in cdef.isa:
            if len(clause) == 1:
                units.append(clause.literals[0])
            elif len(clause) == 2 and self._deduction == "binary":
                first, second = clause.literals
                binaries.append((first, second))

        bag: set[Lit] = {Lit(name)}
        bag.update(units)
        changed = True
        while changed:
            before = len(bag)
            for lit in list(bag):
                if not lit.positive or lit.name == name:
                    continue
                # Base rows are final: one update pulls the full closure.
                bag.update(self._implied.get(lit.name, frozenset((lit,))))
                for first, second in self._binaries.get(lit.name, ()):
                    if ~first in bag:
                        bag.add(second)
                    if ~second in bag:
                        bag.add(first)
            for first, second in binaries:
                if ~first in bag:
                    bag.add(second)
                if ~second in bag:
                    bag.add(first)
            changed = len(bag) != before

        extended = SchemaTables.__new__(SchemaTables)
        extended._schema = schema
        extended._deduction = self._deduction
        extended._symbols = sorted(set(self._symbols) | {name})
        extended._units = {**self._units, name: tuple(units)}
        extended._binaries = {**self._binaries, name: tuple(binaries)}
        extended._implied = {**self._implied, name: frozenset(bag)}
        up = frozenset(lit.name for lit in bag if lit.positive)
        neg = frozenset(lit.name for lit in bag if not lit.positive)
        extended._up = {**self._up, name: up}
        extended._neg = {**self._neg, name: neg}
        empty = set(self._empty)
        if up & neg or up & empty:
            empty.add(name)
        extended._empty = empty
        disjoint = set(self._disjoint)
        for other in self._symbols:
            if other != name and extended._clash(name, other):
                disjoint.add(frozenset((name, other)))
        extended._disjoint = disjoint
        return extended

    # ------------------------------------------------------------------
    # Pruning interface for the enumerator
    # ------------------------------------------------------------------
    def closure(self, members: AbstractSet[str]) -> frozenset[str]:
        """All classes a compound class containing ``members`` must contain."""
        result: set[str] = set()
        for name in members:
            result.update(self.superclasses(name))
        return frozenset(result)

    def admissible(self, members: Iterable[str]) -> bool:
        """False when ``members`` hits an empty class, misses a forced
        superclass, or contains a provably disjoint pair — such a compound
        class cannot be consistent."""
        member_list = list(members)
        member_set = set(member_list)
        for name in member_list:
            if name in self._empty:
                return False
            if not self.superclasses(name) <= member_set:
                return False
        for i, c1 in enumerate(member_list):
            for c2 in member_list[i + 1:]:
                if frozenset((c1, c2)) in self._disjoint:
                    return False
        return True


def build_tables(schema: Schema, deduction: str = "binary") -> SchemaTables:
    """Run the preselection pass and return the filled tables."""
    return SchemaTables(schema, deduction)
