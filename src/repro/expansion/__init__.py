"""Phase 1 of the reasoning method: the expansion of a CAR schema."""

from .compound import (
    CompoundAttribute,
    CompoundClass,
    CompoundRelation,
    is_consistent_compound_attribute,
    is_consistent_compound_class,
    is_consistent_compound_relation,
    merged_attr_card,
    merged_participation_card,
)
from .enumerate import (
    compound_classes,
    dpll_compound_classes,
    naive_compound_classes,
    strategic_compound_classes,
)
from .expansion import Expansion, build_expansion
from .graph import (
    clusters,
    hierarchy_compound_classes,
    hierarchy_forest,
    impose_cluster_disjointness,
    schema_graph,
)
from .tables import SchemaTables, build_tables

__all__ = [
    "CompoundAttribute", "CompoundClass", "CompoundRelation",
    "is_consistent_compound_attribute", "is_consistent_compound_class",
    "is_consistent_compound_relation", "merged_attr_card",
    "merged_participation_card",
    "compound_classes", "dpll_compound_classes", "naive_compound_classes",
    "strategic_compound_classes",
    "Expansion", "build_expansion",
    "clusters", "hierarchy_compound_classes", "hierarchy_forest",
    "impose_cluster_disjointness", "schema_graph",
    "SchemaTables", "build_tables",
]
