"""The schema graph ``G_S``, clusters, and hierarchy detection (Sections 4.3–4.4).

Theorem 4.6: classes not connected by a path in ``G_S`` may be assumed
pairwise disjoint without affecting class satisfiability.  The connected
components of ``G_S`` are the paper's **clusters**; compound classes then
only mix classes of a single cluster, which can shrink the expansion
dramatically.

Our arc set follows the paper's three criteria and errs on the side of
*more* arcs (extra arcs only weaken the optimization, never correctness):

1. ``C2`` appears positively in the isa-formula of ``C1`` — arc ``C1–C2``;
2. classes appearing positively in the attribute part of the same class
   definition are pairwise connected, and each is connected to the defined
   class (the defined class itself can be an attribute filler through
   inverse links);
3. for each relation role, classes appearing positively in the role's
   formulae across all role-clauses are pairwise connected, and classes
   *participating* in that role are connected to them as well.

Arcs between pairs the disjointness table already proves disjoint are
removed (the paper's step 3).

Section 4.4's special case — **generalization hierarchies** — is detected by
:func:`hierarchy_forest`; for such schemas the consistent compound classes
are exactly the root-to-node paths, computed directly by
:func:`hierarchy_compound_classes`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..core.formulas import Formula
from ..core.schema import Schema
from .tables import SchemaTables

__all__ = [
    "schema_graph",
    "clusters",
    "impose_cluster_disjointness",
    "hierarchy_forest",
    "hierarchy_compound_classes",
]


def _positive(formula: Formula) -> frozenset[str]:
    return formula.positive_classes()


def schema_graph(schema: Schema,
                 tables: Optional[SchemaTables] = None) -> dict[str, set[str]]:
    """Adjacency sets of ``G_S`` over every class symbol of the schema."""
    adjacency: dict[str, set[str]] = {name: set() for name in schema.class_symbols}

    def connect(c1: str, c2: str) -> None:
        if c1 != c2:
            adjacency[c1].add(c2)
            adjacency[c2].add(c1)

    def connect_all(group: set[str]) -> None:
        for c1, c2 in combinations(sorted(group), 2):
            connect(c1, c2)

    # Criterion 1: positive classes in isa parts.
    for cdef in schema.class_definitions:
        for positive in _positive(cdef.isa):
            connect(cdef.name, positive)

    # Criterion 2: positive classes across one class's attribute part.
    for cdef in schema.class_definitions:
        group = {cdef.name}
        for spec in cdef.attributes:
            group.update(_positive(spec.filler))
        connect_all(group)

    # Criterion 3: per relation role, positive classes in its formulae plus
    # the classes participating in that role.
    role_groups: dict[tuple[str, str], set[str]] = {}
    for rdef in schema.relation_definitions:
        for clause in rdef.constraints:
            for lit in clause:
                group = role_groups.setdefault((rdef.name, lit.role), set())
                group.update(_positive(lit.formula))
    for cdef in schema.class_definitions:
        for spec in cdef.participates:
            group = role_groups.setdefault((spec.relation, spec.role), set())
            group.add(cdef.name)
    for group in role_groups.values():
        connect_all(group)

    # Step 3 of the construction: drop arcs between provably disjoint pairs.
    if tables is not None:
        for name, neighbours in adjacency.items():
            for other in [n for n in neighbours if tables.are_disjoint(name, n)]:
                neighbours.discard(other)
                adjacency[other].discard(name)

    return adjacency


def clusters(schema: Schema,
             tables: Optional[SchemaTables] = None) -> list[frozenset[str]]:
    """Connected components of ``G_S``, sorted for determinism."""
    adjacency = schema_graph(schema, tables)
    seen: set[str] = set()
    components: list[frozenset[str]] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen.update(component)
        components.append(frozenset(component))
    return components


def impose_cluster_disjointness(schema: Schema,
                                tables: Optional[SchemaTables] = None) -> Schema:
    """The schema ``S'`` of Theorem 4.6: explicit disjointness between every
    pair of classes in different clusters.

    Satisfiability of every class is preserved; the test suite checks this
    against the brute-force oracle.
    """
    from ..core.formulas import Clause, Lit
    from ..core.schema import ClassDef

    component_of: dict[str, int] = {}
    for index, component in enumerate(clusters(schema, tables)):
        for name in component:
            component_of[name] = index

    symbols = sorted(schema.class_symbols)
    new_classes: list[ClassDef] = []
    for name in symbols:
        cdef = schema.definition(name)
        foreign = [other for other in symbols
                   if other != name and component_of[other] != component_of[name]]
        if not foreign:
            if name in {c.name for c in schema.class_definitions}:
                new_classes.append(cdef)
            continue
        isa = cdef.isa
        for other in foreign:
            isa = isa & Clause((Lit(other, positive=False),))
        new_classes.append(cdef.replace(isa=isa))
    defined = {c.name for c in new_classes}
    for cdef in schema.class_definitions:
        if cdef.name not in defined:
            new_classes.append(cdef)
    return Schema(new_classes, schema.relation_definitions)


# ----------------------------------------------------------------------
# Generalization hierarchies (Section 4.4)
# ----------------------------------------------------------------------
def hierarchy_forest(schema: Schema) -> Optional[dict[str, Optional[str]]]:
    """Detect the generalization-hierarchy shape of Section 4.4.

    Returns ``child -> parent`` (roots map to None) when the schema is
    union-free with isa parts consisting solely of at most one positive unit
    clause per class (plus any negative unit clauses, which encode the
    sibling/group disjointness the hierarchy assumes), acyclic, and without
    multiple parents.  Returns None when the schema is not of this shape.
    """
    parent: dict[str, Optional[str]] = {}
    for name in sorted(schema.class_symbols):
        cdef = schema.definition(name)
        positives: list[str] = []
        for clause in cdef.isa:
            if len(clause) != 1:
                return None
            lit = clause.literals[0]
            if lit.positive:
                positives.append(lit.name)
        if len(positives) > 1:
            return None
        parent[name] = positives[0] if positives else None
    # Acyclicity check.
    for name in parent:
        seen = {name}
        current = parent[name]
        while current is not None:
            if current in seen:
                return None
            seen.add(current)
            current = parent.get(current)
    return parent


def hierarchy_compound_classes(schema: Schema,
                               tables: Optional[SchemaTables] = None
                               ) -> Optional[list[frozenset[str]]]:
    """Compound classes of a generalization hierarchy: root-to-node paths.

    The closed form is sound only under the hierarchy assumption the paper
    inherits from [BCN92]: classes that are not ancestor-related must be
    pairwise disjoint.  We therefore verify, via the preselection tables,
    that every incomparable pair is provably disjoint; when that holds, each
    consistent compound class is a chain closed under parents — exactly the
    ancestor path of its most specific class — so there is one per class
    (plus the empty one), matching Section 4.4's count.  Returns None when
    the schema is not of this shape.
    """
    parent = hierarchy_forest(schema)
    if parent is None:
        return None

    def ancestors(name: str) -> frozenset[str]:
        path = {name}
        current = parent[name]
        while current is not None:
            path.add(current)
            current = parent[current]
        return frozenset(path)

    if tables is None:
        from .tables import build_tables

        tables = build_tables(schema)
    symbols = sorted(schema.class_symbols)
    paths = {name: ancestors(name) for name in symbols}
    for i, c1 in enumerate(symbols):
        for c2 in symbols[i + 1:]:
            comparable = c1 in paths[c2] or c2 in paths[c1]
            if not comparable and not tables.are_disjoint(c1, c2):
                return None

    # Declared disjointness may also refute a path outright (a class disjoint
    # from its own ancestor); filter those.
    from .compound import is_consistent_compound_class

    result: list[frozenset[str]] = [frozenset()]
    result.extend(path for path in paths.values()
                  if is_consistent_compound_class(schema, path))
    return result
