"""Construction of the expansion ``S̄`` of a CAR schema (Definition 3.1).

The expansion consists of

* all consistent compound classes,
* all consistent compound attributes ``⟨C̄1, C̄2⟩_A``,
* all consistent compound relations ``⟨U1: C̄1, …⟩_R``,
* the cardinality maps ``Natt`` and ``Nrel``.

Compound attributes and relations that no *binding* ``Natt``/``Nrel`` entry
touches are omitted by default (binding: positive lower bound or finite
upper bound).  Such compound objects occur in no disequation of ``Ψ_S``, so
they can always be interpreted freely; set ``include_unconstrained=True`` to
build Definition 3.1 verbatim, which the unit tests do on small schemas.

Two throughput devices shape this module:

* **Binding-endpoint pruning** — instead of filtering the full Cartesian
  candidate space ``classes × classes`` (resp. ``classes^arity``), the
  builder precomputes the compound classes carrying a *binding* ``Natt`` /
  ``Nrel`` entry per attribute reference / relation role and enumerates only
  ``binding_left × classes ∪ classes × binding_right`` (resp. the per-role
  first-binding-position decomposition) — exactly the candidates the default
  filter would keep.
* **Endpoint indexes** — :meth:`Expansion.attributes_with_left`,
  :meth:`Expansion.attributes_with_right`, and
  :meth:`Expansion.relations_with_role` answer from prebuilt
  ``(symbol, endpoint) → tuple`` dictionaries instead of scanning the
  compound-object lists, which keeps the ``Ψ_S`` build linear in the number
  of summands instead of quadratic.  ``dataclasses.replace(expansion,
  indexed=False)`` restores the linear scans for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Optional, Sequence, Union

from ..core.budget import current_budget
from ..core.cardinality import Card, INFINITY
from ..core.errors import ReasoningError
from ..core.schema import AttrRef, Schema
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer
from .compound import (
    AttributeTyping,
    CompoundAttribute,
    CompoundRelation,
    RelationTyping,
    merged_attr_card,
    merged_participation_card,
)
from .enumerate import compound_classes as enumerate_compound_classes

__all__ = ["Expansion", "build_expansion", "build_expansion_delta",
           "is_binding"]


def is_binding(card: Card) -> bool:
    """True when a merged cardinality interval yields a disequation at all:
    ``(0, ∞)`` entries constrain nothing and are skipped when selecting the
    compound attributes/relations to materialize."""
    return card.lower > 0 or card.upper is not INFINITY


@dataclass(frozen=True)
class Expansion:
    """The expansion ``S̄``: compound objects plus ``Natt`` / ``Nrel``.

    ``indexed`` controls the endpoint-lookup implementation: prebuilt
    dictionaries (default) versus the legacy linear scans, kept for the
    ablation benchmarks and the index-equivalence tests.
    """

    schema: Schema
    compound_classes: tuple[frozenset, ...]
    compound_attributes: dict[str, tuple[CompoundAttribute, ...]]
    compound_relations: dict[str, tuple[CompoundRelation, ...]]
    natt: dict[tuple[frozenset, AttrRef], Card]
    nrel: dict[tuple[frozenset, str, str], Card]
    strategy: str = "strategic"
    indexed: bool = True
    #: Lazily built endpoint indexes (not part of equality/representation).
    _indexes: Optional[dict] = field(default=None, repr=False, compare=False)

    def size(self) -> int:
        """Total number of compound objects (the paper's expansion size)."""
        return (len(self.compound_classes)
                + sum(len(v) for v in self.compound_attributes.values())
                + sum(len(v) for v in self.compound_relations.values()))

    def compound_classes_containing(self, class_name: str) -> list[frozenset]:
        """The compound classes whose member set includes ``class_name``."""
        return [members for members in self.compound_classes if class_name in members]

    # ------------------------------------------------------------------
    # Endpoint lookups (the summand sets of the Ψ_S disequations)
    # ------------------------------------------------------------------
    def _endpoint_indexes(self) -> dict:
        """Build (once) the endpoint → compound-object indexes.

        Three dictionaries: ``left[(attr, C̄)]`` and ``right[(attr, C̄)]``
        over compound attributes, ``role[(relation, role, C̄)]`` over
        compound relations.  One linear pass over the expansion replaces the
        per-entry linear scans that made the Ψ_S build quadratic.
        """
        indexes = self._indexes
        if indexes is None:
            left: dict[tuple, list] = {}
            right: dict[tuple, list] = {}
            by_role: dict[tuple, list] = {}
            for attr, compounds in self.compound_attributes.items():
                for ca in compounds:
                    left.setdefault((attr, ca.left), []).append(ca)
                    right.setdefault((attr, ca.right), []).append(ca)
            for relation, compounds in self.compound_relations.items():
                for cr in compounds:
                    for role, members in cr.assignment:
                        by_role.setdefault((relation, role, members),
                                           []).append(cr)
            indexes = {
                "left": {key: tuple(v) for key, v in left.items()},
                "right": {key: tuple(v) for key, v in right.items()},
                "role": {key: tuple(v) for key, v in by_role.items()},
            }
            object.__setattr__(self, "_indexes", indexes)
        return indexes

    def attributes_with_left(self, attr: str,
                             members: frozenset) -> tuple[CompoundAttribute, ...]:
        """Compound attributes of ``attr`` whose source endpoint is ``members``
        (the summands of ``S(A, C̄)``)."""
        if not self.indexed:
            return tuple(ca for ca in self.compound_attributes.get(attr, ())
                         if ca.left == members)
        return self._endpoint_indexes()["left"].get((attr, members), ())

    def attributes_with_right(self, attr: str,
                              members: frozenset) -> tuple[CompoundAttribute, ...]:
        """Compound attributes of ``attr`` whose target endpoint is ``members``
        (the summands of ``S((inv A), C̄)``)."""
        if not self.indexed:
            return tuple(ca for ca in self.compound_attributes.get(attr, ())
                         if ca.right == members)
        return self._endpoint_indexes()["right"].get((attr, members), ())

    def relations_with_role(self, relation: str, role: str,
                            members: frozenset) -> tuple[CompoundRelation, ...]:
        """Compound relations of ``relation`` assigning ``members`` to ``role``."""
        if not self.indexed:
            return tuple(cr for cr in self.compound_relations.get(relation, ())
                         if cr[role] == members)
        return self._endpoint_indexes()["role"].get((relation, role, members), ())

    def summary(self) -> str:
        lines = [
            f"expansion ({self.strategy}): {len(self.compound_classes)} compound classes",
        ]
        for attr in sorted(self.compound_attributes):
            lines.append(
                f"  attribute {attr}: {len(self.compound_attributes[attr])} compound attributes"
            )
        for rel in sorted(self.compound_relations):
            lines.append(
                f"  relation {rel}: {len(self.compound_relations[rel])} compound relations"
            )
        lines.append(f"  |Natt| = {len(self.natt)}, |Nrel| = {len(self.nrel)}")
        return "\n".join(lines)


#: Placeholder interval for absent entries in the binding tests above.
_FREE = Card(0, INFINITY)


class _SizeBudget:
    """Cumulative compound-object counter enforcing ``size_limit``.

    One bound over the *total* number of compound objects (classes +
    attributes + relations), charged as each object materializes — the
    guard the ``size_limit`` parameter documents, replacing the historical
    inconsistent mix of a total bound on classes and per-attribute /
    per-relation bounds on the rest.
    """

    __slots__ = ("limit", "count")

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self.count = 0

    def charge(self, amount: int, what: str) -> None:
        self.count += amount
        if self.limit is not None and self.count > self.limit:
            raise ReasoningError(
                f"expansion exceeds size limit while building {what}: "
                f"{self.count} compound objects > {self.limit}")


def build_expansion(schema: Schema, strategy: str = "auto", *,
                    include_unconstrained: bool = False,
                    size_limit: Optional[int] = None,
                    tables=None,
                    precomputed_classes: Optional[Sequence[frozenset]] = None,
                    tracer: Union[Tracer, NullTracer] = NULL_TRACER
                    ) -> Expansion:
    """Build the expansion of ``schema``.

    Parameters
    ----------
    strategy:
        Compound-class enumeration strategy (see
        :func:`repro.expansion.enumerate.compound_classes`).
    include_unconstrained:
        Also include compound attributes/relations that no ``Natt``/``Nrel``
        entry mentions (Definition 3.1 verbatim).
    size_limit:
        Abort with :class:`ReasoningError` when the cumulative number of
        compound objects (classes + attributes + relations) would exceed
        this bound — a guard for adversarial schemas.
    tables:
        Optional prebuilt :class:`~repro.expansion.tables.SchemaTables`,
        reused by the strategic enumeration instead of running the
        preselection pass again.
    precomputed_classes:
        Optional compound classes to use verbatim (skipping enumeration) —
        the incremental augmented-query path of the reasoner supplies the
        merged-cluster result here.
    tracer:
        Observability bus receiving the enumeration counters
        (``expansion.compound_classes``, the DPLL search counters) and the
        builder counters (``expansion.candidates_examined`` /
        ``expansion.candidates_pruned`` against the full Cartesian space,
        ``expansion.memo_hits`` / ``expansion.memo_misses`` of the typing
        memos).  Defaults to the disabled bus.

    The candidate loops (and the per-class ``Natt``/``Nrel`` merges) tick
    the ambient :class:`~repro.core.budget.Budget`, so a deadline or step
    bound stops an exploding expansion with
    :class:`~repro.core.errors.BudgetExceeded` — the cooperative analogue
    of the ``size_limit`` memory guard.
    """
    tick = current_budget().tick
    budget = _SizeBudget(size_limit)
    if precomputed_classes is not None:
        classes = tuple(precomputed_classes)
        tracer.add("expansion.precomputed_classes", len(classes))
    else:
        classes = tuple(enumerate_compound_classes(schema, strategy,
                                                   tables=tables,
                                                   tracer=tracer))
    budget.charge(len(classes), "compound classes")

    natt: dict[tuple[frozenset, AttrRef], Card] = {}
    for members in classes:
        tick()
        for ref in schema.attribute_refs():
            merged = merged_attr_card(schema, members, ref)
            if merged is not None:
                natt[(members, ref)] = merged

    nrel: dict[tuple[frozenset, str, str], Card] = {}
    participation_keys = {
        (spec.relation, spec.role)
        for cdef in schema.class_definitions for spec in cdef.participates
    }
    for members in classes:
        tick()
        for relation, role in participation_keys:
            merged = merged_participation_card(schema, members, relation, role)
            if merged is not None:
                nrel[(members, relation, role)] = merged

    compound_attributes = _build_compound_attributes(
        schema, classes, natt, include_unconstrained, budget, tracer)
    compound_relations = _build_compound_relations(
        schema, classes, nrel, include_unconstrained, budget, tracer)

    return Expansion(
        schema=schema,
        compound_classes=classes,
        compound_attributes=compound_attributes,
        compound_relations=compound_relations,
        natt=natt,
        nrel=nrel,
        strategy=strategy,
    )


def build_expansion_delta(schema: Schema, classes: Sequence[frozenset],
                          reused: frozenset, old: Expansion, *,
                          strategy: str = "strategic",
                          touched_relations: frozenset = frozenset(),
                          size_limit: Optional[int] = None,
                          tracer: Union[Tracer, NullTracer] = NULL_TRACER
                          ) -> Expansion:
    """Build the expansion of ``schema`` reusing rows of a previous one.

    ``classes`` is the full (merged) compound-class list; members of
    ``reused`` come verbatim from ``old`` — clusters the delta planner
    (:func:`repro.engine.delta.seed_delta`) proved untouched.  For those,
    the ``Natt``/``Nrel`` entries and the compound attributes/relations
    with *every* endpoint reused are copied from ``old`` instead of being
    re-derived: both are functions of the member definitions alone, which
    the planner guarantees unchanged.  Only candidates with at least one
    fresh endpoint are probed, via a fresh-restricted refinement of the
    binding-endpoint decomposition, so each relevant new candidate is
    generated exactly once.  Relations in ``touched_relations`` (their
    definition changed) re-enumerate from scratch — compound-relation
    consistency reads the relation definition, so their old rows are not
    trustworthy even between reused endpoints.

    The ``size_limit`` accounting matches :func:`build_expansion`: reused
    objects are charged too, so the guard trips on the same totals a cold
    build would.
    """
    tick = current_budget().tick
    budget = _SizeBudget(size_limit)
    classes = tuple(classes)
    budget.charge(len(classes), "compound classes")
    tracer.add("expansion.delta_reused_classes", len(reused))
    tracer.add("expansion.delta_fresh_classes", len(classes) - len(reused))

    # Natt/Nrel rows: copy for reused members, merge for fresh ones.
    old_natt_by_members: dict[frozenset, list] = {}
    for (members, ref), card in old.natt.items():
        old_natt_by_members.setdefault(members, []).append((ref, card))
    natt: dict[tuple[frozenset, AttrRef], Card] = {}
    refs = schema.attribute_refs()
    for members in classes:
        tick()
        if members in reused:
            for ref, card in old_natt_by_members.get(members, ()):
                natt[(members, ref)] = card
            continue
        for ref in refs:
            merged = merged_attr_card(schema, members, ref)
            if merged is not None:
                natt[(members, ref)] = merged

    old_nrel_by_members: dict[frozenset, list] = {}
    for (members, relation, role), card in old.nrel.items():
        old_nrel_by_members.setdefault(members, []).append(
            (relation, role, card))
    nrel: dict[tuple[frozenset, str, str], Card] = {}
    participation_keys = {
        (spec.relation, spec.role)
        for cdef in schema.class_definitions for spec in cdef.participates
    }
    for members in classes:
        tick()
        if members in reused:
            for relation, role, card in old_nrel_by_members.get(members, ()):
                nrel[(members, relation, role)] = card
            continue
        for relation, role in participation_keys:
            merged = merged_participation_card(schema, members, relation, role)
            if merged is not None:
                nrel[(members, relation, role)] = merged

    compound_attributes = _delta_compound_attributes(
        schema, classes, reused, old, natt, budget, tracer)
    compound_relations = _delta_compound_relations(
        schema, classes, reused, old, nrel, touched_relations, budget, tracer)

    return Expansion(
        schema=schema,
        compound_classes=classes,
        compound_attributes=compound_attributes,
        compound_relations=compound_relations,
        natt=natt,
        nrel=nrel,
        strategy=strategy,
    )


def _delta_compound_attributes(schema: Schema, classes: Sequence[frozenset],
                               reused: frozenset, old: Expansion, natt,
                               budget: _SizeBudget,
                               tracer: Union[Tracer, NullTracer]
                               ) -> dict[str, tuple[CompoundAttribute, ...]]:
    """Per attribute: copy old compound attributes between reused
    endpoints, probe only the candidates with a fresh endpoint.

    The fresh-restricted decomposition partitions the relevant candidates
    ``BL × ALL ∪ (ALL∖BL) × BR`` that have at least one fresh endpoint:
    ``BL∩F × ALL``, ``BL∩R × F``, ``(ALL∖BL)∩F × BR``, and
    ``(ALL∖BL)∩R × BR∩F`` (R = reused, F = fresh) — every such pair is
    generated exactly once.
    """
    result: dict[str, tuple[CompoundAttribute, ...]] = {}
    tick = current_budget().tick
    copied = 0
    probed_total = 0
    for attr in sorted(schema.attribute_symbols):
        direct = AttrRef(attr)
        inverse = AttrRef(attr, inverse=True)
        typing = AttributeTyping(schema, attr)
        binding_left = [members for members in classes
                        if is_binding(natt.get((members, direct), _FREE))]
        binding_right = [members for members in classes
                         if is_binding(natt.get((members, inverse), _FREE))]
        left_set = set(binding_left)
        rest = [members for members in classes if members not in left_set]
        bl_fresh = [m for m in binding_left if m not in reused]
        bl_reused = [m for m in binding_left if m in reused]
        fresh = [m for m in classes if m not in reused]
        rest_fresh = [m for m in rest if m not in reused]
        rest_reused = [m for m in rest if m in reused]
        br_fresh = [m for m in binding_right if m not in reused]
        candidates = _chain_products(
            (bl_fresh, classes), (bl_reused, fresh),
            (rest_fresh, binding_right), (rest_reused, br_fresh))

        found = [ca for ca in old.compound_attributes.get(attr, ())
                 if ca.left in reused and ca.right in reused]
        budget.charge(len(found), f"attribute {attr}")
        copied += len(found)
        for left, right in candidates:
            tick()
            probed_total += 1
            if typing.consistent(left, right):
                found.append(CompoundAttribute(attr, left, right))
                budget.charge(1, f"attribute {attr}")
        result[attr] = tuple(found)
    if schema.attribute_symbols:
        tracer.add("expansion.delta_attributes_copied", copied)
        tracer.add("expansion.candidates_examined", probed_total)
    return result


def _delta_compound_relations(schema: Schema, classes: Sequence[frozenset],
                              reused: frozenset, old: Expansion, nrel,
                              touched_relations: frozenset,
                              budget: _SizeBudget,
                              tracer: Union[Tracer, NullTracer]
                              ) -> dict[str, tuple[CompoundRelation, ...]]:
    """Per relation: untouched relation definitions copy their compound
    relations between all-reused assignments and probe only tuples with a
    fresh member (each binding-position pool refined by the first fresh
    position); touched relations re-enumerate from scratch."""
    result: dict[str, tuple[CompoundRelation, ...]] = {}
    tick = current_budget().tick
    copied = 0
    probed_total = 0
    for rdef in schema.relation_definitions:
        typing = RelationTyping(schema, rdef.name)
        roles = rdef.roles
        binding = {
            role: [members for members in classes
                   if is_binding(nrel.get((members, rdef.name, role), _FREE))]
            for role in roles
        }
        nonbinding = {
            role: [members for members in classes
                   if not is_binding(nrel.get((members, rdef.name, role),
                                              _FREE))]
            for role in roles
        }
        base_pools = []
        for position, role in enumerate(roles):
            pools = ([nonbinding[r] for r in roles[:position]]
                     + [binding[role]]
                     + [list(classes) for _ in roles[position + 1:]])
            base_pools.append(pools)

        retouch = rdef.name in touched_relations
        if retouch:
            candidate_pools = [tuple(pools) for pools in base_pools]
            found: list[CompoundRelation] = []
        else:
            # Refine each binding-position pool tuple by the first fresh
            # position, so only assignments with >=1 fresh member emerge.
            candidate_pools = []
            for pools in base_pools:
                for position in range(len(pools)):
                    refined = (
                        [[m for m in pool if m in reused]
                         for pool in pools[:position]]
                        + [[m for m in pools[position] if m not in reused]]
                        + [list(pool) for pool in pools[position + 1:]])
                    candidate_pools.append(tuple(refined))
            found = [cr for cr in old.compound_relations.get(rdef.name, ())
                     if all(members in reused
                            for _, members in cr.assignment)]
            budget.charge(len(found), f"relation {rdef.name}")
            copied += len(found)

        for pools in candidate_pools:
            if any(not pool for pool in pools):
                continue
            for combo in product(*pools):
                tick()
                probed_total += 1
                assignment = dict(zip(roles, combo))
                if typing.consistent(assignment):
                    found.append(CompoundRelation(rdef.name, assignment))
                    budget.charge(1, f"relation {rdef.name}")
        result[rdef.name] = tuple(found)
    if schema.relation_definitions:
        tracer.add("expansion.delta_relations_copied", copied)
        tracer.add("expansion.candidates_examined", probed_total)
    return result


def _build_compound_attributes(schema: Schema, classes: Sequence[frozenset],
                               natt, include_unconstrained: bool,
                               budget: _SizeBudget,
                               tracer: Union[Tracer, NullTracer] = NULL_TRACER
                               ) -> dict[str, tuple[CompoundAttribute, ...]]:
    result: dict[str, tuple[CompoundAttribute, ...]] = {}
    tick = current_budget().tick
    examined = 0
    cartesian = 0
    memo_hits = 0
    memo_misses = 0
    for attr in sorted(schema.attribute_symbols):
        direct = AttrRef(attr)
        inverse = AttrRef(attr, inverse=True)
        typing = AttributeTyping(schema, attr)
        if include_unconstrained:
            candidates = product(classes, classes)
        else:
            # Only pairs with a binding endpoint yield a disequation:
            # binding_left × classes ∪ (classes ∖ binding_left) × binding_right
            # partitions exactly the relevant candidates, skipping the rest
            # of the Cartesian product without a filter pass over it.
            binding_left = [members for members in classes
                            if is_binding(natt.get((members, direct), _FREE))]
            binding_right = [members for members in classes
                             if is_binding(natt.get((members, inverse), _FREE))]
            left_set = set(binding_left)
            rest = [members for members in classes if members not in left_set]
            candidates = _chain_products(
                (binding_left, classes), (rest, binding_right))
        found: list[CompoundAttribute] = []
        probed = 0
        for left, right in candidates:
            tick()
            probed += 1
            if typing.consistent(left, right):
                found.append(CompoundAttribute(attr, left, right))
                budget.charge(1, f"attribute {attr}")
        result[attr] = tuple(found)
        examined += probed
        cartesian += len(classes) ** 2
        memo_hits += typing.memo_hits
        memo_misses += typing.memo_misses
    if schema.attribute_symbols:
        tracer.add("expansion.candidates_examined", examined)
        tracer.add("expansion.candidates_pruned", cartesian - examined)
        tracer.add("expansion.memo_hits", memo_hits)
        tracer.add("expansion.memo_misses", memo_misses)
    return result


def _chain_products(*pools: tuple[Sequence, Sequence]):
    for lefts, rights in pools:
        if lefts and rights:
            yield from product(lefts, rights)


def _build_compound_relations(schema: Schema, classes: Sequence[frozenset],
                              nrel, include_unconstrained: bool,
                              budget: _SizeBudget,
                              tracer: Union[Tracer, NullTracer] = NULL_TRACER
                              ) -> dict[str, tuple[CompoundRelation, ...]]:
    result: dict[str, tuple[CompoundRelation, ...]] = {}
    tick = current_budget().tick
    examined = 0
    cartesian = 0
    memo_hits = 0
    memo_misses = 0
    for rdef in schema.relation_definitions:
        typing = RelationTyping(schema, rdef.name)
        roles = rdef.roles
        if include_unconstrained:
            candidate_pools = [tuple([classes] * rdef.arity)]
        else:
            # Partition the relevant candidates by the *first* role position
            # carrying a binding Nrel member: positions before it draw from
            # the non-binding members, the position itself from the binding
            # ones, later positions from everything.  Each relevant tuple is
            # generated exactly once.
            binding = {
                role: [members for members in classes
                       if is_binding(nrel.get((members, rdef.name, role), _FREE))]
                for role in roles
            }
            nonbinding = {
                role: [members for members in classes
                       if not is_binding(nrel.get((members, rdef.name, role),
                                                  _FREE))]
                for role in roles
            }
            candidate_pools = []
            for position, role in enumerate(roles):
                pools = ([nonbinding[r] for r in roles[:position]]
                         + [binding[role]]
                         + [list(classes) for _ in roles[position + 1:]])
                candidate_pools.append(tuple(pools))
        found: list[CompoundRelation] = []
        probed = 0
        for pools in candidate_pools:
            if any(not pool for pool in pools):
                continue
            for combo in product(*pools):
                tick()
                probed += 1
                assignment = dict(zip(roles, combo))
                if typing.consistent(assignment):
                    found.append(CompoundRelation(rdef.name, assignment))
                    budget.charge(1, f"relation {rdef.name}")
        result[rdef.name] = tuple(found)
        examined += probed
        cartesian += len(classes) ** rdef.arity
        memo_hits += typing.memo_hits
        memo_misses += typing.memo_misses
    if schema.relation_definitions:
        tracer.add("expansion.candidates_examined", examined)
        tracer.add("expansion.candidates_pruned", cartesian - examined)
        tracer.add("expansion.memo_hits", memo_hits)
        tracer.add("expansion.memo_misses", memo_misses)
    return result
