"""Construction of the expansion ``S̄`` of a CAR schema (Definition 3.1).

The expansion consists of

* all consistent compound classes,
* all consistent compound attributes ``⟨C̄1, C̄2⟩_A``,
* all consistent compound relations ``⟨U1: C̄1, …⟩_R``,
* the cardinality maps ``Natt`` and ``Nrel``.

Compound attributes and relations that no *binding* ``Natt``/``Nrel`` entry
touches are omitted by default (binding: positive lower bound or finite
upper bound).  Such compound objects occur in no disequation of ``Ψ_S``, so
they can always be interpreted freely; set ``include_unconstrained=True`` to
build Definition 3.1 verbatim, which the unit tests do on small schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional, Sequence

from ..core.cardinality import Card, INFINITY
from ..core.errors import ReasoningError
from ..core.schema import AttrRef, Schema
from .compound import (
    CompoundAttribute,
    CompoundRelation,
    is_consistent_compound_attribute,
    is_consistent_compound_relation,
    merged_attr_card,
    merged_participation_card,
)
from .enumerate import compound_classes as enumerate_compound_classes

__all__ = ["Expansion", "build_expansion", "is_binding"]


def is_binding(card: Card) -> bool:
    """True when a merged cardinality interval yields a disequation at all:
    ``(0, ∞)`` entries constrain nothing and are skipped when selecting the
    compound attributes/relations to materialize."""
    return card.lower > 0 or card.upper is not INFINITY


@dataclass(frozen=True)
class Expansion:
    """The expansion ``S̄``: compound objects plus ``Natt`` / ``Nrel``."""

    schema: Schema
    compound_classes: tuple[frozenset, ...]
    compound_attributes: dict[str, tuple[CompoundAttribute, ...]]
    compound_relations: dict[str, tuple[CompoundRelation, ...]]
    natt: dict[tuple[frozenset, AttrRef], Card]
    nrel: dict[tuple[frozenset, str, str], Card]
    strategy: str = "strategic"

    def size(self) -> int:
        """Total number of compound objects (the paper's expansion size)."""
        return (len(self.compound_classes)
                + sum(len(v) for v in self.compound_attributes.values())
                + sum(len(v) for v in self.compound_relations.values()))

    def compound_classes_containing(self, class_name: str) -> list[frozenset]:
        """The compound classes whose member set includes ``class_name``."""
        return [members for members in self.compound_classes if class_name in members]

    def attributes_with_left(self, attr: str, members: frozenset) -> list[CompoundAttribute]:
        """Compound attributes of ``attr`` whose source endpoint is ``members``
        (the summands of ``S(A, C̄)``)."""
        return [ca for ca in self.compound_attributes.get(attr, ())
                if ca.left == members]

    def attributes_with_right(self, attr: str, members: frozenset) -> list[CompoundAttribute]:
        """Compound attributes of ``attr`` whose target endpoint is ``members``
        (the summands of ``S((inv A), C̄)``)."""
        return [ca for ca in self.compound_attributes.get(attr, ())
                if ca.right == members]

    def relations_with_role(self, relation: str, role: str,
                            members: frozenset) -> list[CompoundRelation]:
        """Compound relations of ``relation`` assigning ``members`` to ``role``."""
        return [cr for cr in self.compound_relations.get(relation, ())
                if cr[role] == members]

    def summary(self) -> str:
        lines = [
            f"expansion ({self.strategy}): {len(self.compound_classes)} compound classes",
        ]
        for attr in sorted(self.compound_attributes):
            lines.append(
                f"  attribute {attr}: {len(self.compound_attributes[attr])} compound attributes"
            )
        for rel in sorted(self.compound_relations):
            lines.append(
                f"  relation {rel}: {len(self.compound_relations[rel])} compound relations"
            )
        lines.append(f"  |Natt| = {len(self.natt)}, |Nrel| = {len(self.nrel)}")
        return "\n".join(lines)


#: Placeholder interval for absent entries in the binding tests above.
_FREE = Card(0, INFINITY)


def build_expansion(schema: Schema, strategy: str = "auto", *,
                    include_unconstrained: bool = False,
                    size_limit: Optional[int] = None) -> Expansion:
    """Build the expansion of ``schema``.

    Parameters
    ----------
    strategy:
        Compound-class enumeration strategy (see
        :func:`repro.expansion.enumerate.compound_classes`).
    include_unconstrained:
        Also include compound attributes/relations that no ``Natt``/``Nrel``
        entry mentions (Definition 3.1 verbatim).
    size_limit:
        Abort with :class:`ReasoningError` when the number of compound
        objects would exceed this bound — a guard for adversarial schemas.
    """
    classes = tuple(enumerate_compound_classes(schema, strategy))
    if size_limit is not None and len(classes) > size_limit:
        raise ReasoningError(
            f"expansion exceeds size limit: {len(classes)} compound classes > {size_limit}"
        )

    natt: dict[tuple[frozenset, AttrRef], Card] = {}
    for members in classes:
        for ref in schema.attribute_refs():
            merged = merged_attr_card(schema, members, ref)
            if merged is not None:
                natt[(members, ref)] = merged

    nrel: dict[tuple[frozenset, str, str], Card] = {}
    participation_keys = {
        (spec.relation, spec.role)
        for cdef in schema.class_definitions for spec in cdef.participates
    }
    for members in classes:
        for relation, role in participation_keys:
            merged = merged_participation_card(schema, members, relation, role)
            if merged is not None:
                nrel[(members, relation, role)] = merged

    compound_attributes = _build_compound_attributes(
        schema, classes, natt, include_unconstrained, size_limit)
    compound_relations = _build_compound_relations(
        schema, classes, nrel, include_unconstrained, size_limit)

    return Expansion(
        schema=schema,
        compound_classes=classes,
        compound_attributes=compound_attributes,
        compound_relations=compound_relations,
        natt=natt,
        nrel=nrel,
        strategy=strategy,
    )


def _build_compound_attributes(schema: Schema, classes: Sequence[frozenset],
                               natt, include_unconstrained: bool,
                               size_limit: Optional[int]
                               ) -> dict[str, tuple[CompoundAttribute, ...]]:
    result: dict[str, tuple[CompoundAttribute, ...]] = {}
    for attr in sorted(schema.attribute_symbols):
        direct = AttrRef(attr)
        inverse = AttrRef(attr, inverse=True)
        found: list[CompoundAttribute] = []
        for left, right in product(classes, classes):
            relevant = (include_unconstrained
                        or is_binding(natt.get((left, direct), _FREE))
                        or is_binding(natt.get((right, inverse), _FREE)))
            if not relevant:
                continue
            candidate = CompoundAttribute(attr, left, right)
            if is_consistent_compound_attribute(schema, candidate,
                                                endpoints_consistent=True):
                found.append(candidate)
                if size_limit is not None and len(found) > size_limit:
                    raise ReasoningError(
                        f"expansion exceeds size limit on attribute {attr}"
                    )
        result[attr] = tuple(found)
    return result


def _build_compound_relations(schema: Schema, classes: Sequence[frozenset],
                              nrel, include_unconstrained: bool,
                              size_limit: Optional[int]
                              ) -> dict[str, tuple[CompoundRelation, ...]]:
    result: dict[str, tuple[CompoundRelation, ...]] = {}
    for rdef in schema.relation_definitions:
        found: list[CompoundRelation] = []
        for combo in product(classes, repeat=rdef.arity):
            relevant = include_unconstrained or any(
                is_binding(nrel.get((members, rdef.name, role), _FREE))
                for role, members in zip(rdef.roles, combo)
            )
            if not relevant:
                continue
            candidate = CompoundRelation(rdef.name, dict(zip(rdef.roles, combo)))
            if is_consistent_compound_relation(schema, candidate,
                                               endpoints_consistent=True):
                found.append(candidate)
                if size_limit is not None and len(found) > size_limit:
                    raise ReasoningError(
                        f"expansion exceeds size limit on relation {rdef.name}"
                    )
        result[rdef.name] = tuple(found)
    return result
