"""A lightweight phase-timing layer for the reasoning pipeline.

:class:`StageTimer` accumulates wall-clock seconds per named pipeline stage
(``tables``, ``expansion``, ``system``, ``support``, …).  The reasoner
threads one instance through its lazy pipeline properties and merges the
readings into :meth:`Reasoner.stats`, so the benchmarks can report
phase-level speedups without wrapping the pipeline themselves.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulates wall-clock time per named stage.

    Stages may run repeatedly (e.g. per augmented query); readings
    accumulate.  ``as_stats()`` renders them with a ``time_`` prefix for
    merging into a flat stats dictionary.
    """

    __slots__ = ("_seconds", "_counts")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 when it never ran)."""
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many times stage ``name`` ran."""
        return self._counts.get(name, 0)

    def readings(self) -> dict[str, float]:
        """All accumulated readings, keyed by stage name."""
        return dict(self._seconds)

    def as_stats(self) -> dict[str, float]:
        """Readings with a ``time_`` key prefix, ready to merge into a
        ``stats()``-style dictionary."""
        return {f"time_{name}": seconds
                for name, seconds in sorted(self._seconds.items())}
